//! Full-pipeline integration: Code 1 of the paper, end to end.
//!
//! A Spark-style program wraps an RDD with Blaze, S2FA compiles the lambda
//! to an accelerator (codegen + DSE), the accelerator is registered, and
//! the same `map` call transparently switches from the JVM fallback to the
//! offloaded path — with identical results and a large modelled speedup.

use s2fa::{S2fa, S2faOptions};
use s2fa_blaze::{AccCall, AcceleratorRegistry, BlazeContext, ExecutionPath, Rdd};
use s2fa_dse::DseOptions;
use s2fa_workloads::{kmeans, sw};

fn fast_options() -> S2faOptions {
    // a small DSE budget keeps the test quick while still exercising the
    // partition/seed/stopping machinery
    let mut dse = DseOptions::s2fa();
    dse.budget_minutes = 60.0;
    S2faOptions {
        tasks_hint: 256,
        dse,
    }
}

#[test]
fn code1_flow_kmeans() {
    let w = kmeans::workload();
    let framework = S2fa::new(fast_options());
    let compiled = framework.compile(&w.spec).expect("automatic flow succeeds");
    assert!(compiled.estimate.is_feasible());
    assert!(compiled.optimized_source.contains("void KMeans_kernel"));
    assert!(compiled.dse.as_ref().unwrap().total_evaluations > 0);

    // Code 1: val blaze_pairs = blaze.wrap(pairs); blaze_pairs.map(new SW())
    let registry = AcceleratorRegistry::new();
    let blaze = BlazeContext::new(&registry);
    // enough records that the fixed offload setup cost amortizes
    let records = (w.gen_input)(2048, 41);
    let call = AccCall {
        id: w.spec.name.clone(),
        spec: w.spec.clone(),
    };

    // Before registration: the JVM fallback runs.
    let rdd = Rdd::from_values(records.clone());
    let (jvm_out, jvm_report) = blaze.wrap(rdd).map(&call).expect("jvm path");
    assert_eq!(jvm_report.path, ExecutionPath::JvmFallback);

    // Register the generated design; the same call now offloads.
    registry.register(compiled.accelerator.clone());
    let rdd = Rdd::from_values(records);
    let (fpga_out, fpga_report) = blaze.wrap(rdd).map(&call).expect("offloaded path");
    assert_eq!(fpga_report.path, ExecutionPath::Offloaded);
    assert_eq!(jvm_out.collect(), fpga_out.collect(), "results agree");
    assert!(fpga_report.bytes > 0);
    let fpga_ms = fpga_report.time_ms.expect("offload carries a time model");
    let jvm_ms = jvm_report.time_ms.expect("fallback is always measured");
    assert!(
        fpga_ms < jvm_ms,
        "offload should be modelled faster: {fpga_ms} vs {jvm_ms} ms"
    );
}

#[test]
fn code1_flow_smith_waterman_strings() {
    // The paper's running example: RDD[(String, String)] through the S-W
    // accelerator.
    let w = sw::workload();
    let framework = S2fa::new(fast_options());
    let compiled = framework.compile(&w.spec).expect("automatic flow succeeds");
    let registry = AcceleratorRegistry::new();
    registry.register(compiled.accelerator.clone());
    let blaze = BlazeContext::new(&registry);
    let records = (w.gen_input)(2, 8);
    let call = AccCall {
        id: w.spec.name.clone(),
        spec: w.spec.clone(),
    };
    let (out, report) = blaze
        .wrap(Rdd::from_values(records.clone()))
        .map(&call)
        .expect("offload");
    assert_eq!(report.path, ExecutionPath::Offloaded);
    // scores match the native reference
    for (rec, result) in records.iter().zip(out.collect()) {
        let f = rec.elements().unwrap();
        let (s2fa_sjvm::HostValue::Str(a), s2fa_sjvm::HostValue::Str(b)) = (&f[0], &f[1]) else {
            panic!("generator yields strings")
        };
        let (score, pos) = sw::reference(a.as_bytes(), b.as_bytes());
        let got = result.elements().unwrap();
        assert_eq!(got[0].as_i64(), Some(score));
        assert_eq!(got[1].as_i64(), Some(pos));
    }
}

#[test]
fn manual_flow_evaluates_without_dse() {
    let w = kmeans::workload();
    let framework = S2fa::new(fast_options());
    let generated = s2fa::compile_kernel(&w.manual_spec).unwrap();
    let summary = s2fa_hlsir::analysis::summarize(&generated.cfunc, 256).unwrap();
    let cfg = (w.manual_config)(&summary);
    let compiled = framework
        .compile_with_config(&w.manual_spec, &cfg)
        .expect("manual design synthesizes");
    assert!(compiled.dse.is_none());
    assert!(compiled.estimate.is_feasible());
}

#[test]
fn compiled_artifacts_are_consistent() {
    let w = kmeans::workload();
    let framework = S2fa::new(fast_options());
    let compiled = framework.compile(&w.spec).unwrap();
    // the printed source carries the applied pragmas of the final design
    let has_directive = compiled
        .design
        .loops
        .values()
        .any(|d| d.parallel > 1 || d.pipeline != s2fa_hlsir::PipelineMode::Off);
    if has_directive {
        assert!(
            compiled.optimized_source.contains("#pragma ACCEL"),
            "source:\n{}",
            compiled.optimized_source
        );
    }
    // the accelerator's time model matches the estimate
    let tm = compiled
        .accelerator
        .time_model
        .expect("time model attached");
    let batch = compiled.estimate.batch_tasks as u64;
    let expected = compiled.estimate.time_ms;
    assert!((tm.per_task_ms * batch as f64 - expected).abs() / expected < 1e-9);
}

#[test]
fn structural_tiling_in_the_shipped_design_preserves_results() {
    // Force a design with an inner-loop tile: the pipeline applies the
    // Merlin rewrite structurally, and the offloaded results must still
    // match the JVM.
    use s2fa_blaze::Rdd;
    use s2fa_merlin::DesignConfig;

    let w = kmeans::workload();
    let framework = S2fa::new(fast_options());
    let generated = s2fa::compile_kernel(&w.spec).unwrap();
    let summary = s2fa_hlsir::analysis::summarize(&generated.cfunc, 256).unwrap();
    let mut cfg = DesignConfig::area_seed(&summary);
    // tile the first inner loop (constant trip count)
    let inner = summary
        .loops
        .iter()
        .find(|l| l.depth == 1 && l.trip_count >= 4)
        .expect("kmeans has an inner loop");
    cfg.loop_directive_mut(inner.id).tile = Some(2);
    let compiled = framework
        .compile_with_config(&w.spec, &cfg)
        .expect("tiled design synthesizes");
    assert!(
        compiled.optimized_source.matches("for (int").count() > generated.cfunc.loop_ids().len(),
        "structural tiling should add a loop:\n{}",
        compiled.optimized_source
    );

    let registry = AcceleratorRegistry::new();
    registry.register(compiled.accelerator.clone());
    let blaze = BlazeContext::new(&registry);
    let records = (w.gen_input)(32, 91);
    let call = AccCall {
        id: w.spec.name.clone(),
        spec: w.spec.clone(),
    };
    let (offloaded, report) = blaze
        .wrap(Rdd::from_values(records.clone()))
        .map(&call)
        .expect("offload");
    assert_eq!(report.path, ExecutionPath::Offloaded);
    // compare against the JVM fallback on an empty registry
    let empty = AcceleratorRegistry::new();
    let (jvm, _) = BlazeContext::new(&empty)
        .wrap(Rdd::from_values(records))
        .map(&call)
        .expect("jvm");
    assert_eq!(jvm.collect(), offloaded.collect());
}

#[test]
fn java8_streams_offload_through_the_same_registry() {
    // §2: "we can easily integrate S2FA with other JVM-based runtime
    // systems such as ... streaming APIs in Java 8" — the same compiled
    // accelerator serves a streams pipeline unchanged.
    use s2fa_blaze::streams::Stream;
    use s2fa_sjvm::HostValue;

    let w = kmeans::workload();
    let framework = S2fa::new(fast_options());
    let compiled = framework.compile(&w.spec).expect("compiles");
    let registry = AcceleratorRegistry::new();
    registry.register(compiled.accelerator.clone());
    let call = AccCall {
        id: w.spec.name.clone(),
        spec: w.spec.clone(),
    };
    let records = (w.gen_input)(64, 3);
    let (clusters, reports) = Stream::of(records.clone(), &registry)
        .map(call.clone())
        .map_native(|v| HostValue::I(v.as_i64().unwrap_or(-1)))
        .collect_with_reports()
        .expect("pipeline runs");
    assert_eq!(clusters.len(), 64);
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].path, ExecutionPath::Offloaded);
    // same results as the RDD path
    let blaze = BlazeContext::new(&registry);
    let (rdd_out, _) = blaze
        .wrap(Rdd::from_values(records))
        .map(&call)
        .expect("rdd path");
    assert_eq!(rdd_out.collect(), &clusters[..]);
}

#[test]
fn the_registry_serves_multiple_accelerators() {
    // The Blaze accelerator manager is a *service*: several compiled
    // designs coexist and calls dispatch by id.
    use s2fa_workloads::{lls, pr};

    let framework = S2fa::new(fast_options());
    let registry = AcceleratorRegistry::new();
    let mut specs = Vec::new();
    for w in [pr::workload(), kmeans::workload(), lls::workload()] {
        let compiled = framework.compile(&w.spec).expect("compiles");
        registry.register(compiled.accelerator.clone());
        specs.push((w.spec.clone(), (w.gen_input)(8, 5)));
    }
    assert_eq!(registry.ids(), vec!["KMeans", "LLS", "PR"]);
    let blaze = BlazeContext::new(&registry);
    for (spec, records) in specs {
        let call = AccCall {
            id: spec.name.clone(),
            spec: spec.clone(),
        };
        let (_, report) = blaze
            .wrap(Rdd::from_values(records))
            .map(&call)
            .expect("dispatches");
        assert_eq!(report.path, ExecutionPath::Offloaded, "{}", spec.name);
    }
}

#[test]
fn framework_types_are_send_and_sync() {
    fn check<T: Send + Sync>() {}
    check::<S2fa>();
    check::<s2fa_hlssim::Estimator>();
    check::<s2fa_blaze::AcceleratorRegistry>();
    check::<s2fa_blaze::Accelerator>();
    check::<s2fa_sjvm::KernelSpec>();
    check::<s2fa_hlsir::KernelSummary>();
    check::<s2fa_merlin::DesignConfig>();
}
