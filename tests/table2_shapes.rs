//! Regression guards for the calibrated Table-2 shapes: the qualitative
//! claims EXPERIMENTS.md makes about the generated designs must keep
//! holding as the model evolves.

use s2fa::report::ResourceRow;
use s2fa::{S2fa, S2faOptions};
use s2fa_workloads::all_workloads;

fn measured_rows() -> Vec<ResourceRow> {
    let framework = S2fa::new(S2faOptions::default());
    let device = framework.estimator().device().clone();
    all_workloads()
        .iter()
        .map(|w| {
            let compiled = framework.compile(&w.spec).expect("compiles");
            ResourceRow::from_compiled(&compiled, w.category, &device)
        })
        .collect()
}

#[test]
fn table2_shapes_hold() {
    let rows = measured_rows();
    let find = |n: &str| rows.iter().find(|r| r.kernel == n).expect("row");
    let util_max = |r: &ResourceRow| r.bram_pct.max(r.dsp_pct).max(r.ff_pct).max(r.lut_pct);

    // Memory-bound kernels do not saturate the device (paper: AES & PR
    // "do not fully utilize hardware resources"). PR streams with almost
    // no on-chip compute; AES spends LUTs on the cipher network but stays
    // DDR-bound, so its design keeps clear headroom under the 75 % cap.
    for (name, cap) in [("PR", 60.0), ("AES", 70.0)] {
        assert!(
            util_max(find(name)) < cap,
            "{name}: expected memory-bound utilization < {cap:.0}%, got {:.0}%",
            util_max(find(name))
        );
    }

    // At least one compute-bound kernel pushes near the 75 % cap.
    let compute_peak = ["KMeans", "KNN", "LR", "SVM", "LLS"]
        .iter()
        .map(|n| util_max(find(n)))
        .fold(0.0f64, f64::max);
    assert!(
        compute_peak > 55.0,
        "some compute-bound kernel should saturate a resource, peak {compute_peak:.0}%"
    );

    // Nothing exceeds the feasibility cap.
    for r in &rows {
        assert!(
            util_max(r) <= 75.0 + 1e-9,
            "{}: {:.0}% exceeds the cap",
            r.kernel,
            util_max(r)
        );
        // P&R closes between the floor and the device target.
        assert!(
            (60.0..=250.0).contains(&r.freq_mhz),
            "{}: {} MHz out of range",
            r.kernel,
            r.freq_mhz
        );
    }

    // Every design clears the 60 MHz routing floor with a step to spare.
    // The systolic S-W wavefront routes slowest — the paper's worst row is
    // 100 of 250 MHz, and the model's deep-logic penalty can push a more
    // aggressively flattened (but overall faster) wavefront a notch lower.
    for r in &rows {
        let floor = if r.kernel == "S-W" { 70.0 } else { 100.0 };
        assert!(
            r.freq_mhz >= floor,
            "{}: {} MHz below the {floor} MHz floor",
            r.kernel,
            r.freq_mhz
        );
    }
}
