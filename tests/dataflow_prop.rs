//! Dynamic-oracle validation of the dataflow lint rules and the affine
//! dependence test, per the contract in `lint::dataflow_rules`:
//!
//! 1. **E301 is never a false error**: every uninitialized read the rule
//!    flags on a randomly generated kernel is *observed* when the kernel
//!    runs under the IR interpreter (`Executor::run_observed`).
//! 2. **E303 is never a false error**: a write-race the detector proves
//!    on a random affine kernel corresponds to two distinct iterations
//!    that really do write the same element (checked by brute force over
//!    the iteration domain), and loops the detector *clears*
//!    (`replication_safe`) produce bit-identical outputs under permuted
//!    iteration orders (`Executor::with_iteration_order`).
//! 3. **The dependence verdict matches execution**: `Tri::Proven`
//!    overlaps exist in the concrete iteration space and `Tri::Disproven`
//!    overlaps do not, for random affine access pairs.
//! 4. The paper's eight workloads carry zero dataflow *defects*
//!    (E301/E302), and no structural transform the DSE can request
//!    introduces a new `E3xx` finding (satellite differential).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa::compile_kernel;
use s2fa_dse::DesignSpace;
use s2fa_hlsir::dataflow::{
    collect_sites, cross_iteration_overlap, find_write_race, replication_safe, Tri,
};
use s2fa_hlsir::{
    analysis, CFunction, CType, CVal, Executor, Expr, LValue, LoopId, Observed, Param, ParamKind,
    Stmt,
};
use s2fa_lint::{dataflow_checks, new_dataflow_errors};
use s2fa_merlin::{apply_structural, DesignConfig};
use s2fa_workloads::all_workloads;
use std::collections::BTreeMap;

const HINT: u32 = 64;

/// Wraps a body into a minimal kernel over one 8-element record.
fn kernel(body: Vec<Stmt>) -> CFunction {
    CFunction {
        name: "prop_kernel".into(),
        params: vec![
            Param {
                name: "n".into(),
                ty: CType::Int(32),
                kind: ParamKind::ScalarIn,
                elems_per_task: None,
                broadcast: false,
            },
            Param {
                name: "in_1".into(),
                ty: CType::Int(32),
                kind: ParamKind::BufIn,
                elems_per_task: Some(8),
                broadcast: false,
            },
            Param {
                name: "out_1".into(),
                ty: CType::Int(32),
                kind: ParamKind::BufOut,
                elems_per_task: Some(8),
                broadcast: false,
            },
        ],
        body,
    }
}

/// Runs `f` over a fixed input record, returning the observations and the
/// output buffer. `orders` overrides iteration orders per loop.
fn run(f: &CFunction, orders: &[(LoopId, Vec<i64>)]) -> (Observed, Vec<CVal>) {
    let mut exec = Executor::new(f);
    for (id, order) in orders {
        exec = exec.with_iteration_order(*id, order.clone());
    }
    let scalars = BTreeMap::from([("n".to_string(), CVal::I(1))]);
    let mut buffers = BTreeMap::from([
        (
            "in_1".to_string(),
            (0..8).map(|i| CVal::I(i * 3 + 1)).collect::<Vec<_>>(),
        ),
        ("out_1".to_string(), vec![CVal::I(0); 8]),
    ]);
    let obs = exec
        .run_observed(&scalars, &mut buffers)
        .expect("generated kernel executes");
    (obs, buffers.remove("out_1").expect("output bound"))
}

/// Whether the observations contain the read a diagnostic subject names:
/// `x` is a scalar, `a[3]` an element, `a[*]` any element of `a`.
fn observed_has(obs: &Observed, subject: &str) -> bool {
    match subject.split_once('[') {
        Some((arr, rest)) => {
            let idx = rest.trim_end_matches(']');
            if idx == "*" {
                obs.uninit_reads.iter().any(|(n, _)| n == arr)
            } else {
                let k: i64 = idx.parse().expect("element subject");
                obs.uninit_reads.contains(&(arr.to_string(), Some(k)))
            }
        }
        None => obs.uninit_reads.contains(&(subject.to_string(), None)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Property 1: every E301 the rule reports on a random kernel is a
    // read the interpreter observes hitting never-written storage.
    #[test]
    fn flagged_uninit_reads_manifest_under_interpretation(
        init_x in any::<bool>(),
        write_a0 in any::<bool>(),
        read_x in any::<bool>(),
        read_a0 in any::<bool>(),
        read_a1 in any::<bool>(),
    ) {
        let mut body = vec![
            Stmt::Decl {
                name: "x".into(),
                ty: CType::Int(32),
                init: init_x.then_some(Expr::ConstI(7)),
            },
            Stmt::Decl {
                name: "y".into(),
                ty: CType::Int(32),
                init: Some(Expr::ConstI(0)),
            },
            Stmt::DeclArr { name: "a".into(), ty: CType::Int(32), len: 2 },
        ];
        if write_a0 {
            body.push(Stmt::Assign {
                lhs: LValue::Index("a".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::index("in_1", Expr::ConstI(0)),
            });
        }
        let mut rhs = Expr::iadd(Expr::var("y"), Expr::index("in_1", Expr::var("j")));
        if read_x {
            rhs = Expr::iadd(rhs, Expr::var("x"));
        }
        if read_a0 {
            rhs = Expr::iadd(rhs, Expr::index("a", Expr::ConstI(0)));
        }
        if read_a1 {
            rhs = Expr::iadd(rhs, Expr::index("a", Expr::ConstI(1)));
        }
        body.push(Stmt::counted_for(
            LoopId(1),
            "j",
            4,
            vec![Stmt::Assign {
                lhs: LValue::Index("out_1".into(), Box::new(Expr::var("j"))),
                rhs,
            }],
        ));
        let f = kernel(body);

        let report = dataflow_checks(&f, HINT);
        let flagged: Vec<&str> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.code == "S2FA-E301")
            .map(|d| d.span.subject.as_deref().expect("E301 names its variable"))
            .collect();

        // Non-vacuity: an unconditionally-read, never-written scalar is
        // exactly the rule's domain.
        if read_x && !init_x {
            prop_assert!(flagged.contains(&"x"), "missing E301 on `x`: {}", report.render());
        }

        let (obs, _) = run(&f, &[]);
        for subject in flagged {
            prop_assert!(
                observed_has(&obs, subject),
                "E301 on `{subject}` did not manifest dynamically; observed {:?}",
                obs.uninit_reads
            );
        }
    }

    // Property 2: a proven write-race really is two iterations writing
    // one element (brute force over the affine index), and a cleared
    // loop's outputs are identical under permuted iteration orders.
    #[test]
    fn race_verdicts_match_interleaved_execution(
        c in 0i64..=2,
        o in 0i64..=1,
        t in 2u32..=3,
        varying in any::<bool>(),
    ) {
        let idx = Expr::iadd(Expr::imul(Expr::ConstI(c), Expr::var("j")), Expr::ConstI(o));
        let rhs = if varying {
            Expr::iadd(Expr::index("in_1", Expr::var("j")), Expr::var("j"))
        } else {
            Expr::ConstI(5)
        };
        let l1_body = vec![Stmt::Assign {
            lhs: LValue::Index("a".into(), Box::new(idx)),
            rhs,
        }];
        let body = vec![
            Stmt::DeclArr { name: "a".into(), ty: CType::Int(32), len: 8 },
            Stmt::counted_for(
                LoopId(10),
                "i",
                8,
                vec![Stmt::Assign {
                    lhs: LValue::Index("a".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::index("in_1", Expr::var("i")),
                }],
            ),
            Stmt::counted_for(LoopId(11), "j", t, l1_body.clone()),
            Stmt::counted_for(
                LoopId(12),
                "i",
                8,
                vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::index("a", Expr::var("i")),
                }],
            ),
        ];
        let f = kernel(body);
        let sites = collect_sites(&f.body);

        // A zero-coefficient index writes one element every iteration:
        // the detector must prove the race, and must prove one *only*
        // when the index really repeats (c == 0 here).
        let race = find_write_race(&sites, &l1_body, LoopId(11), HINT);
        prop_assert_eq!(
            race.is_some(),
            c == 0,
            "race verdict {:?} vs ground truth (c = {})",
            race,
            c
        );

        if replication_safe(&sites, &l1_body, LoopId(11), HINT) {
            let natural: Vec<i64> = (0..t as i64).collect();
            let mut reversed = natural.clone();
            reversed.reverse();
            let mut rotated = natural.clone();
            rotated.rotate_left(1);
            let (_, base) = run(&f, &[(LoopId(11), natural)]);
            for order in [reversed, rotated] {
                let (_, permuted) = run(&f, &[(LoopId(11), order.clone())]);
                prop_assert_eq!(
                    &base,
                    &permuted,
                    "cleared loop diverged under order {:?}",
                    order
                );
            }
        }
    }

    // Property 3: the affine dependence verdict matches the concrete
    // iteration space. Proven => some pair of distinct iterations
    // collides; Disproven => none does. (Unknown is unconstrained.)
    #[test]
    fn dependence_verdicts_match_brute_force(
        c1 in -2i64..=2,
        c2 in -2i64..=2,
        o1 in 0i64..=6,
        o2 in 0i64..=6,
        t in 1u32..=6,
    ) {
        let l1_body = vec![
            Stmt::Assign {
                lhs: LValue::Index(
                    "a".into(),
                    Box::new(Expr::iadd(
                        Expr::imul(Expr::ConstI(c1), Expr::var("j")),
                        Expr::ConstI(o1),
                    )),
                ),
                rhs: Expr::index("in_1", Expr::ConstI(0)),
            },
            Stmt::Assign {
                lhs: LValue::Index("out_1".into(), Box::new(Expr::var("j"))),
                rhs: Expr::index(
                    "a",
                    Expr::iadd(Expr::imul(Expr::ConstI(c2), Expr::var("j")), Expr::ConstI(o2)),
                ),
            },
        ];
        let body = vec![
            Stmt::DeclArr { name: "a".into(), ty: CType::Int(32), len: 16 },
            Stmt::counted_for(LoopId(20), "j", t, l1_body),
        ];
        let f = kernel(body);
        let sites = collect_sites(&f.body);
        let write = sites
            .iter()
            .find(|s| s.array == "a" && s.write)
            .expect("write site collected");
        let read = sites
            .iter()
            .find(|s| s.array == "a" && !s.write)
            .expect("read site collected");

        let verdict = cross_iteration_overlap(write, read, LoopId(20), HINT);
        let truth = (0..t as i64).any(|j1| {
            (0..t as i64).any(|j2| j1 != j2 && c1 * j1 + o1 == c2 * j2 + o2)
        });
        match verdict {
            Tri::Proven => prop_assert!(
                truth,
                "proved a dependence that does not exist: c1={c1} o1={o1} c2={c2} o2={o2} t={t}"
            ),
            Tri::Disproven => prop_assert!(
                !truth,
                "disproved a real dependence: c1={c1} o1={o1} c2={c2} o2={o2} t={t}"
            ),
            Tri::Unknown => {}
        }
    }
}

/// Seeded true-positive corpus: each rule fires on its canonical kernel
/// and the dynamic oracle confirms the defect.
#[test]
fn corpus_defects_are_dynamically_real() {
    // E301: unconditional read of a never-initialized scalar.
    let f = kernel(vec![
        Stmt::Decl {
            name: "x".into(),
            ty: CType::Int(32),
            init: None,
        },
        Stmt::Assign {
            lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
            rhs: Expr::var("x"),
        },
    ]);
    let report = dataflow_checks(&f, HINT);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.code == "S2FA-E301"),
        "{}",
        report.render()
    );
    let (obs, _) = run(&f, &[]);
    assert!(obs.uninit_reads.contains(&("x".to_string(), None)));

    // E302: affine index provably past the declared length — and the
    // interpreter faults on the same access.
    let f = kernel(vec![
        Stmt::DeclArr {
            name: "a".into(),
            ty: CType::Int(32),
            len: 4,
        },
        Stmt::counted_for(
            LoopId(1),
            "j",
            6,
            vec![Stmt::Assign {
                lhs: LValue::Index("a".into(), Box::new(Expr::var("j"))),
                rhs: Expr::ConstI(1),
            }],
        ),
    ]);
    let report = dataflow_checks(&f, HINT);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.code == "S2FA-E302"),
        "{}",
        report.render()
    );
    let scalars = BTreeMap::from([("n".to_string(), CVal::I(1))]);
    let mut buffers = BTreeMap::from([
        ("in_1".to_string(), vec![CVal::I(0); 8]),
        ("out_1".to_string(), vec![CVal::I(0); 8]),
    ]);
    assert!(
        Executor::new(&f).run(&scalars, &mut buffers).is_err(),
        "the flagged out-of-bounds store must fault dynamically"
    );

    // E303: every iteration overwrites `a[0]` with a different value —
    // two iteration orders really produce different results.
    let l1_body = vec![Stmt::Assign {
        lhs: LValue::Index("a".into(), Box::new(Expr::ConstI(0))),
        rhs: Expr::var("j"),
    }];
    let f = kernel(vec![
        Stmt::DeclArr {
            name: "a".into(),
            ty: CType::Int(32),
            len: 2,
        },
        Stmt::Assign {
            lhs: LValue::Index("a".into(), Box::new(Expr::ConstI(1))),
            rhs: Expr::ConstI(0),
        },
        Stmt::counted_for(LoopId(11), "j", 4, l1_body.clone()),
        Stmt::Assign {
            lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
            rhs: Expr::index("a", Expr::ConstI(0)),
        },
    ]);
    let report = dataflow_checks(&f, HINT);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.code == "S2FA-E303"),
        "{}",
        report.render()
    );
    let sites = collect_sites(&f.body);
    assert!(find_write_race(&sites, &l1_body, LoopId(11), HINT).is_some());
    let (_, fwd) = run(&f, &[(LoopId(11), vec![0, 1, 2, 3])]);
    let (_, rev) = run(&f, &[(LoopId(11), vec![3, 2, 1, 0])]);
    assert_ne!(fwd, rev, "the raced element must be order-sensitive");

    // W310: an overwritten store with no intervening read.
    let f = kernel(vec![
        Stmt::Decl {
            name: "x".into(),
            ty: CType::Int(32),
            init: None,
        },
        Stmt::Assign {
            lhs: LValue::Var("x".into()),
            rhs: Expr::ConstI(5),
        },
        Stmt::Assign {
            lhs: LValue::Var("x".into()),
            rhs: Expr::ConstI(6),
        },
        Stmt::Assign {
            lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
            rhs: Expr::var("x"),
        },
    ]);
    let report = dataflow_checks(&f, HINT);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.code == "S2FA-W310"),
        "{}",
        report.render()
    );
}

/// The paper's eight workloads are free of dataflow *defects*: no
/// provably uninitialized read (E301) and no provably out-of-bounds
/// index (E302) anywhere. E303 replication races are legality facts
/// about the search space (AES's round loop and S-W's wavefront loop
/// genuinely carry them) and are allowed.
#[test]
fn workloads_have_zero_dataflow_defects() {
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect(w.name);
        let report = dataflow_checks(&g.cfunc, 1024);
        let defects: Vec<_> = report
            .errors()
            .filter(|d| d.code.code != "S2FA-E303")
            .collect();
        assert!(
            defects.is_empty(),
            "{}: dataflow defects {:?}",
            w.name,
            defects
        );
    }
}

/// Satellite differential: no structural transform the DSE can request
/// introduces a new `E3xx` finding on any workload — for the seeds and
/// for random decoded design points alike.
#[test]
fn transforms_never_introduce_dataflow_errors() {
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect(w.name);
        let summary = analysis::summarize(&g.cfunc, 1024).expect(w.name);
        let ds = DesignSpace::build(&summary);
        let baseline = dataflow_checks(&g.cfunc, 1024);
        let mut rng = SmallRng::seed_from_u64(0xDF10);
        let mut configs = vec![
            DesignConfig::perf_seed(&summary),
            DesignConfig::area_seed(&summary),
        ];
        for _ in 0..6 {
            configs.push(ds.decode(&ds.space().random(&mut rng)));
        }
        for cfg in configs {
            let mut norm = cfg.clone();
            norm.normalize(&summary);
            let (optimized, _) = apply_structural(&g.cfunc, &norm);
            let fresh = new_dataflow_errors(&baseline, &dataflow_checks(&optimized, 1024));
            assert!(
                fresh.is_empty(),
                "{}: transform of {:?} introduced {:?}",
                w.name,
                norm,
                fresh
            );
        }
    }
}
