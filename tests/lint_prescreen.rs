//! The legality pre-screen inside the DSE: exact pruning must be free.
//!
//! `DseOptions::prescreen` routes every candidate through the
//! `s2fa-lint` legality oracle before the estimator. Because the oracle
//! shares the estimator's own `ResourceScreen` accounting, a pruned point
//! keeps the exact `+inf` objective the estimator would have produced —
//! the search trajectory is value-identical, only the virtual HLS clock
//! (and the real estimator invocations) shrink. These tests pin that
//! bargain down over the paper's eight workloads.

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, run_dse_traced, DseOptions, DseOutcome};
use s2fa_hlsir::{analysis, KernelSummary};
use s2fa_hlssim::Estimator;
use s2fa_trace::RingSink;
use s2fa_workloads::all_workloads;
use std::sync::Arc;

fn summaries() -> Vec<(&'static str, KernelSummary)> {
    all_workloads()
        .iter()
        .map(|w| {
            let g = compile_kernel(&w.spec).expect(w.name);
            let s = analysis::summarize(&g.cfunc, 1024).expect(w.name);
            (w.name, s)
        })
        .collect()
}

fn prescreen_options() -> DseOptions {
    let mut opts = DseOptions::s2fa();
    opts.prescreen = true;
    opts
}

/// The fields that define an outcome's search trajectory (everything the
/// clock-accounting can influence), for bit-identity comparisons.
fn outcome_key(o: &DseOutcome) -> (Option<String>, Vec<(u64, u64)>, u64, u64) {
    (
        o.best.as_ref().map(|(c, e)| format!("{c:?} {e:?}")),
        o.convergence
            .iter()
            .map(|&(m, v)| (m.to_bits(), v.to_bits()))
            .collect(),
        o.total_evaluations,
        o.elapsed_minutes.to_bits(),
    )
}

#[test]
fn prescreen_keeps_qor_and_cuts_estimator_invocations() {
    // The tentpole acceptance property: on every workload the pre-screened
    // run reaches an equal-or-better QoR while invoking the estimator
    // (cache misses) strictly fewer times; KMeans and S-W must actually
    // prune (their spaces are rich in statically infeasible points).
    let est = Estimator::new();
    for (name, s) in summaries() {
        let base = run_dse(&s, &est, &DseOptions::s2fa());
        let pre = run_dse(&s, &est, &prescreen_options());

        assert!(
            pre.best_value() <= base.best_value(),
            "{name}: prescreen QoR {} worse than base {}",
            pre.best_value(),
            base.best_value()
        );
        assert!(
            pre.cache.misses < base.cache.misses,
            "{name}: prescreen misses {} not below base {}",
            pre.cache.misses,
            base.cache.misses
        );
        assert!(
            pre.elapsed_minutes <= base.elapsed_minutes + 1e-9,
            "{name}: pruning must never lengthen the virtual run"
        );
        if name == "KMeans" || name == "S-W" {
            assert!(pre.pruned_illegal > 0, "{name}: expected pruned points");
        }
        // Bookkeeping invariants: the outcome mirror of the cache counter,
        // and the per-rule split summing back to the total.
        assert_eq!(pre.pruned_illegal, pre.cache.pruned_illegal, "{name}");
        let by_rule: u64 = pre.pruned_by_rule.iter().map(|(_, n)| n).sum();
        assert_eq!(by_rule, pre.pruned_illegal, "{name}: rule split drifted");
        assert_eq!(base.pruned_illegal, 0, "{name}: base run must not prune");
    }
}

#[test]
fn prescreen_off_is_bit_identical_to_the_default() {
    // `prescreen: false` is the default; setting it explicitly (or
    // re-running) must reproduce the identical trajectory — the new
    // plumbing is invisible until opted into.
    let est = Estimator::new();
    for (name, s) in summaries().into_iter().take(3) {
        let a = run_dse(&s, &est, &DseOptions::s2fa());
        let mut explicit = DseOptions::s2fa();
        explicit.prescreen = false;
        let b = run_dse(&s, &est, &explicit);
        assert_eq!(outcome_key(&a), outcome_key(&b), "{name}");
    }
}

#[test]
fn pruned_points_never_win_and_convergence_stays_sane() {
    // The screen only ever removes `+inf` points from the estimator's
    // workload, so the winner must be a genuinely feasible design and the
    // best-so-far trace must stay non-increasing. (The full trajectory is
    // *not* bit-identical to the base run — pruned points charge zero
    // virtual minutes, so the clock buys extra exploration; that surplus
    // is exactly the point.)
    let est = Estimator::new();
    for (name, s) in summaries() {
        let pre = run_dse(&s, &est, &prescreen_options());
        let (_, best) = pre.best.as_ref().expect(name);
        assert!(best.is_feasible(), "{name}: a pruned point won the search");
        assert!(best.time_ms.is_finite(), "{name}");
        for w in pre.convergence.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-12,
                "{name}: convergence regressed from {} to {}",
                w[0].1,
                w[1].1
            );
        }
    }
}

#[test]
fn dead_fraction_is_reported_per_partition() {
    let est = Estimator::new();
    for (name, s) in summaries().into_iter().take(3) {
        let out = run_dse(&s, &est, &DseOptions::s2fa());
        assert!(!out.per_partition.is_empty(), "{name}");
        for p in &out.per_partition {
            assert!(
                (0.0..=1.0).contains(&p.dead_fraction),
                "{name}: partition {} dead_fraction {}",
                p.index,
                p.dead_fraction
            );
        }
    }
}

#[test]
fn prune_events_stream_through_the_trace_sink() {
    // Every pruned point emits exactly one `Event::Prune` carrying its
    // rule code; the stream totals must reconcile with the counters.
    let est = Estimator::new();
    let (name, s) = summaries().swap_remove(7); // S-W: prunes heavily
    let sink = Arc::new(RingSink::new(1 << 16));
    let out = run_dse_traced(&s, &est, &prescreen_options(), sink.clone());
    assert!(out.pruned_illegal > 0, "{name}: expected pruning");
    let prunes = sink.events_where(|e| e.kind() == "prune");
    assert_eq!(prunes.len() as u64, out.pruned_illegal, "{name}");
    for e in &prunes {
        match e {
            s2fa_trace::Event::Prune { rule } => {
                assert!(rule.starts_with("S2FA-E"), "{name}: odd rule {rule}")
            }
            other => panic!("{name}: non-prune event {other:?}"),
        }
    }
}
