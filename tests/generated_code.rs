//! Structural golden tests over the generated HLS C of every workload:
//! guards the bytecode-to-C compiler against silent shape regressions
//! (loop counts, interface arity, paper-style naming, template insertion).

use s2fa::compile_kernel;
use s2fa_hlsir::printer;
use s2fa_workloads::all_workloads;

/// Expected structural features per kernel:
/// (name, loops in the generated C, input buffers, output buffers).
const EXPECTED: &[(&str, usize, usize, usize)] = &[
    ("PR", 2, 1, 1),
    // task + init copies (2 via field binding) + k-loop + j-loop
    ("KMeans", 3, 2, 1),
    ("KNN", 3, 3, 1),
    // task + dot + gradient + output copy
    ("LR", 4, 3, 1),
    ("SVM", 4, 3, 1),
    ("LLS", 4, 3, 1),
    // task + init + round { sub, mix, copy } + output copy
    ("AES", 7, 1, 1),
    // task + ii { jj, row-copy }
    ("S-W", 4, 2, 2),
];

#[test]
fn loop_and_interface_structure_is_stable() {
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect("compiles");
        let (_, loops, ins, outs) = EXPECTED
            .iter()
            .find(|(n, ..)| *n == w.name)
            .expect("kernel listed");
        assert_eq!(
            g.cfunc.loop_ids().len(),
            *loops,
            "{}: loop count changed",
            w.name
        );
        assert_eq!(
            g.input_layout.slots.len(),
            *ins,
            "{}: input buffer count changed",
            w.name
        );
        assert_eq!(
            g.output_layout.slots.len(),
            *outs,
            "{}: output buffer count changed",
            w.name
        );
    }
}

#[test]
fn code3_conventions_hold_for_every_kernel() {
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect("compiles");
        let src = printer::to_c(&g.cfunc);
        // paper Code 3: batch size parameter `n`, template loop, flat
        // in_k / out_k buffers
        assert!(src.contains("(int n, "), "{}: missing batch param", w.name);
        assert!(
            src.contains("L0: for (int i = 0; i < n; i++)"),
            "{}: missing template task loop\n{src}",
            w.name
        );
        assert!(src.contains("in_1"), "{}", w.name);
        assert!(src.contains("out_1"), "{}", w.name);
        // no object-oriented residue
        for forbidden in ["Tuple", "new ", "this.", "->"] {
            assert!(
                !src.contains(forbidden),
                "{}: OO residue `{forbidden}`:\n{src}",
                w.name
            );
        }
    }
}

#[test]
fn sw_kernel_text_matches_the_dp_structure() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "S-W")
        .expect("S-W exists");
    let g = compile_kernel(&w.spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    // two 128-trip DP loops plus the 129-wide row copy
    assert_eq!(src.matches("< 128;").count(), 2, "{src}");
    assert_eq!(src.matches("< 129;").count(), 1);
    // the match/mismatch select lowers to a scored branch
    assert!(src.contains("= 2;"), "{src}");
    assert!(src.contains("= -1;"), "{src}");
    // both input strings are sliced per task (i * 128)
    assert!(src.matches("(i * 128)").count() >= 2, "{src}");
}

#[test]
fn broadcast_buffers_are_not_task_sliced() {
    // KMeans centroids are broadcast: indexed without the task offset.
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "KMeans")
        .expect("KMeans exists");
    let g = compile_kernel(&w.spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    // in_1 (point) is task-sliced, in_2 (centroids) is not
    assert!(src.contains("(i * 8)"), "{src}");
    assert!(!src.contains("in_2[(i"), "{src}");
}
