//! Regression guard for the Fig. 4 manual reference designs: every
//! expert configuration must synthesize (feasible under the 75 % cap) and
//! be at least as fast as the paper's narrative requires.

use s2fa::compile_kernel;
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_merlin::DesignConfig;
use s2fa_workloads::all_workloads;

#[test]
fn every_manual_design_synthesizes() {
    let est = Estimator::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.manual_spec).expect("manual kernel compiles");
        let s = analysis::summarize(&g.cfunc, 1024).expect("manual kernel analyzes");
        let cfg = (w.manual_config)(&s);
        let e = est.evaluate(&s, &cfg);
        assert!(
            e.is_feasible(),
            "{}: manual design fails synthesis: {e}",
            w.name
        );
        assert!(e.freq_mhz >= 60.0);
    }
}

#[test]
fn manual_designs_beat_the_unoptimized_baseline() {
    let est = Estimator::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.manual_spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let manual = est.evaluate(&s, &(w.manual_config)(&s));
        let baseline = est.evaluate(&s, &DesignConfig::area_seed(&s));
        assert!(
            manual.time_ms < baseline.time_ms,
            "{}: manual {} ms should beat unoptimized {} ms",
            w.name,
            manual.time_ms,
            baseline.time_ms
        );
    }
}

#[test]
fn manual_configs_are_normalization_stable() {
    // An expert writes legal directives: normalization must be a no-op
    // beyond clamping (i.e. idempotent and non-degrading).
    let est = Estimator::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.manual_spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let cfg = (w.manual_config)(&s);
        let mut normalized = cfg.clone();
        normalized.normalize(&s);
        let before = est.evaluate(&s, &cfg);
        let after = est.evaluate(&s, &normalized);
        assert_eq!(
            before, after,
            "{}: normalization changed the manual design's estimate",
            w.name
        );
    }
}
