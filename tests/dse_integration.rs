//! DSE integration over real kernels: the §4.3 optimizations behave as the
//! paper describes when driven end to end.

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, vanilla_options, DseOptions, StoppingKind};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_tuner::StopReason;
use s2fa_workloads::{kmeans, knn};

fn summary_of(spec: &s2fa_sjvm::KernelSpec) -> s2fa_hlsir::KernelSummary {
    let g = compile_kernel(spec).unwrap();
    analysis::summarize(&g.cfunc, 1024).unwrap()
}

#[test]
fn s2fa_terminates_before_the_vanilla_time_limit() {
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    let s2 = run_dse(&s, &est, &DseOptions::s2fa());
    let va = run_dse(&s, &est, &vanilla_options());
    assert!(s2.elapsed_minutes < va.elapsed_minutes);
    assert!(
        (va.elapsed_minutes - 240.0).abs() < 1e-9,
        "vanilla runs the full 4 h"
    );
    // and at least one partition stopped via the entropy criterion
    assert!(s2
        .per_partition
        .iter()
        .any(|p| p.reason == StopReason::Converged));
}

#[test]
fn s2fa_matches_or_beats_vanilla_on_knn() {
    // KNN is a kernel where the partitioned, seeded search wins clearly in
    // this reproduction (cf. EXPERIMENTS.md).
    let s = summary_of(&knn::workload().spec);
    let est = Estimator::new();
    let s2 = run_dse(&s, &est, &DseOptions::s2fa());
    let va = run_dse(&s, &est, &vanilla_options());
    assert!(
        s2.best_value() <= va.best_value(),
        "s2fa {} vs vanilla {}",
        s2.best_value(),
        va.best_value()
    );
}

#[test]
fn kmeans_parity_is_the_documented_exception() {
    // Fig. 3: "OpenTuner also achieves the same performance as S2FA [for
    // KMeans] ... because the design space of KMeans is relatively small".
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    let s2 = run_dse(&s, &est, &DseOptions::s2fa());
    let va = run_dse(&s, &est, &vanilla_options());
    let ratio = va.best_value() / s2.best_value();
    assert!(
        (0.7..=1.4).contains(&ratio),
        "expected near-parity on KMeans, got ratio {ratio}"
    );
}

#[test]
fn seeds_make_the_first_minutes_productive() {
    // The QoR of the first explored points shows the seed effect (§5.2):
    // the seeded run has a feasible design almost immediately.
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    let seeded = run_dse(&s, &est, &DseOptions::s2fa());
    let first_feasible_minute = seeded
        .convergence
        .first()
        .map(|&(m, _)| m)
        .expect("something feasible was found");
    assert!(
        first_feasible_minute < 30.0,
        "first feasible design at minute {first_feasible_minute}"
    );
}

#[test]
fn all_stopping_kinds_run_to_completion() {
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    for kind in [
        StoppingKind::TimeLimit,
        StoppingKind::Trivial { k: 10 },
        StoppingKind::Entropy { theta: 0.1, n: 3 },
    ] {
        let mut opts = DseOptions::s2fa();
        opts.stopping = kind;
        opts.budget_minutes = 90.0;
        let out = run_dse(&s, &est, &opts);
        assert!(out.best.is_some(), "{kind:?} found a design");
        assert!(out.elapsed_minutes <= 90.0 + 1e-9);
    }
}

#[test]
fn partition_union_preserves_the_best_known_design() {
    // §4.3.1: "since all partitions are disjoint and the union of all
    // partitions is the original space, our design space partition
    // approach preserves the optimality" — the partitioned run must be
    // able to reach any design the unpartitioned run found, given the
    // same budget (within noise; we check it isn't catastrophically
    // worse).
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    let mut unpart = DseOptions::s2fa();
    unpart.partition = false;
    let part = run_dse(&s, &est, &DseOptions::s2fa());
    let flat = run_dse(&s, &est, &unpart);
    assert!(
        part.best_value() <= flat.best_value() * 2.0,
        "partitioned {} vs flat {}",
        part.best_value(),
        flat.best_value()
    );
}

#[test]
fn full_dse_is_deterministic_on_a_real_kernel() {
    // Thread scheduling must not leak into results: two complete runs on
    // the same kernel produce byte-identical outcomes.
    let s = summary_of(&kmeans::workload().spec);
    let est = Estimator::new();
    let mut opts = DseOptions::s2fa();
    opts.budget_minutes = 90.0;
    let a = run_dse(&s, &est, &opts);
    let b = run_dse(&s, &est, &opts);
    assert_eq!(a.best_value(), b.best_value());
    assert_eq!(a.total_evaluations, b.total_evaluations);
    assert_eq!(a.convergence, b.convergence);
    assert_eq!(a.partitions, b.partitions);
    for (pa, pb) in a.per_partition.iter().zip(&b.per_partition) {
        assert_eq!(pa.evaluations, pb.evaluations);
        assert_eq!(pa.best_value, pb.best_value);
        assert_eq!(pa.worker, pb.worker);
    }
}

#[test]
fn different_rng_seeds_explore_differently_but_converge_similarly() {
    // KNN's larger space guarantees post-seed improvements, so the traces
    // genuinely depend on the exploration RNG. (On KMeans the generated
    // seeds are already optimal and the traces would coincide.)
    let s = summary_of(&knn::workload().spec);
    let est = Estimator::new();
    let mut a_opts = DseOptions::s2fa();
    a_opts.budget_minutes = 120.0;
    let mut b_opts = a_opts.clone();
    b_opts.rng_seed = 777;
    let a = run_dse(&s, &est, &a_opts);
    let b = run_dse(&s, &est, &b_opts);
    // exploration differs ...
    assert_ne!(a.convergence, b.convergence);
    // ... but both land within 2x of each other on this small space
    let ratio = a.best_value() / b.best_value();
    assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
}
