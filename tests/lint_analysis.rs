//! Static-analysis integration: the `s2fa-lint` well-formedness verifier
//! and legality oracle over the paper's eight workloads.
//!
//! Three properties are pinned down here:
//!
//! 1. every generated kernel is well-formed, before *and* after any
//!    structural transform the DSE can request (the verifier never
//!    reports false positives on the compiler's own output);
//! 2. the legality pre-screen agrees with the estimator *exactly* — a
//!    design point is pruned iff the estimator would call it infeasible;
//! 3. deliberately corrupted ASTs produce the documented `S2FA-Exxx`
//!    codes (the verifier is not vacuous).

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use s2fa::compile_kernel;
use s2fa_dse::DesignSpace;
use s2fa_hlsir::{analysis, CFunction, CType, Expr, KernelSummary, LValue, LoopId, Stmt};
use s2fa_hlssim::Estimator;
use s2fa_lint::{codes, factor_diagnostics, new_errors, verify_function, Legality, LintReport};
use s2fa_merlin::{apply_structural, check_factors, DesignConfig};
use s2fa_workloads::all_workloads;
use std::sync::OnceLock;

/// One workload, compiled once and shared across tests/cases.
struct Fixture {
    name: &'static str,
    cfunc: CFunction,
    summary: KernelSummary,
    ds: DesignSpace,
    baseline: LintReport,
}

fn fixtures() -> &'static [Fixture] {
    static FIX: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIX.get_or_init(|| {
        all_workloads()
            .iter()
            .map(|w| {
                let g = compile_kernel(&w.spec).expect(w.name);
                let summary = analysis::summarize(&g.cfunc, 1024).expect(w.name);
                let ds = DesignSpace::build(&summary);
                let baseline = verify_function(&g.cfunc);
                Fixture {
                    name: w.name,
                    cfunc: g.cfunc,
                    summary,
                    ds,
                    baseline,
                }
            })
            .collect()
    })
}

/// Turns an arbitrary raw index vector into an in-domain config.
fn raw_to_config(fx: &Fixture, raw: &[u32]) -> DesignConfig {
    let n = fx.ds.space().params().len();
    let mut cfg: Vec<u32> = (0..n).map(|i| raw.get(i).copied().unwrap_or(0)).collect();
    fx.ds.space().clamp(&mut cfg);
    fx.ds.decode(&cfg)
}

#[test]
fn all_kernels_verify_clean() {
    for fx in fixtures() {
        assert!(
            !fx.baseline.has_errors(),
            "{} failed the verifier:\n{}",
            fx.name,
            fx.baseline.render()
        );
    }
}

#[test]
fn transforms_never_introduce_errors() {
    // Perf seed, area seed, and a batch of random decoded points per
    // kernel: the structurally rewritten function must be at least as
    // well-formed as its pre-image.
    for fx in fixtures() {
        let mut rng = SmallRng::seed_from_u64(2018);
        let mut configs = vec![
            DesignConfig::perf_seed(&fx.summary),
            DesignConfig::area_seed(&fx.summary),
        ];
        for _ in 0..8 {
            configs.push(fx.ds.decode(&fx.ds.space().random(&mut rng)));
        }
        for cfg in configs {
            let mut norm = cfg.clone();
            norm.normalize(&fx.summary);
            let (optimized, _) = apply_structural(&fx.cfunc, &norm);
            let post = verify_function(&optimized);
            let fresh = new_errors(&fx.baseline, &post);
            assert!(
                fresh.is_empty(),
                "{}: transform introduced {:?}",
                fx.name,
                fresh
            );
        }
    }
}

#[test]
fn prescreen_agrees_with_the_estimator_on_every_workload() {
    // The exactness property behind the DSE's pruning: Legality rejects a
    // design point iff the estimator reports it infeasible. Both sides
    // share the `ResourceScreen` accounting, so this must hold for seeds
    // and for arbitrary random points alike.
    let est = Estimator::new();
    for fx in fixtures() {
        let oracle = Legality::new(&fx.summary, &est);
        let mut rng = SmallRng::seed_from_u64(0x5EED ^ fx.summary.loops.len() as u64);
        let mut configs = vec![
            DesignConfig::perf_seed(&fx.summary),
            DesignConfig::area_seed(&fx.summary),
        ];
        for _ in 0..16 {
            configs.push(fx.ds.decode(&fx.ds.space().random(&mut rng)));
        }
        for cfg in configs {
            let hit = oracle.prescreen(&cfg);
            let estimate = est.evaluate(&fx.summary, &cfg);
            assert_eq!(
                hit.is_some(),
                !estimate.is_feasible(),
                "{}: prescreen {:?} disagrees with estimator {:?}",
                fx.name,
                hit.map(|h| h.rule),
                estimate.feasibility
            );
        }
    }
}

#[test]
fn factor_diagnostics_mirror_the_transform_errors() {
    // Satellite property: every factor smell the lint layer reports maps
    // 1:1 onto a `TransformError` the structural applier would hit, so a
    // lint-clean config can never be rejected by `apply_structural` for
    // factor reasons (no false positives, no false negatives).
    for fx in fixtures() {
        let mut rng = SmallRng::seed_from_u64(41);
        for _ in 0..32 {
            let cfg = fx.ds.decode(&fx.ds.space().random(&mut rng));
            let diags = factor_diagnostics(&fx.cfunc, &cfg);
            let errs = check_factors(&fx.cfunc, &cfg);
            assert_eq!(
                diags.len(),
                errs.len(),
                "{}: lint saw {:?}, transform saw {:?}",
                fx.name,
                diags,
                errs
            );
        }
    }
}

#[test]
fn corrupted_ast_yields_the_documented_codes() {
    let base = &fixtures()[1]; // KMeans
    let has = |f: &CFunction, code: &str| {
        verify_function(f)
            .diagnostics
            .iter()
            .any(|d| d.code.code == code)
    };

    // E101: read of a never-defined scalar.
    let mut f = base.cfunc.clone();
    f.body.push(Stmt::Decl {
        name: "lint_tmp".into(),
        ty: CType::Int(32),
        init: Some(Expr::var("never_defined")),
    });
    assert!(has(&f, codes::USE_BEFORE_DEF.code), "expected E101");

    // E102: constant index past a local array's declared length.
    let mut f = base.cfunc.clone();
    f.body.push(Stmt::DeclArr {
        name: "lint_small".into(),
        ty: CType::Int(32),
        len: 4,
    });
    f.body.push(Stmt::Decl {
        name: "lint_tmp2".into(),
        ty: CType::Int(32),
        init: Some(Expr::index("lint_small", Expr::ConstI(9))),
    });
    assert!(has(&f, codes::OOB_INDEX.code), "expected E102");

    // E103: two loops claiming the same id.
    let mut f = base.cfunc.clone();
    f.body.push(Stmt::counted_for(LoopId(77), "li", 4, vec![]));
    f.body.push(Stmt::counted_for(LoopId(77), "lj", 4, vec![]));
    assert!(has(&f, codes::DUP_LOOP_ID.code), "expected E103");

    // E104: store into a read-only input buffer.
    let mut f = base.cfunc.clone();
    let input = f
        .params
        .iter()
        .find(|p| p.kind == s2fa_hlsir::ParamKind::BufIn)
        .expect("kmeans has input buffers")
        .name
        .clone();
    f.body.push(Stmt::Assign {
        lhs: LValue::Index(input, Box::new(Expr::ConstI(0))),
        rhs: Expr::ConstI(0),
    });
    assert!(has(&f, codes::WRITE_TO_INPUT.code), "expected E104");

    // W111: a zero-trip loop is reported, but only as a warning.
    let mut f = base.cfunc.clone();
    f.body.push(Stmt::counted_for(LoopId(78), "lk", 0, vec![]));
    let report = verify_function(&f);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code.code == codes::DEAD_LOOP.code),
        "expected W111"
    );
    assert!(!report.has_errors(), "a dead loop is not an error");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // Satellite (b): for *arbitrary* decoded configs, the structural
    // applier and the verifier never panic, the rewrite never introduces
    // errors, and the legality oracle always returns a verdict.
    #[test]
    fn arbitrary_configs_never_panic(
        which in 0usize..8,
        raw in proptest::collection::vec(any::<u32>(), 0..16),
    ) {
        let fx = &fixtures()[which];
        let cfg = raw_to_config(fx, &raw);
        let mut norm = cfg.clone();
        norm.normalize(&fx.summary);
        let (optimized, _) = apply_structural(&fx.cfunc, &norm);
        let post = verify_function(&optimized);
        prop_assert!(new_errors(&fx.baseline, &post).is_empty());

        let est = Estimator::new();
        let oracle = Legality::new(&fx.summary, &est);
        let _ = oracle.check(&cfg);
        let hit = oracle.prescreen(&cfg);
        prop_assert_eq!(hit.is_some(), !est.evaluate(&fx.summary, &cfg).is_feasible());
    }
}
