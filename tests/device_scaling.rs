//! Reproduces the §5.2 remark: compute-bound kernels "fully utilize at
//! least one kind of resource ... their performance can be potentially
//! improved if a larger FPGA is provided", while memory-bound kernels
//! (AES, PR) cannot.

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, DseOptions};
use s2fa_hlsir::analysis;
use s2fa_hlssim::{Device, Estimator};
use s2fa_workloads::all_workloads;

fn best_on(
    device: Device,
    spec: &s2fa_sjvm::KernelSpec,
) -> (f64, Option<s2fa_merlin::DesignConfig>) {
    let g = compile_kernel(spec).unwrap();
    let s = analysis::summarize(&g.cfunc, 1024).unwrap();
    let est = Estimator::with_device(device);
    let mut opts = DseOptions::s2fa();
    opts.budget_minutes = 120.0;
    let out = run_dse(&s, &est, &opts);
    (out.best_value(), out.best.map(|(cfg, _)| cfg))
}

#[test]
fn larger_fpga_helps_compute_bound_kernels_only() {
    let mut improved = Vec::new();
    let mut unchanged = Vec::new();
    for w in all_workloads() {
        // one compute-bound and one memory-bound representative keep the
        // test fast
        if w.name != "LR" && w.name != "PR" {
            continue;
        }
        let (small, small_cfg) = best_on(Device::vu9p(), &w.spec);
        let (searched_big, _) = best_on(Device::vu13p(), &w.spec);
        // The flow ports the small-device winner to the larger part (the
        // larger device accepts every VU9P-feasible design), so the
        // deployed design is the better of the ported and the re-searched
        // one. Without the port, stochastic search noise on the changed
        // landscape could masquerade as a device regression.
        let g = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let ported = s2fa_hlssim::Estimator::with_device(Device::vu13p())
            .evaluate(&s, &small_cfg.expect("vu9p search found a design"))
            .objective();
        let big = searched_big.min(ported);
        assert!(
            big <= small * 1.05,
            "{}: a larger device must never hurt ({big} vs {small})",
            w.name
        );
        if big < small * 0.97 {
            improved.push(w.name);
        } else {
            unchanged.push(w.name);
        }
    }
    // PR is pinned by the (identical) memory system
    assert!(
        unchanged.contains(&"PR"),
        "PR should not improve on a larger device: improved={improved:?}"
    );
}
