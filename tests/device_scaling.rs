//! Reproduces the §5.2 remark: compute-bound kernels "fully utilize at
//! least one kind of resource ... their performance can be potentially
//! improved if a larger FPGA is provided", while memory-bound kernels
//! (AES, PR) cannot.

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, DseOptions};
use s2fa_hlsir::analysis;
use s2fa_hlssim::{Device, Estimator};
use s2fa_workloads::all_workloads;

fn best_on(device: Device, spec: &s2fa_sjvm::KernelSpec) -> f64 {
    let g = compile_kernel(spec).unwrap();
    let s = analysis::summarize(&g.cfunc, 1024).unwrap();
    let est = Estimator::with_device(device);
    let mut opts = DseOptions::s2fa();
    opts.budget_minutes = 120.0;
    run_dse(&s, &est, &opts).best_value()
}

#[test]
fn larger_fpga_helps_compute_bound_kernels_only() {
    let mut improved = Vec::new();
    let mut unchanged = Vec::new();
    for w in all_workloads() {
        // one compute-bound and one memory-bound representative keep the
        // test fast
        if w.name != "LR" && w.name != "PR" {
            continue;
        }
        let small = best_on(Device::vu9p(), &w.spec);
        let big = best_on(Device::vu13p(), &w.spec);
        assert!(
            big <= small * 1.05,
            "{}: a larger device must never hurt ({big} vs {small})",
            w.name
        );
        if big < small * 0.97 {
            improved.push(w.name);
        } else {
            unchanged.push(w.name);
        }
    }
    // PR is pinned by the (identical) memory system
    assert!(
        unchanged.contains(&"PR"),
        "PR should not improve on a larger device: improved={improved:?}"
    );
}
