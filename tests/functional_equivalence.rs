//! Cross-checks the executable forms of every evaluation kernel:
//!
//! 1. the JVM bytecode interpreter (the Spark baseline),
//! 2. the generated HLS C executed by the IR executor (the accelerator).
//!
//! (The native Rust references are cross-checked against (1) inside the
//! workload crate's own unit tests, closing the triangle.)
//!
//! Equivalence of (1) and (2) on every workload is the core guarantee of
//! the bytecode-to-C compiler: "the S2FA framework is able to compile any
//! Java/Scala method that satisfies the constraints ... to an FPGA kernel".

use s2fa::compile_kernel;
use s2fa_blaze::Accelerator;
use s2fa_sjvm::{HostValue, Interp, RddOp};
use s2fa_workloads::all_workloads;

fn canon(v: &HostValue) -> HostValue {
    match v {
        HostValue::Str(s) => HostValue::Arr(s.bytes().map(|b| HostValue::I(b as i64)).collect()),
        HostValue::Tuple(vs) | HostValue::Obj(_, vs) => {
            HostValue::Tuple(vs.iter().map(canon).collect())
        }
        HostValue::Arr(vs) => HostValue::Arr(vs.iter().map(canon).collect()),
        other => other.clone(),
    }
}

/// Pads string/array leaves to the record shape so the JVM path sees the
/// same padded bytes the serializer sends to the accelerator.
fn pad_to_shape(v: &HostValue, shape: &s2fa_sjvm::Shape) -> HostValue {
    use s2fa_sjvm::Shape;
    match (v, shape) {
        (HostValue::Str(s), Shape::Array(_, n)) => {
            let mut bytes: Vec<HostValue> = s.bytes().map(|b| HostValue::I(b as i64)).collect();
            bytes.resize(*n as usize, HostValue::I(0));
            HostValue::Arr(bytes)
        }
        (HostValue::Arr(items), Shape::Array(_, n)) => {
            let mut items = items.clone();
            while items.len() < *n as usize {
                items.push(match items.first() {
                    Some(HostValue::F(_)) => HostValue::F(0.0),
                    _ => HostValue::I(0),
                });
            }
            HostValue::Arr(items)
        }
        (HostValue::Tuple(vs) | HostValue::Obj(_, vs), Shape::Composite(fs)) => {
            HostValue::Tuple(vs.iter().zip(fs).map(|(v, f)| pad_to_shape(v, f)).collect())
        }
        (v, Shape::Bcast(inner)) => pad_to_shape(v, inner),
        _ => v.clone(),
    }
}

#[test]
fn all_workloads_jvm_vs_accelerator() {
    for w in all_workloads() {
        let generated =
            compile_kernel(&w.spec).unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name));
        let accel = Accelerator {
            id: w.name.to_string(),
            kernel: generated.cfunc.clone(),
            operator: w.spec.operator,
            input_layout: generated.input_layout.clone(),
            output_layout: generated.output_layout.clone(),
            time_model: None,
        };
        let records = (w.gen_input)(3, 0xBEEF);
        let (hw, _) = accel
            .run_batch(&records)
            .unwrap_or_else(|e| panic!("{} accelerator run failed: {e}", w.name));
        let mut interp = Interp::new(&w.spec.classes, &w.spec.methods);
        assert_eq!(w.spec.operator, RddOp::Map, "all table-2 kernels are maps");
        for (i, rec) in records.iter().enumerate() {
            let padded = pad_to_shape(rec, &w.spec.input_shape);
            let (jvm, _) = interp
                .run(w.spec.entry, std::slice::from_ref(&padded))
                .unwrap_or_else(|e| panic!("{} jvm run failed: {e}", w.name));
            assert_eq!(
                canon(&jvm),
                canon(&hw[i]),
                "{}: record {i} diverged between JVM and accelerator",
                w.name
            );
        }
    }
}

#[test]
fn manual_specs_also_compile_and_agree() {
    for w in all_workloads() {
        let generated = compile_kernel(&w.manual_spec)
            .unwrap_or_else(|e| panic!("{} manual spec failed to compile: {e}", w.name));
        let accel = Accelerator {
            id: format!("{}-manual", w.name),
            kernel: generated.cfunc.clone(),
            operator: w.manual_spec.operator,
            input_layout: generated.input_layout.clone(),
            output_layout: generated.output_layout.clone(),
            time_model: None,
        };
        let records = (w.gen_input)(2, 7);
        let (hw, _) = accel.run_batch(&records).expect("manual accelerator runs");
        let mut interp = Interp::new(&w.manual_spec.classes, &w.manual_spec.methods);
        for (i, rec) in records.iter().enumerate() {
            let padded = pad_to_shape(rec, &w.manual_spec.input_shape);
            let (jvm, _) = interp
                .run(w.manual_spec.entry, std::slice::from_ref(&padded))
                .expect("jvm runs");
            assert_eq!(canon(&jvm), canon(&hw[i]), "{} manual record {i}", w.name);
        }
    }
}

#[test]
fn batch_sizes_do_not_change_results() {
    // Serializer layouts index buffers as task*count+k: verify there is no
    // batch-size dependence anywhere in the offload path.
    for w in all_workloads() {
        let generated = compile_kernel(&w.spec).expect("compiles");
        let accel = Accelerator {
            id: w.name.to_string(),
            kernel: generated.cfunc.clone(),
            operator: w.spec.operator,
            input_layout: generated.input_layout.clone(),
            output_layout: generated.output_layout.clone(),
            time_model: None,
        };
        let records = (w.gen_input)(5, 0xABCD);
        // run the full batch, then each record alone; results must agree
        let (all, _) = accel.run_batch(&records).expect("batch runs");
        for (i, rec) in records.iter().enumerate() {
            let (one, _) = accel
                .run_batch(std::slice::from_ref(rec))
                .expect("singleton runs");
            assert_eq!(
                canon(&one[0]),
                canon(&all[i]),
                "{}: record {i} depends on batch size",
                w.name
            );
        }
    }
}
