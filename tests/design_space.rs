//! Table 1 assertions: the identified design space of every kernel matches
//! the factor families of the paper and is far too large to enumerate.

use s2fa::compile_kernel;
use s2fa_dse::DesignSpace;
use s2fa_hlsir::analysis;
use s2fa_workloads::all_workloads;

#[test]
fn every_kernel_has_all_four_factor_families() {
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).expect("compiles");
        let s = analysis::summarize(&g.cfunc, 1024).expect("analyzes");
        let ds = DesignSpace::build(&s);
        let names: Vec<&str> = ds
            .space()
            .params()
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        // one {tile, parallel, pipeline} triple per loop
        for l in &s.loops {
            assert!(
                names.contains(&format!("{}.tile", l.id).as_str()),
                "{}",
                w.name
            );
            assert!(
                names.contains(&format!("{}.parallel", l.id).as_str()),
                "{}",
                w.name
            );
            assert!(
                names.contains(&format!("{}.pipeline", l.id).as_str()),
                "{}",
                w.name
            );
        }
        // one bit-width per interface buffer
        let iface = s
            .buffers
            .iter()
            .filter(|b| b.dir != s2fa_hlsir::BufferDir::Local)
            .count();
        let bit_params = names.iter().filter(|n| n.ends_with(".bits")).count();
        assert_eq!(bit_params, iface, "{}", w.name);
    }
}

#[test]
fn bit_width_family_matches_table1() {
    // b = 2^n with 8 < b <= 512
    let w = &all_workloads()[0];
    let g = compile_kernel(&w.spec).unwrap();
    let s = analysis::summarize(&g.cfunc, 1024).unwrap();
    let ds = DesignSpace::build(&s);
    let p = &ds.space().params()[ds.space().param_index("in_1.bits").unwrap()];
    let values: Vec<u32> = (0..p.cardinality()).map(|i| p.value_at(i)).collect();
    assert_eq!(values, vec![16, 32, 64, 128, 256, 512]);
}

#[test]
fn spaces_are_impractically_large() {
    let mut max_log10 = 0.0f64;
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let ds = DesignSpace::build(&s);
        let log10 = ds.size_log10();
        assert!(
            log10 > 4.0,
            "{} space should be far beyond exhaustive search, got 10^{log10:.1}",
            w.name
        );
        max_log10 = max_log10.max(log10);
    }
    // "the design space of the S-W example contains more than a thousand
    // trillion design points" (§4.1) — our largest space is of that order.
    assert!(
        max_log10 > 12.0,
        "largest space should exceed 10^12, got 10^{max_log10:.1}"
    );
}

#[test]
fn kmeans_has_the_smallest_ml_space() {
    // The Fig. 3 exception: "the design space of KMeans is relatively
    // small, so the benefit of design space partition is marginal."
    let mut sizes = std::collections::HashMap::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        sizes.insert(w.name, DesignSpace::build(&s).size_log10());
    }
    for ml in ["KNN", "LR", "SVM", "LLS"] {
        assert!(
            sizes["KMeans"] < sizes[ml],
            "KMeans (10^{:.1}) should be smaller than {ml} (10^{:.1})",
            sizes["KMeans"],
            sizes[ml]
        );
    }
}

#[test]
fn decode_always_yields_normalized_feasible_syntax() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    // decoding any random point must produce a config that normalizes
    // without panicking and round-trips through the estimator
    let est = s2fa_hlssim::Estimator::new();
    for w in all_workloads() {
        let g = compile_kernel(&w.spec).unwrap();
        let s = analysis::summarize(&g.cfunc, 1024).unwrap();
        let ds = DesignSpace::build(&s);
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..50 {
            let cfg = ds.space().random(&mut rng);
            let dc = ds.decode(&cfg);
            let e = est.evaluate(&s, &dc);
            assert!(e.hls_minutes > 0.0);
        }
    }
}
