//! A full machine-learning pipeline: K-Means Lloyd iterations with the
//! assignment step offloaded through S2FA, exactly how a Spark ML job
//! would use Blaze.
//!
//! Each iteration maps the dataset through the nearest-centroid kernel on
//! the accelerator, then recomputes centroids on the driver — the
//! compute-heavy step runs on "hardware", the reduction on the host.
//!
//! ```text
//! cargo run --release -p s2fa --example kmeans_pipeline
//! ```

use s2fa::{S2fa, S2faOptions};
use s2fa_blaze::{AccCall, AcceleratorRegistry, BlazeContext, Rdd};
use s2fa_sjvm::HostValue;
use s2fa_workloads::kmeans::{self, D, K};

/// Rebuilds the per-record input (point, broadcast centroids).
fn attach_centroids(points: &[Vec<f64>], centroids: &[f64]) -> Rdd {
    points
        .iter()
        .map(|p| HostValue::pair(HostValue::f64_array(p), HostValue::f64_array(centroids)))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Synthetic dataset: K gaussian-ish blobs.
    let records = (kmeans::workload().gen_input)(512, 33);
    let points: Vec<Vec<f64>> = records
        .iter()
        .map(|r| {
            r.elements().expect("pair")[0]
                .elements()
                .expect("point array")
                .iter()
                .map(|v| v.as_f64().expect("floats"))
                .collect()
        })
        .collect();

    // Compile and register the assignment kernel.
    println!("compiling the KMeans assignment kernel ...");
    let framework = S2fa::new(S2faOptions::default());
    let compiled = framework.compile(&kmeans::workload().spec)?;
    let registry = AcceleratorRegistry::new();
    registry.register(compiled.accelerator.clone());
    let blaze = BlazeContext::new(&registry);
    let call = AccCall {
        id: "KMeans".into(),
        spec: kmeans::workload().spec.clone(),
    };

    // Lloyd iterations.
    let mut centroids: Vec<f64> = points
        .iter()
        .take(K as usize)
        .flat_map(|p| p.iter().copied())
        .collect();
    let mut total_offload_ms = 0.0;
    for iter in 0..5 {
        let rdd = attach_centroids(&points, &centroids);
        let (assignments, report) = blaze.wrap(rdd).map(&call)?;
        total_offload_ms += report.time_ms_or_zero();

        // Driver-side centroid update.
        let mut sums = vec![0.0f64; (K * D) as usize];
        let mut counts = vec![0u32; K as usize];
        for (p, a) in points.iter().zip(assignments.collect()) {
            let k = a.as_i64().expect("cluster id") as usize;
            counts[k] += 1;
            for (j, &x) in p.iter().enumerate() {
                sums[k * D as usize + j] += x;
            }
        }
        let mut moved = 0.0;
        for k in 0..K as usize {
            if counts[k] == 0 {
                continue;
            }
            for j in 0..D as usize {
                let new = sums[k * D as usize + j] / counts[k] as f64;
                moved += (new - centroids[k * D as usize + j]).abs();
                centroids[k * D as usize + j] = new;
            }
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        println!(
            "iteration {iter}: {occupied}/{K} clusters occupied, centroid movement {moved:.4}, \
             offload {:.3} ms (modelled)",
            report.time_ms_or_zero()
        );
    }
    println!(
        "\ntotal accelerator time over 5 iterations: {total_offload_ms:.3} ms (modelled) \
         for {} assignments",
        5 * points.len()
    );
    Ok(())
}
