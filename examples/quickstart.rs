//! Quickstart: compile a tiny Spark-style lambda to an FPGA accelerator.
//!
//! Mirrors the paper's programming model end to end in ~60 lines: write a
//! "Scala" lambda (builder DSL → JVM bytecode), hand it to S2FA, and look
//! at the generated HLS C, the explored design space, and the chosen
//! design.
//!
//! ```text
//! cargo run --release -p s2fa --example quickstart
//! ```

use s2fa::{S2fa, S2faOptions};
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, JType, KernelSpec, MethodTable, RddOp, Shape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The "Scala" lambda: def call(x: (Double, Double)): Double =
    //        sqrt(x._1 * x._1 + x._2 * x._2)
    let mut classes = ClassTable::new();
    let pair = classes.define_tuple2(JType::Double, JType::Double);
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("x", JType::Ref(pair))], Some(JType::Double));
    let x = b.param(0);
    b.ret(
        Expr::local(x)
            .field("_1")
            .mul(Expr::local(x).field("_1"))
            .add(Expr::local(x).field("_2").mul(Expr::local(x).field("_2")))
            .sqrt(),
    );
    let entry = b.finish(&mut classes, &mut methods)?;
    let spec = KernelSpec {
        name: "norm".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(Shape::Scalar(JType::Double), Shape::Scalar(JType::Double)),
        output_shape: Shape::Scalar(JType::Double),
    };

    // 2. The automatic flow: bytecode → HLS C → design space → DSE.
    let framework = S2fa::new(S2faOptions::default());
    let compiled = framework.compile(&spec)?;

    println!("=== generated HLS C (with the chosen design's pragmas) ===");
    println!("{}", compiled.optimized_source);
    println!(
        "design space: 10^{:.1} points | explored: {} evaluations in {:.0} virtual minutes",
        compiled.space_size_log10,
        compiled
            .dse
            .as_ref()
            .map(|d| d.total_evaluations)
            .unwrap_or(0),
        compiled
            .dse
            .as_ref()
            .map(|d| d.elapsed_minutes)
            .unwrap_or(0.0),
    );
    println!("chosen design: {}", compiled.design.brief());
    println!("estimate:      {}", compiled.estimate);
    Ok(())
}
