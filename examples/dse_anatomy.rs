//! Anatomy of the design-space exploration: what §4 of the paper actually
//! does, step by step, on one kernel.
//!
//! Shows the identified design space (Table 1), the decision-tree
//! partition rules (§4.3.1), the two generated seeds (§4.3.2), the
//! per-partition exploration with the Shannon-entropy stop (§4.3.3), and
//! the resulting convergence against vanilla OpenTuner.
//!
//! ```text
//! cargo run --release -p s2fa --example dse_anatomy
//! ```

use s2fa::compile_kernel;
use s2fa_dse::{run_dse, vanilla_options, DesignSpace, DseOptions, Partitioner};
use s2fa_hlsir::analysis;
use s2fa_hlssim::Estimator;
use s2fa_merlin::DesignConfig;
use s2fa_workloads::knn;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = knn::workload().spec;
    let estimator = Estimator::new();

    // --- design-space identification (§4.1) ------------------------------
    let generated = compile_kernel(&spec)?;
    let summary = analysis::summarize(&generated.cfunc, 1024)?;
    let space = DesignSpace::build(&summary);
    println!("=== design space (Table 1) for {} ===", summary.name);
    for p in space.space().params() {
        println!("  {:<16} {} values", p.name, p.cardinality());
    }
    println!("  total: 10^{:.1} design points\n", space.size_log10());

    // --- seeds (§4.3.2) ---------------------------------------------------
    let perf = DesignConfig::perf_seed(&summary);
    let area = DesignConfig::area_seed(&summary);
    println!("=== generated seeds ===");
    println!("  performance-driven: {}", perf.brief());
    println!("    -> {}", estimator.evaluate(&summary, &perf));
    println!("  area-driven:        {}", area.brief());
    println!("    -> {}\n", estimator.evaluate(&summary, &area));

    // --- static partitioning (§4.3.1) --------------------------------------
    let tree = Partitioner::default().partition(&space, &summary, &mut |cfg| {
        estimator.evaluate(&summary, &space.decode(cfg)).objective()
    });
    println!("=== decision-tree partitions (ranked, most promising first) ===");
    for (i, rule) in tree.describe().iter().enumerate() {
        println!("  {i:>2}: {rule}");
    }

    // --- the full DSE vs vanilla OpenTuner (§5.2) ---------------------------
    println!("\n=== exploration ===");
    let s2fa = run_dse(&summary, &estimator, &DseOptions::s2fa());
    let vanilla = run_dse(&summary, &estimator, &vanilla_options());
    println!(
        "  S2FA:      best {:.4} ms after {:.0} virtual minutes ({} evaluations)",
        s2fa.best_value(),
        s2fa.elapsed_minutes,
        s2fa.total_evaluations
    );
    for p in s2fa.per_partition.iter().take(4) {
        println!(
            "    partition {} on core {}: best {:.4} ms, {:?} after {:.0} min",
            p.index, p.worker, p.best_value, p.reason, p.elapsed_minutes
        );
    }
    println!(
        "  OpenTuner: best {:.4} ms after the fixed {:.0} minutes ({} evaluations)",
        vanilla.best_value(),
        vanilla.elapsed_minutes,
        vanilla.total_evaluations
    );
    println!(
        "\n  QoR ratio (vanilla / S2FA): {:.2}x; S2FA terminated {:.0} minutes earlier",
        vanilla.best_value() / s2fa.best_value(),
        vanilla.elapsed_minutes - s2fa.elapsed_minutes
    );
    Ok(())
}
