//! The paper's running example (§2, Code 1): offloading Smith-Waterman
//! string matching on `RDD[(String, String)]` through the Blaze runtime.
//!
//! Runs the automatic flow on the S-W kernel, registers the generated
//! accelerator with the Blaze accelerator manager, and shows the same
//! `map` call executing on the JVM before registration and on the
//! accelerator after — with identical alignment scores.
//!
//! ```text
//! cargo run --release -p s2fa --example smith_waterman
//! ```

use s2fa::{S2fa, S2faOptions};
use s2fa_blaze::{AccCall, AcceleratorRegistry, BlazeContext, Rdd};
use s2fa_workloads::sw;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = sw::workload();

    // Compile the Scala lambda to an accelerator design.
    println!("compiling the S-W kernel (codegen + DSE) ...");
    let framework = S2fa::new(S2faOptions::default());
    let compiled = framework.compile(&workload.spec)?;
    println!(
        "  design {} @ {:.0} MHz — {}",
        compiled.design.brief(),
        compiled.estimate.freq_mhz,
        compiled.estimate
    );

    // val pairs: RDD[(String, String)] = ...
    let pairs = Rdd::from_values((workload.gen_input)(4, 7));
    let registry = AcceleratorRegistry::new();
    let blaze = BlazeContext::new(&registry);
    let sw_call = AccCall {
        id: workload.spec.name.clone(),
        spec: workload.spec.clone(),
    };

    // Without a registered accelerator, Blaze falls back to the JVM.
    let blaze_pairs = blaze.wrap(pairs.clone());
    let (jvm_scores, jvm_report) = blaze_pairs.map(&sw_call)?;
    println!(
        "JVM fallback:   {} pairs in {:.3} ms (modelled)",
        jvm_report.tasks,
        jvm_report.time_ms_or_zero()
    );

    // Register the generated design; the same call now offloads.
    registry.register(compiled.accelerator.clone());
    let blaze_pairs = blaze.wrap(pairs);
    let (fpga_scores, fpga_report) = blaze_pairs.map(&sw_call)?;
    println!(
        "FPGA offload:   {} pairs in {:.3} ms (modelled), {} interface bytes",
        fpga_report.tasks,
        fpga_report.time_ms_or_zero(),
        fpga_report.bytes
    );
    assert_eq!(jvm_scores.collect(), fpga_scores.collect());

    println!("\nalignment results (score, end position):");
    for (i, v) in fpga_scores.collect().iter().enumerate() {
        let f = v.elements().expect("tuple output");
        println!(
            "  pair {i}: score {} at cell {}",
            f[0].as_i64().unwrap_or(0),
            f[1].as_i64().unwrap_or(0)
        );
    }
    println!(
        "\nper-pair speedup (modelled): {:.1}x",
        jvm_report.time_ms_or_zero() / fpga_report.time_ms_or_zero()
    );
    Ok(())
}
