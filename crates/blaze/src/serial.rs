//! Generated data-processing methods — the (de)serializers.
//!
//! S2FA's "data processing method generator ... accepts the data layout
//! configuration from the bytecode-to-C compiler and generates
//! corresponding Scala methods ... The generated method uses Java
//! reflection to access object fields and reorganizes them to fit the
//! accelerator interface" (§3.2).
//!
//! [`DataLayout`] is that layout configuration: one [`BufferSlot`] per
//! primitive leaf of the record [`Shape`], naming the flat C buffer the
//! leaf is packed into. [`DataLayout::serialize`] is the generated
//! reflection method (it walks [`HostValue`] trees by field path);
//! [`DataLayout::deserialize`] rebuilds records from accelerator output.

use crate::BlazeError;
use s2fa_hlsir::CVal;
use s2fa_sjvm::{HostValue, JType, Shape, ShapeLeaf};
use std::collections::BTreeMap;

/// One flattened interface buffer: which leaf of the record it carries.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferSlot {
    /// C kernel buffer name (`in_1`, `out_2`, ...).
    pub buffer: String,
    /// The record leaf packed into it.
    pub leaf: ShapeLeaf,
}

/// The layout configuration of one side (input or output) of a kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct DataLayout {
    /// The record shape.
    pub shape: Shape,
    /// One slot per primitive leaf, in leaf order.
    pub slots: Vec<BufferSlot>,
}

impl DataLayout {
    /// Builds the layout for a record shape, naming buffers
    /// `{prefix}_1 .. {prefix}_k` (the paper's `in_1`/`out_1` convention).
    pub fn from_shape(shape: &Shape, prefix: &str) -> DataLayout {
        let slots = shape
            .leaves()
            .into_iter()
            .enumerate()
            .map(|(i, leaf)| BufferSlot {
                buffer: format!("{prefix}_{}", i + 1),
                leaf,
            })
            .collect();
        DataLayout {
            shape: shape.clone(),
            slots,
        }
    }

    /// Bytes of one serialized record (excluding broadcast leaves, which
    /// move once per batch — see [`broadcast_bytes`](Self::broadcast_bytes)).
    pub fn bytes_per_task(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| !s.leaf.broadcast)
            .map(|s| (s.leaf.elem.bits() as u64 / 8).max(1) * s.leaf.count as u64)
            .sum()
    }

    /// Bytes of the broadcast (once-per-batch) leaves.
    pub fn broadcast_bytes(&self) -> u64 {
        self.slots
            .iter()
            .filter(|s| s.leaf.broadcast)
            .map(|s| (s.leaf.elem.bits() as u64 / 8).max(1) * s.leaf.count as u64)
            .sum()
    }

    /// Serializes a batch of records into per-buffer flat vectors
    /// (`buffer[task * count + k]` layout).
    ///
    /// # Errors
    ///
    /// Returns [`BlazeError::Layout`] if any record does not match the
    /// shape (wrong arity, wrong primitive kind, over-length array).
    pub fn serialize(
        &self,
        records: &[HostValue],
    ) -> Result<BTreeMap<String, Vec<CVal>>, BlazeError> {
        let mut buffers: BTreeMap<String, Vec<CVal>> = self
            .slots
            .iter()
            .map(|s| {
                (
                    s.buffer.clone(),
                    Vec::with_capacity(records.len() * s.leaf.count as usize),
                )
            })
            .collect();
        for (ti, rec) in records.iter().enumerate() {
            for slot in &self.slots {
                // Broadcast leaves are shipped once (from the first
                // record): Blaze sends captured closure state per batch.
                if slot.leaf.broadcast && ti > 0 {
                    continue;
                }
                let v = navigate(rec, &slot.leaf.path).ok_or_else(|| {
                    BlazeError::Layout(format!(
                        "record {ti}: missing field at path {:?}",
                        slot.leaf.path
                    ))
                })?;
                let buf = buffers.get_mut(&slot.buffer).expect("slot buffer exists");
                pack_leaf(v, &slot.leaf, buf, ti)?;
            }
        }
        Ok(buffers)
    }

    /// Allocates zeroed output buffers for `tasks` records.
    pub fn alloc(&self, tasks: usize) -> BTreeMap<String, Vec<CVal>> {
        self.slots
            .iter()
            .map(|s| {
                let zero = if s.leaf.elem.is_float() {
                    CVal::F(0.0)
                } else {
                    CVal::I(0)
                };
                (s.buffer.clone(), vec![zero; tasks * s.leaf.count as usize])
            })
            .collect()
    }

    /// Rebuilds `tasks` records from flat buffers.
    ///
    /// `char[]` leaves come back as [`HostValue::Str`] (trailing NULs
    /// trimmed), matching how Blaze surfaces strings to Spark.
    ///
    /// # Errors
    ///
    /// Returns [`BlazeError::Layout`] if a buffer is missing or too short.
    pub fn deserialize(
        &self,
        buffers: &BTreeMap<String, Vec<CVal>>,
        tasks: usize,
    ) -> Result<Vec<HostValue>, BlazeError> {
        let mut out = Vec::with_capacity(tasks);
        for ti in 0..tasks {
            out.push(self.rebuild(&self.shape, &mut self.slots.iter(), buffers, ti)?);
        }
        Ok(out)
    }

    fn rebuild<'a>(
        &self,
        shape: &Shape,
        slots: &mut std::slice::Iter<'a, BufferSlot>,
        buffers: &BTreeMap<String, Vec<CVal>>,
        task: usize,
    ) -> Result<HostValue, BlazeError> {
        match shape {
            Shape::Bcast(inner) => self.rebuild(inner, slots, buffers, task),
            Shape::Composite(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for f in fields {
                    vals.push(self.rebuild(f, slots, buffers, task)?);
                }
                Ok(HostValue::Tuple(vals))
            }
            Shape::Scalar(_) | Shape::Array(..) => {
                let is_array = matches!(shape, Shape::Array(..));
                let slot = slots
                    .next()
                    .ok_or_else(|| BlazeError::Layout("slot underflow".into()))?;
                let buf = buffers.get(&slot.buffer).ok_or_else(|| {
                    BlazeError::Layout(format!("missing buffer `{}`", slot.buffer))
                })?;
                let base = if slot.leaf.broadcast {
                    0
                } else {
                    task * slot.leaf.count as usize
                };
                let end = base + slot.leaf.count as usize;
                if buf.len() < end {
                    return Err(BlazeError::Layout(format!(
                        "buffer `{}` too short: {} < {end}",
                        slot.buffer,
                        buf.len()
                    )));
                }
                let vals = &buf[base..end];
                Ok(unpack_leaf(vals, &slot.leaf, is_array))
            }
        }
    }
}

/// Walks a host value by field-index path.
fn navigate<'a>(v: &'a HostValue, path: &[usize]) -> Option<&'a HostValue> {
    let mut cur = v;
    for &i in path {
        cur = cur.elements()?.get(i)?;
    }
    Some(cur)
}

fn pack_leaf(
    v: &HostValue,
    leaf: &ShapeLeaf,
    buf: &mut Vec<CVal>,
    task: usize,
) -> Result<(), BlazeError> {
    let err = |msg: String| BlazeError::Layout(format!("record {task}: {msg}"));
    if leaf.count == 1 && !matches!(v, HostValue::Arr(_) | HostValue::Str(_)) {
        let c = match (v, leaf.elem.is_float()) {
            (HostValue::I(x), false) => CVal::I(*x),
            (HostValue::I(x), true) => CVal::F(*x as f64),
            (HostValue::F(x), true) => CVal::F(*x),
            other => return Err(err(format!("scalar mismatch: {other:?}"))),
        };
        buf.push(c);
        return Ok(());
    }
    let zero = if leaf.elem.is_float() {
        CVal::F(0.0)
    } else {
        CVal::I(0)
    };
    match v {
        HostValue::Str(s) => {
            let bytes = s.as_bytes();
            if bytes.len() > leaf.count as usize {
                return Err(err(format!(
                    "string of {} bytes exceeds slot of {}",
                    bytes.len(),
                    leaf.count
                )));
            }
            buf.extend(bytes.iter().map(|&b| CVal::I(b as i64)));
            buf.resize(buf.len() + leaf.count as usize - bytes.len(), zero);
        }
        HostValue::Arr(items) => {
            if items.len() > leaf.count as usize {
                return Err(err(format!(
                    "array of {} elements exceeds slot of {}",
                    items.len(),
                    leaf.count
                )));
            }
            for it in items {
                let c = match (it, leaf.elem.is_float()) {
                    (HostValue::I(x), false) => CVal::I(*x),
                    (HostValue::I(x), true) => CVal::F(*x as f64),
                    (HostValue::F(x), true) => CVal::F(*x),
                    other => return Err(err(format!("array element mismatch: {other:?}"))),
                };
                buf.push(c);
            }
            buf.resize(buf.len() + leaf.count as usize - items.len(), zero);
        }
        other => return Err(err(format!("expected array/string, got {other}"))),
    }
    Ok(())
}

fn unpack_leaf(vals: &[CVal], leaf: &ShapeLeaf, is_array: bool) -> HostValue {
    if !is_array {
        return match vals[0] {
            CVal::I(x) => HostValue::I(x),
            CVal::F(x) => HostValue::F(x),
        };
    }
    if leaf.elem == JType::Char {
        // strings round-trip as char arrays; trim trailing NULs
        let bytes: Vec<u8> = vals
            .iter()
            .map(|v| match v {
                CVal::I(x) => *x as u8,
                CVal::F(x) => *x as u8,
            })
            .collect();
        let end = bytes
            .iter()
            .rposition(|&b| b != 0)
            .map(|i| i + 1)
            .unwrap_or(0);
        return HostValue::Str(String::from_utf8_lossy(&bytes[..end]).into_owned());
    }
    HostValue::Arr(
        vals.iter()
            .map(|v| match v {
                CVal::I(x) => HostValue::I(*x),
                CVal::F(x) => HostValue::F(*x),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> DataLayout {
        // (Double, [F;3])
        let shape = Shape::pair(Shape::Scalar(JType::Double), Shape::Array(JType::Float, 3));
        DataLayout::from_shape(&shape, "in")
    }

    #[test]
    fn buffer_naming_matches_paper() {
        let l = layout();
        assert_eq!(l.slots[0].buffer, "in_1");
        assert_eq!(l.slots[1].buffer, "in_2");
        assert_eq!(l.bytes_per_task(), 8 + 3 * 4);
    }

    #[test]
    fn serialize_roundtrip() {
        let l = layout();
        let recs = vec![
            HostValue::pair(HostValue::F(1.5), HostValue::f64_array(&[1.0, 2.0, 3.0])),
            HostValue::pair(HostValue::F(-2.0), HostValue::f64_array(&[4.0, 5.0, 6.0])),
        ];
        let bufs = l.serialize(&recs).unwrap();
        assert_eq!(bufs["in_1"], vec![CVal::F(1.5), CVal::F(-2.0)]);
        assert_eq!(bufs["in_2"].len(), 6);
        let back = l.deserialize(&bufs, 2).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn short_arrays_are_padded() {
        let l = layout();
        let recs = vec![HostValue::pair(
            HostValue::F(0.0),
            HostValue::f64_array(&[9.0]),
        )];
        let bufs = l.serialize(&recs).unwrap();
        assert_eq!(bufs["in_2"], vec![CVal::F(9.0), CVal::F(0.0), CVal::F(0.0)]);
    }

    #[test]
    fn strings_pack_as_char_arrays() {
        let shape = Shape::pair(Shape::Array(JType::Char, 8), Shape::Array(JType::Char, 8));
        let l = DataLayout::from_shape(&shape, "in");
        let recs = vec![HostValue::pair(
            HostValue::Str("ACGT".into()),
            HostValue::Str("TTT".into()),
        )];
        let bufs = l.serialize(&recs).unwrap();
        assert_eq!(bufs["in_1"].len(), 8);
        assert_eq!(bufs["in_1"][0], CVal::I(b'A' as i64));
        let back = l.deserialize(&bufs, 1).unwrap();
        assert_eq!(
            back[0],
            HostValue::pair(HostValue::Str("ACGT".into()), HostValue::Str("TTT".into()))
        );
    }

    #[test]
    fn mismatched_record_is_rejected() {
        let l = layout();
        let recs = vec![HostValue::I(3)];
        assert!(matches!(l.serialize(&recs), Err(BlazeError::Layout(_))));
        let too_long = vec![HostValue::pair(
            HostValue::F(0.0),
            HostValue::f64_array(&[1.0, 2.0, 3.0, 4.0]),
        )];
        assert!(l.serialize(&too_long).is_err());
    }

    #[test]
    fn alloc_sizes_outputs() {
        let l = layout();
        let bufs = l.alloc(5);
        assert_eq!(bufs["in_1"].len(), 5);
        assert_eq!(bufs["in_2"].len(), 15);
        assert_eq!(bufs["in_1"][0], CVal::F(0.0));
    }

    #[test]
    fn int_scalars_widen_to_float_slots() {
        let shape = Shape::Scalar(JType::Double);
        let l = DataLayout::from_shape(&shape, "in");
        let bufs = l.serialize(&[HostValue::I(3)]).unwrap();
        assert_eq!(bufs["in_1"], vec![CVal::F(3.0)]);
    }
}
