//! The Blaze accelerator-manager service.
//!
//! "FPGA accelerators can be registered to the Blaze accelerator manager so
//! that Spark application developers can access FPGA accelerators using
//! provided APIs" (§2). The registry is shared and thread-safe: in a real
//! deployment every worker node holds one.
//!
//! Registrations carry a **generation**: a registry-wide monotonically
//! increasing counter bumped by every (re-)registration. A serving worker
//! that resolved a design at admission time can compare generations at
//! execution time and detect that an operator replaced the design
//! mid-flight (a redeploy) instead of silently executing a different
//! kernel than the one the request was admitted against.

use crate::accel::Accelerator;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// One resolved registry entry: the design plus the generation it was
/// registered under.
#[derive(Debug, Clone)]
pub struct RegisteredAccel {
    /// The deployed design.
    pub accel: Arc<Accelerator>,
    /// Generation of this registration (bumped on every replace).
    pub generation: u64,
}

/// Thread-safe registry mapping accelerator ids to deployed designs.
#[derive(Debug, Default)]
pub struct AcceleratorRegistry {
    map: RwLock<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    entries: HashMap<String, RegisteredAccel>,
    next_generation: u64,
}

impl AcceleratorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an accelerator under its id; returns the
    /// generation of the new registration. Generations increase
    /// monotonically across the whole registry, so replacing a live
    /// design always yields a strictly larger generation than any
    /// earlier lookup of that id returned.
    pub fn register(&self, accel: Accelerator) -> u64 {
        let mut inner = self.map.write();
        inner.next_generation += 1;
        let generation = inner.next_generation;
        inner.entries.insert(
            accel.id.clone(),
            RegisteredAccel {
                accel: Arc::new(accel),
                generation,
            },
        );
        generation
    }

    /// Looks an accelerator up by id.
    pub fn lookup(&self, id: &str) -> Option<Arc<Accelerator>> {
        self.map.read().entries.get(id).map(|e| e.accel.clone())
    }

    /// Looks an accelerator up by id, with the generation it was
    /// registered under.
    pub fn lookup_entry(&self, id: &str) -> Option<RegisteredAccel> {
        self.map.read().entries.get(id).cloned()
    }

    /// The current generation of an id's registration, if registered.
    pub fn generation(&self, id: &str) -> Option<u64> {
        self.map.read().entries.get(id).map(|e| e.generation)
    }

    /// Removes an accelerator; returns it if it was registered.
    pub fn unregister(&self, id: &str) -> Option<Arc<Accelerator>> {
        self.map.write().entries.remove(id).map(|e| e.accel)
    }

    /// Registered accelerator ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().entries.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered accelerators.
    pub fn len(&self) -> usize {
        self.map.read().entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::DataLayout;
    use s2fa_sjvm::{JType, RddOp, Shape};

    fn dummy(id: &str) -> Accelerator {
        let shape = Shape::Scalar(JType::Int);
        Accelerator {
            id: id.into(),
            kernel: s2fa_hlsir::CFunction {
                name: id.into(),
                params: vec![],
                body: vec![],
            },
            operator: RddOp::Map,
            input_layout: DataLayout::from_shape(&shape, "in"),
            output_layout: DataLayout::from_shape(&shape, "out"),
            time_model: None,
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let r = AcceleratorRegistry::new();
        assert!(r.is_empty());
        let g_a = r.register(dummy("a"));
        let g_b = r.register(dummy("b"));
        assert!(g_b > g_a);
        assert_eq!(r.ids(), vec!["a", "b"]);
        assert!(r.lookup("a").is_some());
        assert!(r.lookup("z").is_none());
        assert_eq!(r.generation("a"), Some(g_a));
        // replace registers under a fresh generation
        let g_a2 = r.register(dummy("a"));
        assert!(g_a2 > g_b);
        assert_eq!(r.len(), 2);
        assert!(r.unregister("a").is_some());
        assert!(r.lookup("a").is_none());
        assert_eq!(r.generation("a"), None);
    }

    #[test]
    fn replace_bumps_the_generation_seen_by_lookups() {
        let r = AcceleratorRegistry::new();
        let g1 = r.register(dummy("x"));
        let before = r.lookup_entry("x").unwrap();
        assert_eq!(before.generation, g1);
        // a worker holding `before` can detect the mid-flight replace:
        let g2 = r.register(dummy("x"));
        let after = r.lookup_entry("x").unwrap();
        assert!(g2 > g1);
        assert_eq!(after.generation, g2);
        assert!(after.generation > before.generation);
        assert_eq!(r.generation("x"), Some(g2));
    }

    #[test]
    fn registry_is_sync() {
        fn check<T: Send + Sync>() {}
        check::<AcceleratorRegistry>();
    }
}
