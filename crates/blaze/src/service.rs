//! The Blaze accelerator-manager service.
//!
//! "FPGA accelerators can be registered to the Blaze accelerator manager so
//! that Spark application developers can access FPGA accelerators using
//! provided APIs" (§2). The registry is shared and thread-safe: in a real
//! deployment every worker node holds one.

use crate::accel::Accelerator;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Thread-safe registry mapping accelerator ids to deployed designs.
#[derive(Debug, Default)]
pub struct AcceleratorRegistry {
    map: RwLock<HashMap<String, Arc<Accelerator>>>,
}

impl AcceleratorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) an accelerator under its id; returns the
    /// previously registered design if any.
    pub fn register(&self, accel: Accelerator) -> Option<Arc<Accelerator>> {
        self.map.write().insert(accel.id.clone(), Arc::new(accel))
    }

    /// Looks an accelerator up by id.
    pub fn lookup(&self, id: &str) -> Option<Arc<Accelerator>> {
        self.map.read().get(id).cloned()
    }

    /// Removes an accelerator; returns it if it was registered.
    pub fn unregister(&self, id: &str) -> Option<Arc<Accelerator>> {
        self.map.write().remove(id)
    }

    /// Registered accelerator ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.map.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of registered accelerators.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::DataLayout;
    use s2fa_sjvm::{JType, RddOp, Shape};

    fn dummy(id: &str) -> Accelerator {
        let shape = Shape::Scalar(JType::Int);
        Accelerator {
            id: id.into(),
            kernel: s2fa_hlsir::CFunction {
                name: id.into(),
                params: vec![],
                body: vec![],
            },
            operator: RddOp::Map,
            input_layout: DataLayout::from_shape(&shape, "in"),
            output_layout: DataLayout::from_shape(&shape, "out"),
            time_model: None,
        }
    }

    #[test]
    fn register_lookup_unregister() {
        let r = AcceleratorRegistry::new();
        assert!(r.is_empty());
        assert!(r.register(dummy("a")).is_none());
        assert!(r.register(dummy("b")).is_none());
        assert_eq!(r.ids(), vec!["a", "b"]);
        assert!(r.lookup("a").is_some());
        assert!(r.lookup("z").is_none());
        // replace returns the old design
        assert!(r.register(dummy("a")).is_some());
        assert_eq!(r.len(), 2);
        assert!(r.unregister("a").is_some());
        assert!(r.lookup("a").is_none());
    }

    #[test]
    fn registry_is_sync() {
        fn check<T: Send + Sync>() {}
        check::<AcceleratorRegistry>();
    }
}
