//! The deterministic serving simulator.
//!
//! One [`ServingRuntime::serve`] call plays a generated request trace
//! through a discrete-event loop on a virtual millisecond clock:
//!
//! 1. **Admission** — a request whose tenant already has
//!    `max_inflight` admitted requests, or whose accelerator queue is
//!    full, is rejected immediately.
//! 2. **Queueing** — admitted requests join their accelerator's FIFO
//!    queue.
//! 3. **Batch forming** — a batch closes when the queue reaches
//!    `max_batch` requests, or when the oldest queued request has
//!    waited `max_wait_ms` (whichever comes first).
//! 4. **Execution** — the closed batch is assigned FCFS to the
//!    earliest-free simulated node (ties to the lowest index); its
//!    service time comes from the design's [`AccelTimeModel`]
//!    (amortizing the per-batch setup across the coalesced requests).
//! 5. **Reply** — every member request's reply is delivered at batch
//!    completion; per-request latency is reply − submit.
//!
//! Requests whose accelerator id is **not** registered take Blaze's JVM
//! fallback: they are admitted (and counted against the tenant's
//! inflight bound) but bypass queueing, completing after the
//! interpreter cost model's deterministic estimate.
//!
//! ## Determinism
//!
//! The event loop is totally ordered by `(virtual ms, event class,
//! push sequence)` with completions ahead of arrivals ahead of batch
//! deadlines at equal timestamps — the same heap-key discipline the
//! DSE's virtual scheduler uses. All timing comes from time models, so
//! the *functional* execution of batches (and of fallback requests) can
//! be farmed out to `exec_threads` OS threads after (before) the loop
//! without any thread schedule leaking into outcomes: replies, trace
//! events, and latencies are bit-identical across `exec_threads`
//! values. `nodes`, by contrast, is part of the model — more simulated
//! nodes legitimately means less queueing delay.
//!
//! [`AccelTimeModel`]: crate::accel::AccelTimeModel

use super::loadgen;
use super::request::{
    Disposition, RejectReason, Request, RequestOutcome, ServingConfig, TenantSpec,
};
use super::stats::{ServeOutcome, ServingStats};
use crate::accel::Accelerator;
use crate::rdd::ExecutionPath;
use crate::service::AcceleratorRegistry;
use crate::BlazeError;
use s2fa_obs::{Lane, Profiler};
use s2fa_sjvm::{HostValue, Interp, JvmCostModel, KernelSpec, RddOp};
use s2fa_trace::{Event, TraceSink};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The multi-tenant serving runtime over one accelerator registry.
#[derive(Debug)]
pub struct ServingRuntime<'r> {
    registry: &'r AcceleratorRegistry,
    config: ServingConfig,
}

/// One resolved route: the accelerator a tenant's requests execute on,
/// or `None` for the JVM fallback path.
#[derive(Debug)]
struct Route {
    accel_id: String,
    accel: Option<Arc<Accelerator>>,
}

/// A closed batch: which route it ran on and its member requests.
#[derive(Debug)]
struct BatchRec {
    route: usize,
    members: Vec<u64>,
}

/// Heap ordering key: virtual ms first ([`f64::total_cmp`]), then event
/// class (completions < arrivals < deadlines), then push sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Key {
    ms: f64,
    class: u8,
    seq: u64,
}

impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.ms
            .total_cmp(&other.ms)
            .then_with(|| self.class.cmp(&other.class))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sim {
    /// A batch finished on its node; replies are due.
    Completion { batch: usize },
    /// A fallback request's modelled JVM execution finished.
    FallbackDone { request: u64 },
    /// A request arrives at the admission controller.
    Arrival { request: u64 },
    /// The oldest queued request's wait budget expired.
    Deadline { route: usize, epoch: u64 },
}

impl Sim {
    /// Tie-break class at equal timestamps: completions free inflight
    /// slots and nodes *before* a same-instant arrival sees them;
    /// deadlines run last so a same-instant arrival can complete the
    /// batch the natural way (on size) first.
    fn class(&self) -> u8 {
        match self {
            Sim::Completion { .. } | Sim::FallbackDone { .. } => 0,
            Sim::Arrival { .. } => 1,
            Sim::Deadline { .. } => 2,
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
struct HeapItem {
    key: Key,
    ev: Sim,
}

// Reversed so the std max-heap pops the *earliest* key.
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.key.cmp(&self.key)
    }
}

#[derive(Debug, Default)]
struct QueueState {
    q: VecDeque<u64>,
    /// Bumped every time the queue goes non-empty; a pending deadline
    /// whose epoch no longer matches is stale and ignored.
    epoch: u64,
}

impl<'r> ServingRuntime<'r> {
    /// Creates a runtime over `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`BlazeError::Accel`] for non-executable configurations
    /// (zero nodes/threads/batch, non-positive wait budget).
    pub fn new(
        registry: &'r AcceleratorRegistry,
        config: ServingConfig,
    ) -> Result<ServingRuntime<'r>, BlazeError> {
        if config.nodes == 0 {
            return Err(BlazeError::Accel("serving: nodes must be >= 1".into()));
        }
        if config.exec_threads == 0 {
            return Err(BlazeError::Accel(
                "serving: exec_threads must be >= 1".into(),
            ));
        }
        if config.max_batch == 0 {
            return Err(BlazeError::Accel("serving: max_batch must be >= 1".into()));
        }
        if !(config.max_wait_ms > 0.0 && config.max_wait_ms.is_finite()) {
            return Err(BlazeError::Accel(
                "serving: max_wait_ms must be positive and finite".into(),
            ));
        }
        if config.max_inflight == 0 || config.queue_capacity == 0 {
            return Err(BlazeError::Accel(
                "serving: max_inflight and queue_capacity must be >= 1".into(),
            ));
        }
        Ok(ServingRuntime { registry, config })
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Plays the tenants' generated request traces through the serving
    /// path and returns every request's outcome plus run aggregates.
    ///
    /// Serving events go to `sink`; host-time spans of the actual
    /// computation phases go to `profiler`.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid tenant parameters, an operator
    /// mismatch between a registered design and the tenant's lambda, or
    /// a functional execution fault on either path.
    pub fn serve(
        &self,
        tenants: &[TenantSpec],
        sink: &dyn TraceSink,
        profiler: &Profiler,
    ) -> Result<ServeOutcome, BlazeError> {
        let mut lane = profiler.lane();
        let serve_span = lane.open("serve");

        let routes = self.resolve_routes(tenants)?;
        let requests = lane.in_span("loadgen", |_| loadgen::generate(tenants));
        let fallback = lane.in_span("fallback_precompute", |_| {
            self.precompute_fallback(tenants, &routes, &requests)
        })?;
        let (mut outcomes, batches, stats) = lane.in_span("simulate", |lane| {
            self.simulate(sink, lane, &requests, &routes, &fallback)
        });
        lane.in_span("execute_batches", |_| {
            self.execute_batches(&requests, &routes, &batches, &mut outcomes)
        })?;

        if let Some(metrics) = profiler.metrics() {
            metrics.counter("serving.submitted").add(stats.submitted);
            metrics.counter("serving.rejected").add(stats.rejected);
            metrics.counter("serving.batches").add(stats.batches);
            metrics
                .counter("serving.completed_fallback")
                .add(stats.completed_fallback);
        }
        lane.close(serve_span);
        lane.flush();

        let outcomes = outcomes
            .into_iter()
            .map(|o| o.expect("every request reaches a terminal state"))
            .collect();
        Ok(ServeOutcome { outcomes, stats })
    }

    /// Resolves each tenant's accelerator (the registry is frozen for
    /// the duration of the run) and validates the tenant parameters.
    fn resolve_routes(&self, tenants: &[TenantSpec]) -> Result<Vec<Route>, BlazeError> {
        let mut routes = Vec::with_capacity(tenants.len());
        for t in tenants {
            if !(t.rate_per_ms > 0.0 && t.rate_per_ms.is_finite()) {
                return Err(BlazeError::Accel(format!(
                    "serving: tenant `{}` needs a positive finite rate",
                    t.name
                )));
            }
            if t.records_per_request == 0 {
                return Err(BlazeError::Accel(format!(
                    "serving: tenant `{}` needs at least one record per request",
                    t.name
                )));
            }
            let accel = self.registry.lookup(&t.accel_id);
            if let Some(a) = &accel {
                if a.operator != t.fallback.operator {
                    return Err(BlazeError::Accel(format!(
                        "serving: accelerator `{}` implements {}, tenant `{}` expects {}",
                        t.accel_id,
                        a.operator.name(),
                        t.name,
                        t.fallback.operator.name()
                    )));
                }
            }
            routes.push(Route {
                accel_id: t.accel_id.clone(),
                accel,
            });
        }
        Ok(routes)
    }

    /// Executes every fallback-routed request on the interpreter up
    /// front (outputs plus the cost model's deterministic time). The
    /// work is independent per request, so it parallelizes freely over
    /// `exec_threads` without touching outcomes.
    #[allow(clippy::type_complexity)]
    fn precompute_fallback(
        &self,
        tenants: &[TenantSpec],
        routes: &[Route],
        requests: &[Request],
    ) -> Result<Vec<Option<(Vec<HostValue>, f64)>>, BlazeError> {
        let idxs: Vec<usize> = requests
            .iter()
            .filter(|r| routes[r.tenant].accel.is_none())
            .map(|r| r.id as usize)
            .collect();
        let computed = parallel_map(self.config.exec_threads, idxs.len(), |k| {
            let req = &requests[idxs[k]];
            run_fallback(&tenants[req.tenant].fallback, &req.records)
        })?;
        let mut table = vec![None; requests.len()];
        for (k, result) in computed.into_iter().enumerate() {
            table[idxs[k]] = Some(result);
        }
        Ok(table)
    }

    /// The discrete-event loop. Purely time-model driven: functional
    /// outputs are filled in afterwards by [`Self::execute_batches`].
    #[allow(clippy::type_complexity)]
    fn simulate(
        &self,
        sink: &dyn TraceSink,
        lane: &mut Lane,
        requests: &[Request],
        routes: &[Route],
        fallback: &[Option<(Vec<HostValue>, f64)>],
    ) -> (Vec<Option<RequestOutcome>>, Vec<BatchRec>, ServingStats) {
        let cfg = &self.config;
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(requests.len() * 2);
        let mut seq = 0u64;

        for r in requests {
            push_ev(
                &mut heap,
                &mut seq,
                r.submit_ms,
                Sim::Arrival { request: r.id },
            );
        }

        let tenant_count = routes.len();
        let mut inflight = vec![0usize; tenant_count];
        let mut queues: Vec<QueueState> =
            (0..routes.len()).map(|_| QueueState::default()).collect();
        let mut node_free = vec![0.0f64; cfg.nodes];
        let mut outcomes: Vec<Option<RequestOutcome>> = vec![None; requests.len()];
        let mut batches: Vec<BatchRec> = Vec::new();
        let mut stats = ServingStats::default();

        while let Some(HeapItem { key, ev }) = heap.pop() {
            let now = key.ms;
            stats.makespan_ms = stats.makespan_ms.max(now);
            match ev {
                Sim::Arrival { request } => {
                    let req = &requests[request as usize];
                    let route_idx = req.tenant;
                    stats.submitted += 1;
                    sink.emit(&Event::Submit {
                        ms: now,
                        request,
                        tenant: req.tenant as u64,
                        accel: routes[route_idx].accel_id.clone(),
                    });
                    if inflight[req.tenant] >= cfg.max_inflight {
                        reject(
                            sink,
                            &mut stats,
                            &mut outcomes,
                            req,
                            now,
                            RejectReason::InflightLimit,
                        );
                        continue;
                    }
                    match &routes[route_idx].accel {
                        None => {
                            inflight[req.tenant] += 1;
                            stats.admitted += 1;
                            sink.emit(&Event::Admit {
                                ms: now,
                                request,
                                inflight: inflight[req.tenant] as u64,
                            });
                            let (_, fb_ms) = fallback[request as usize]
                                .as_ref()
                                .expect("fallback requests were precomputed");
                            push_ev(
                                &mut heap,
                                &mut seq,
                                now + fb_ms,
                                Sim::FallbackDone { request },
                            );
                        }
                        Some(_) => {
                            if queues[route_idx].q.len() >= cfg.queue_capacity {
                                reject(
                                    sink,
                                    &mut stats,
                                    &mut outcomes,
                                    req,
                                    now,
                                    RejectReason::QueueFull,
                                );
                                continue;
                            }
                            inflight[req.tenant] += 1;
                            stats.admitted += 1;
                            sink.emit(&Event::Admit {
                                ms: now,
                                request,
                                inflight: inflight[req.tenant] as u64,
                            });
                            queues[route_idx].q.push_back(request);
                            let depth = queues[route_idx].q.len() as u64;
                            stats.max_queue_depth = stats.max_queue_depth.max(depth);
                            sink.emit(&Event::Enqueue {
                                ms: now,
                                request,
                                accel: routes[route_idx].accel_id.clone(),
                                depth,
                            });
                            if queues[route_idx].q.len() == 1 {
                                queues[route_idx].epoch += 1;
                                let epoch = queues[route_idx].epoch;
                                push_ev(
                                    &mut heap,
                                    &mut seq,
                                    now + cfg.max_wait_ms,
                                    Sim::Deadline {
                                        route: route_idx,
                                        epoch,
                                    },
                                );
                            }
                            if queues[route_idx].q.len() >= cfg.max_batch {
                                close_batch(
                                    sink,
                                    lane,
                                    requests,
                                    routes,
                                    now,
                                    route_idx,
                                    "full",
                                    &mut queues,
                                    &mut node_free,
                                    &mut batches,
                                    &mut stats,
                                    &mut heap,
                                    &mut seq,
                                );
                            }
                        }
                    }
                }
                Sim::Deadline { route, epoch } => {
                    // Stale when the forming batch it was armed for
                    // already closed on size (epoch advanced, or queue
                    // drained with the epoch unchanged).
                    if queues[route].epoch == epoch && !queues[route].q.is_empty() {
                        close_batch(
                            sink,
                            lane,
                            requests,
                            routes,
                            now,
                            route,
                            "deadline",
                            &mut queues,
                            &mut node_free,
                            &mut batches,
                            &mut stats,
                            &mut heap,
                            &mut seq,
                        );
                    }
                }
                Sim::Completion { batch } => {
                    for i in 0..batches[batch].members.len() {
                        let rid = batches[batch].members[i];
                        let req = &requests[rid as usize];
                        inflight[req.tenant] -= 1;
                        let latency_ms = now - req.submit_ms;
                        sink.emit(&Event::Reply {
                            ms: now,
                            request: rid,
                            tenant: req.tenant as u64,
                            latency_ms,
                            path: "accel".into(),
                        });
                        stats.completed_accel += 1;
                        stats.total_tasks += req.records.len() as u64;
                        // Output is filled in by the functional pass.
                        outcomes[rid as usize] = Some(RequestOutcome {
                            request: rid,
                            tenant: req.tenant,
                            submit_ms: req.submit_ms,
                            disposition: Disposition::Completed {
                                output: Vec::new(),
                                path: ExecutionPath::Offloaded,
                                reply_ms: now,
                                latency_ms,
                            },
                        });
                    }
                }
                Sim::FallbackDone { request } => {
                    let req = &requests[request as usize];
                    inflight[req.tenant] -= 1;
                    let latency_ms = now - req.submit_ms;
                    sink.emit(&Event::Reply {
                        ms: now,
                        request,
                        tenant: req.tenant as u64,
                        latency_ms,
                        path: "fallback".into(),
                    });
                    stats.completed_fallback += 1;
                    stats.total_tasks += req.records.len() as u64;
                    let (output, _) = fallback[request as usize]
                        .as_ref()
                        .expect("fallback requests were precomputed");
                    outcomes[request as usize] = Some(RequestOutcome {
                        request,
                        tenant: req.tenant,
                        submit_ms: req.submit_ms,
                        disposition: Disposition::Completed {
                            output: output.clone(),
                            path: ExecutionPath::JvmFallback,
                            reply_ms: now,
                            latency_ms,
                        },
                    });
                }
            }
        }
        (outcomes, batches, stats)
    }

    /// Functionally executes every formed batch and fills the outputs
    /// into the (already timed) outcomes. Purely output-producing, so
    /// it parallelizes over `exec_threads` without affecting timing.
    fn execute_batches(
        &self,
        requests: &[Request],
        routes: &[Route],
        batches: &[BatchRec],
        outcomes: &mut [Option<RequestOutcome>],
    ) -> Result<(), BlazeError> {
        let produced = parallel_map(self.config.exec_threads, batches.len(), |bi| {
            let b = &batches[bi];
            let accel = routes[b.route]
                .accel
                .as_ref()
                .expect("batches only form on accelerator routes");
            match accel.operator {
                RddOp::Map => {
                    // One coalesced kernel invocation; split the output
                    // back per request by record counts.
                    let mut concat = Vec::new();
                    let mut lens = Vec::with_capacity(b.members.len());
                    for &rid in &b.members {
                        let recs = &requests[rid as usize].records;
                        lens.push(recs.len());
                        concat.extend_from_slice(recs);
                    }
                    let (out, _) = accel.run_batch(&concat)?;
                    let mut split = Vec::with_capacity(b.members.len());
                    let mut off = 0;
                    for (&rid, &len) in b.members.iter().zip(&lens) {
                        split.push((rid, out[off..off + len].to_vec()));
                        off += len;
                    }
                    Ok(split)
                }
                RddOp::Reduce => {
                    // Reductions must not merge across requests: one
                    // invocation per member.
                    b.members
                        .iter()
                        .map(|&rid| {
                            accel
                                .run_batch(&requests[rid as usize].records)
                                .map(|(out, _)| (rid, out))
                        })
                        .collect()
                }
            }
        })?;
        for batch_out in produced {
            for (rid, out) in batch_out {
                match outcomes[rid as usize].as_mut() {
                    Some(RequestOutcome {
                        disposition: Disposition::Completed { output, .. },
                        ..
                    }) => *output = out,
                    other => unreachable!("batched request {rid} not completed: {other:?}"),
                }
            }
        }
        Ok(())
    }
}

/// Pushes a simulator event under the next heap sequence number.
fn push_ev(heap: &mut BinaryHeap<HeapItem>, seq: &mut u64, ms: f64, ev: Sim) {
    heap.push(HeapItem {
        key: Key {
            ms,
            class: ev.class(),
            seq: *seq,
        },
        ev,
    });
    *seq += 1;
}

/// Drains the route's queue into a batch, assigns it FCFS to the
/// earliest-free node (ties to the lowest index), and schedules its
/// completion.
#[allow(clippy::too_many_arguments)]
fn close_batch(
    sink: &dyn TraceSink,
    lane: &mut Lane,
    requests: &[Request],
    routes: &[Route],
    now: f64,
    route_idx: usize,
    cause: &str,
    queues: &mut [QueueState],
    node_free: &mut [f64],
    batches: &mut Vec<BatchRec>,
    stats: &mut ServingStats,
    heap: &mut BinaryHeap<HeapItem>,
    seq: &mut u64,
) {
    lane.in_span("close_batch", |_| {
        let members: Vec<u64> = queues[route_idx].q.drain(..).collect();
        let accel = routes[route_idx]
            .accel
            .as_ref()
            .expect("only accelerator routes form batches");
        let tasks: u64 = members
            .iter()
            .map(|&rid| requests[rid as usize].records.len() as u64)
            .sum();
        let service_ms = batch_service_ms(accel, requests, &members);
        let batch_id = batches.len();
        sink.emit(&Event::BatchFormed {
            ms: now,
            batch: batch_id as u64,
            accel: routes[route_idx].accel_id.clone(),
            size: members.len() as u64,
            tasks,
            cause: cause.into(),
        });
        let node = node_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(i, _)| i)
            .expect("nodes >= 1");
        let start = now.max(node_free[node]);
        node_free[node] = start + service_ms;
        sink.emit(&Event::Execute {
            ms: start,
            batch: batch_id as u64,
            node: node as u64,
            service_ms,
        });
        push_ev(
            heap,
            seq,
            start + service_ms,
            Sim::Completion { batch: batch_id },
        );
        stats.batches += 1;
        *stats.batch_sizes.entry(members.len()).or_default() += 1;
        batches.push(BatchRec {
            route: route_idx,
            members,
        });
    });
}

/// Emits a rejection and records the terminal outcome.
fn reject(
    sink: &dyn TraceSink,
    stats: &mut ServingStats,
    outcomes: &mut [Option<RequestOutcome>],
    req: &Request,
    now: f64,
    reason: RejectReason,
) {
    stats.rejected += 1;
    sink.emit(&Event::Reject {
        ms: now,
        request: req.id,
        tenant: req.tenant as u64,
        reason: reason.as_str().into(),
    });
    outcomes[req.id as usize] = Some(RequestOutcome {
        request: req.id,
        tenant: req.tenant,
        submit_ms: req.submit_ms,
        disposition: Disposition::Rejected {
            reason,
            reject_ms: now,
        },
    });
}

/// Modelled service time of a batch. Map designs coalesce into one
/// kernel invocation (one setup, per-task marginal cost); reduce
/// designs execute once per member request, so each member pays the
/// setup. Designs without a time model serve in zero virtual time.
fn batch_service_ms(accel: &Accelerator, requests: &[Request], members: &[u64]) -> f64 {
    let Some(model) = accel.time_model else {
        return 0.0;
    };
    match accel.operator {
        RddOp::Map => {
            let tasks: u64 = members
                .iter()
                .map(|&rid| requests[rid as usize].records.len() as u64)
                .sum();
            model.batch_ms(tasks)
        }
        RddOp::Reduce => members
            .iter()
            .map(|&rid| model.batch_ms(requests[rid as usize].records.len() as u64))
            .sum(),
    }
}

/// Runs one request's payload through the interpreter (the JVM fallback
/// path) and returns the outputs plus the cost model's modelled ms.
fn run_fallback(
    spec: &KernelSpec,
    records: &[HostValue],
) -> Result<(Vec<HostValue>, f64), BlazeError> {
    let mut interp =
        Interp::new(&spec.classes, &spec.methods).with_cost_model(JvmCostModel::default());
    let mut total_ns = 0.0;
    let out = match spec.operator {
        RddOp::Map => {
            let mut out = Vec::with_capacity(records.len());
            for rec in records {
                let (v, stats) = interp.run(spec.entry, std::slice::from_ref(rec))?;
                total_ns += stats.ns;
                out.push(v);
            }
            out
        }
        RddOp::Reduce => {
            if records.is_empty() {
                return Err(BlazeError::EmptyDataset);
            }
            let mut acc = records[0].clone();
            for rec in &records[1..] {
                let (v, stats) = interp.run(spec.entry, &[acc.clone(), rec.clone()])?;
                total_ns += stats.ns;
                acc = v;
            }
            vec![acc]
        }
    };
    Ok((out, total_ns / 1e6))
}

/// Index-parallel map with deterministic assembly: work items are
/// claimed off a shared counter by up to `threads` OS threads, but
/// results are re-sorted by index before being returned (and the error
/// at the smallest index wins), so the caller sees the same value
/// regardless of the thread schedule.
fn parallel_map<T, F>(threads: usize, n: usize, f: F) -> Result<Vec<T>, BlazeError>
where
    T: Send,
    F: Fn(usize) -> Result<T, BlazeError> + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(&f).collect();
    }
    let counter = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<T, BlazeError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serving exec thread panicked"))
            .collect()
    });
    indexed.sort_by_key(|(i, _)| *i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_pops_in_total_order() {
        let mut heap = BinaryHeap::new();
        let items = [
            (2.0, Sim::Arrival { request: 0 }),
            (1.0, Sim::Deadline { route: 0, epoch: 1 }),
            (1.0, Sim::Completion { batch: 0 }),
            (1.0, Sim::Arrival { request: 1 }),
        ];
        for (seq, (ms, ev)) in items.into_iter().enumerate() {
            heap.push(HeapItem {
                key: Key {
                    ms,
                    class: ev.class(),
                    seq: seq as u64,
                },
                ev,
            });
        }
        // At t=1: completion first, then arrival, then deadline.
        assert_eq!(heap.pop().unwrap().ev, Sim::Completion { batch: 0 });
        assert_eq!(heap.pop().unwrap().ev, Sim::Arrival { request: 1 });
        assert_eq!(heap.pop().unwrap().ev, Sim::Deadline { route: 0, epoch: 1 });
        assert_eq!(heap.pop().unwrap().ev, Sim::Arrival { request: 0 });
    }

    #[test]
    fn parallel_map_matches_serial() {
        let serial = parallel_map(1, 100, |i| Ok(i * i)).unwrap();
        let threaded = parallel_map(4, 100, |i| Ok(i * i)).unwrap();
        assert_eq!(serial, threaded);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn parallel_map_surfaces_the_lowest_index_error() {
        let r = parallel_map(4, 50, |i| {
            if i >= 10 {
                Err(BlazeError::Accel(format!("boom {i}")))
            } else {
                Ok(i)
            }
        });
        assert_eq!(r.unwrap_err(), BlazeError::Accel("boom 10".into()));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let registry = AcceleratorRegistry::new();
        for cfg in [
            ServingConfig {
                nodes: 0,
                ..Default::default()
            },
            ServingConfig {
                exec_threads: 0,
                ..Default::default()
            },
            ServingConfig {
                max_batch: 0,
                ..Default::default()
            },
            ServingConfig {
                max_wait_ms: 0.0,
                ..Default::default()
            },
            ServingConfig {
                max_inflight: 0,
                ..Default::default()
            },
        ] {
            assert!(ServingRuntime::new(&registry, cfg).is_err(), "{cfg:?}");
        }
        assert!(ServingRuntime::new(&registry, ServingConfig::default()).is_ok());
    }
}
