//! Deterministic multi-tenant load generation.
//!
//! Each tenant draws exponential inter-arrival gaps from its own seeded
//! [`SmallRng`] stream — the same virtual-clock discipline the DSE uses,
//! so a given tenant mix always produces the same request trace,
//! bit-for-bit, regardless of how many OS threads or simulated nodes
//! later serve it. Streams are merged into one submission-ordered trace
//! with ties broken by `(tenant, per-tenant sequence)`.

use super::request::{Request, TenantSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Mixes a tenant seed and a request sequence number into the payload
/// generator's seed (splitmix-style odd constant keeps streams apart).
fn payload_seed(tenant_seed: u64, seq: u64) -> u64 {
    tenant_seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1)
}

/// Generates the merged request trace for a tenant mix.
///
/// Request ids are assigned in submission order after the merge, so the
/// id sequence itself is deterministic.
pub fn generate(tenants: &[TenantSpec]) -> Vec<Request> {
    let mut all: Vec<(f64, usize, u64, Vec<s2fa_sjvm::HostValue>)> = Vec::new();
    for (t_idx, t) in tenants.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(t.seed);
        let mut now = 0.0_f64;
        for seq in 0..t.requests as u64 {
            let u: f64 = rng.gen();
            // Exponential inter-arrival with mean 1/rate; `u < 1` by
            // construction so the log argument is strictly positive.
            now += -(1.0 - u).ln() / t.rate_per_ms;
            let records = (t.gen_input)(t.records_per_request, payload_seed(t.seed, seq));
            all.push((now, t_idx, seq, records));
        }
    }
    all.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    all.into_iter()
        .enumerate()
        .map(|(id, (submit_ms, tenant, _, records))| Request {
            id: id as u64,
            tenant,
            submit_ms,
            records,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::builder::{Expr, FnBuilder};
    use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};

    fn ints(n: usize, seed: u64) -> Vec<HostValue> {
        (0..n)
            .map(|i| HostValue::I(seed as i64 + i as i64))
            .collect()
    }

    fn noop_spec() -> KernelSpec {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        b.ret(Expr::local(x));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "id".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Int),
        }
    }

    fn tenant(name: &str, seed: u64, rate: f64, requests: usize) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            accel_id: name.into(),
            fallback: noop_spec(),
            rate_per_ms: rate,
            requests,
            records_per_request: 3,
            gen_input: ints,
            seed,
        }
    }

    #[test]
    fn trace_is_submission_ordered_with_sequential_ids() {
        let reqs = generate(&[tenant("a", 1, 0.5, 20), tenant("b", 2, 1.0, 20)]);
        assert_eq!(reqs.len(), 40);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.records.len(), 3);
            if i > 0 {
                assert!(r.submit_ms >= reqs[i - 1].submit_ms);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mix = [tenant("a", 7, 0.25, 30), tenant("b", 8, 2.0, 30)];
        assert_eq!(generate(&mix), generate(&mix));
    }

    #[test]
    fn seeds_separate_streams() {
        let a = generate(&[tenant("a", 1, 1.0, 10)]);
        let b = generate(&[tenant("a", 2, 1.0, 10)]);
        assert_ne!(
            a.iter().map(|r| r.submit_ms).collect::<Vec<_>>(),
            b.iter().map(|r| r.submit_ms).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rate_controls_the_mean_gap() {
        let reqs = generate(&[tenant("a", 3, 0.5, 400)]);
        let span = reqs.last().unwrap().submit_ms;
        let mean_gap = span / reqs.len() as f64;
        // mean of Exp(rate=0.5/ms) is 2 ms
        assert!((1.5..2.5).contains(&mean_gap), "mean gap {mean_gap} ms");
    }
}
