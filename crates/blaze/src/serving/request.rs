//! Serving-side request/reply types and the runtime configuration.

use crate::rdd::ExecutionPath;
use s2fa_sjvm::{HostValue, KernelSpec};

/// Configuration of one serving run.
///
/// `nodes` is a **modeling** parameter: it sizes the simulated cluster
/// and legitimately changes queueing delays and latencies.
/// `exec_threads` is an **execution** parameter: it only parallelizes
/// the functional re-execution of already-scheduled batches, so it must
/// never change any outcome — the determinism tests pin replies and
/// latencies bit-identical across `exec_threads` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServingConfig {
    /// Simulated accelerator worker nodes sharing the registry.
    pub nodes: usize,
    /// OS threads used for functional batch execution (timing-neutral).
    pub exec_threads: usize,
    /// The batch former closes a batch at this many requests.
    pub max_batch: usize,
    /// ... or when the oldest queued request has waited this long
    /// (virtual ms).
    pub max_wait_ms: f64,
    /// Per-tenant bound on admitted-but-unreplied requests; beyond it
    /// admission control rejects.
    pub max_inflight: usize,
    /// Per-accelerator bound on queued requests; beyond it the request
    /// is rejected with `queue_full`.
    pub queue_capacity: usize,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            nodes: 2,
            exec_threads: 1,
            max_batch: 8,
            max_wait_ms: 2.0,
            max_inflight: 16,
            queue_capacity: 64,
        }
    }
}

/// One tenant of the serving runtime: a named request stream against one
/// accelerator id, with the original lambda for the JVM fallback path.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Display name.
    pub name: String,
    /// Accelerator id requests are routed to.
    pub accel_id: String,
    /// The original lambda, executed on the JVM when `accel_id` is not
    /// registered (Blaze's fallback path).
    pub fallback: KernelSpec,
    /// Mean arrival rate in requests per virtual millisecond
    /// (exponential inter-arrivals).
    pub rate_per_ms: f64,
    /// Requests this tenant submits over the run.
    pub requests: usize,
    /// Records carried by each request.
    pub records_per_request: usize,
    /// Input generator `(n, seed) -> n records` (same signature the
    /// workload table uses).
    pub gen_input: fn(usize, u64) -> Vec<HostValue>,
    /// Seed of the tenant's private arrival/input RNG stream.
    pub seed: u64,
}

/// A generated request: payload plus its virtual submission time.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Run-unique id, assigned in submission order.
    pub id: u64,
    /// Index of the submitting tenant.
    pub tenant: usize,
    /// Virtual millisecond of submission.
    pub submit_ms: f64,
    /// Payload records.
    pub records: Vec<HostValue>,
}

/// Why admission control bounced a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant already had `max_inflight` admitted requests.
    InflightLimit,
    /// The target accelerator's queue was full.
    QueueFull,
}

impl RejectReason {
    /// Stable machine tag (the trace `reason` field).
    pub fn as_str(&self) -> &'static str {
        match self {
            RejectReason::InflightLimit => "inflight_limit",
            RejectReason::QueueFull => "queue_full",
        }
    }
}

/// Terminal state of one request.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// The request executed and its reply was delivered.
    Completed {
        /// Output records (one per input for map tenants, exactly one
        /// for reduce tenants).
        output: Vec<HostValue>,
        /// Which path executed it.
        path: ExecutionPath,
        /// Virtual millisecond the reply was delivered.
        reply_ms: f64,
        /// End-to-end virtual latency (reply - submit) in ms.
        latency_ms: f64,
    },
    /// The request was rejected before execution.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Virtual millisecond of the rejection.
        reject_ms: f64,
    },
}

/// The reply envelope for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Request id.
    pub request: u64,
    /// Submitting tenant index.
    pub tenant: usize,
    /// Virtual millisecond of submission.
    pub submit_ms: f64,
    /// How the request ended.
    pub disposition: Disposition,
}

impl RequestOutcome {
    /// The completed latency in ms, `None` for rejected requests.
    pub fn latency_ms(&self) -> Option<f64> {
        match &self.disposition {
            Disposition::Completed { latency_ms, .. } => Some(*latency_ms),
            Disposition::Rejected { .. } => None,
        }
    }

    /// The executed path, `None` for rejected requests.
    pub fn path(&self) -> Option<ExecutionPath> {
        match &self.disposition {
            Disposition::Completed { path, .. } => Some(*path),
            Disposition::Rejected { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = ServingConfig::default();
        assert!(c.nodes >= 1);
        assert!(c.exec_threads >= 1);
        assert!(c.max_batch >= 1);
        assert!(c.max_wait_ms > 0.0);
    }

    #[test]
    fn reject_reasons_have_stable_tags() {
        assert_eq!(RejectReason::InflightLimit.as_str(), "inflight_limit");
        assert_eq!(RejectReason::QueueFull.as_str(), "queue_full");
    }

    #[test]
    fn outcome_accessors() {
        let done = RequestOutcome {
            request: 1,
            tenant: 0,
            submit_ms: 1.0,
            disposition: Disposition::Completed {
                output: vec![],
                path: ExecutionPath::Offloaded,
                reply_ms: 3.0,
                latency_ms: 2.0,
            },
        };
        assert_eq!(done.latency_ms(), Some(2.0));
        assert_eq!(done.path(), Some(ExecutionPath::Offloaded));
        let rej = RequestOutcome {
            request: 2,
            tenant: 0,
            submit_ms: 1.0,
            disposition: Disposition::Rejected {
                reason: RejectReason::QueueFull,
                reject_ms: 1.0,
            },
        };
        assert_eq!(rej.latency_ms(), None);
        assert_eq!(rej.path(), None);
    }
}
