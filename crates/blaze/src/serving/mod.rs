//! Multi-tenant accelerator serving on top of the Blaze registry.
//!
//! The paper's deployment story is a datacenter one: accelerators are
//! registered with the Blaze accelerator manager and *shared* by many
//! Spark applications (§2). This module reproduces that serving side as
//! a deterministic discrete-event simulation: tenants submit request
//! streams against registered accelerator ids; requests pass admission
//! control (bounded per-tenant inflight), join per-accelerator FIFO
//! queues, are coalesced by a batch former (close on `max_batch`
//! requests or `max_wait_ms` of head-of-line waiting), execute on a
//! simulated cluster of `nodes` worker nodes sharing one registry, and
//! reply with a per-request latency. Unregistered ids take Blaze's JVM
//! fallback path, exactly as the RDD wrapper does.
//!
//! Everything runs on a **virtual millisecond clock** with the same
//! determinism discipline as the DSE's virtual scheduler: outcomes are
//! a pure function of (tenants, config, registry) and are bit-identical
//! across OS execution-thread counts ([`ServingConfig::exec_threads`]).
//! Serving emits [`s2fa_trace::Event`] serving variants
//! (submit/admit/enqueue/batch_formed/execute/reply/reject) so one
//! flight recorder spans a DSE run and the serving run of the designs
//! it produced, and threads [`s2fa_obs`] spans through the heavy
//! phases.

mod loadgen;
mod request;
mod sim;
mod stats;

pub use loadgen::generate;
pub use request::{Disposition, RejectReason, Request, RequestOutcome, ServingConfig, TenantSpec};
pub use sim::ServingRuntime;
pub use stats::{ServeOutcome, ServingStats};
