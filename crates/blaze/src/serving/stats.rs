//! Aggregate counters of one serving run.

use super::request::RequestOutcome;
use crate::rdd::ExecutionPath;
use std::collections::BTreeMap;

/// Counters accumulated by the event loop.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServingStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests admitted (inflight + queue bounds passed).
    pub admitted: u64,
    /// Requests rejected by admission control or a full queue.
    pub rejected: u64,
    /// Requests completed on a registered accelerator.
    pub completed_accel: u64,
    /// Requests completed on the JVM fallback path.
    pub completed_fallback: u64,
    /// Batches formed.
    pub batches: u64,
    /// Distribution of batch sizes (requests per batch -> batches).
    pub batch_sizes: BTreeMap<usize, u64>,
    /// Deepest any accelerator queue got.
    pub max_queue_depth: u64,
    /// Records executed across all completed requests.
    pub total_tasks: u64,
    /// Virtual millisecond the last event fired (the makespan).
    pub makespan_ms: f64,
}

impl ServingStats {
    /// Completed requests on either path.
    pub fn completed(&self) -> u64 {
        self.completed_accel + self.completed_fallback
    }

    /// Fraction of completed requests that fell back to the JVM
    /// (0.0 when nothing completed).
    pub fn fallback_fraction(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            0.0
        } else {
            self.completed_fallback as f64 / done as f64
        }
    }

    /// Mean batch size in requests (0.0 when no batch formed).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            return 0.0;
        }
        let total: u64 = self
            .batch_sizes
            .iter()
            .map(|(size, count)| *size as u64 * count)
            .sum();
        total as f64 / self.batches as f64
    }
}

/// The result of one serving run: per-request replies plus aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// One outcome per generated request, in request-id order.
    pub outcomes: Vec<RequestOutcome>,
    /// Run-level counters.
    pub stats: ServingStats,
}

impl ServeOutcome {
    /// Completed latencies in ms, in request-id order.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(RequestOutcome::latency_ms)
            .collect()
    }

    /// Completed outcomes that ran on `path`.
    pub fn completed_on(&self, path: ExecutionPath) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.path() == Some(path))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fallback_fraction_handles_empty_runs() {
        let s = ServingStats::default();
        assert_eq!(s.fallback_fraction(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
    }

    #[test]
    fn fallback_fraction_and_mean_batch() {
        let mut s = ServingStats {
            completed_accel: 6,
            completed_fallback: 2,
            batches: 3,
            ..Default::default()
        };
        s.batch_sizes.insert(2, 2);
        s.batch_sizes.insert(4, 1);
        assert!((s.fallback_fraction() - 0.25).abs() < 1e-12);
        assert!((s.mean_batch_size() - 8.0 / 3.0).abs() < 1e-12);
    }
}
