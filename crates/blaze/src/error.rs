//! Blaze runtime errors.

use std::fmt;

/// Errors from the Blaze runtime substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum BlazeError {
    /// A record does not match the declared layout.
    Layout(String),
    /// The accelerator's functional execution failed.
    Accel(String),
    /// The JVM fallback path failed.
    Jvm(String),
    /// Operation on an empty dataset that requires data.
    EmptyDataset,
}

impl fmt::Display for BlazeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlazeError::Layout(m) => write!(f, "layout mismatch: {m}"),
            BlazeError::Accel(m) => write!(f, "accelerator execution failed: {m}"),
            BlazeError::Jvm(m) => write!(f, "jvm execution failed: {m}"),
            BlazeError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
        }
    }
}

impl std::error::Error for BlazeError {}

impl From<s2fa_sjvm::SjvmError> for BlazeError {
    fn from(e: s2fa_sjvm::SjvmError) -> Self {
        BlazeError::Jvm(e.to_string())
    }
}

impl From<s2fa_hlsir::HlsirError> for BlazeError {
    fn from(e: s2fa_hlsir::HlsirError) -> Self {
        BlazeError::Accel(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: BlazeError = s2fa_sjvm::SjvmError::OutOfFuel.into();
        assert!(matches!(e, BlazeError::Jvm(_)));
        assert!(BlazeError::EmptyDataset.to_string().contains("non-empty"));
    }
}
