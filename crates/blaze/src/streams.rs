//! Java-8-streams-style integration.
//!
//! The paper notes that "the S2FA framework is able to compile any
//! Java/Scala method that satisfies the constraints listed in Section 3.3
//! to an FPGA kernel, so we can easily integrate S2FA with other JVM-based
//! runtime systems such as Hadoop and streaming APIs in Java 8" (§2).
//!
//! This module is that integration for a `java.util.stream`-like API: a
//! lazy pipeline of stages over [`HostValue`] elements whose accelerated
//! `map` stages route through the same [`AcceleratorRegistry`] Blaze uses.
//! Host-side stages (`filter`, `map_native`) compose freely around the
//! offloaded ones, and nothing about the compiled kernel changes — the
//! runtime system is just another consumer of the accelerator service.
//!
//! ```
//! # use s2fa_blaze::{AcceleratorRegistry, streams::Stream};
//! # use s2fa_sjvm::HostValue;
//! let registry = AcceleratorRegistry::new();
//! let out = Stream::of((0..4).map(HostValue::I).collect::<Vec<_>>(), &registry)
//!     .filter(|v| v.as_i64().unwrap_or(0) % 2 == 0)
//!     .map_native(|v| HostValue::I(v.as_i64().unwrap_or(0) + 100))
//!     .collect()?;
//! assert_eq!(out.len(), 2);
//! # Ok::<(), s2fa_blaze::BlazeError>(())
//! ```

use crate::rdd::AccCall;
use crate::service::AcceleratorRegistry;
use crate::{BlazeError, ExecutionPath, OffloadReport};
use s2fa_sjvm::{HostValue, Interp, RddOp};

/// A pipeline stage.
enum Stage {
    /// Host-side predicate.
    Filter(Box<dyn Fn(&HostValue) -> bool>),
    /// Host-side element transform.
    MapNative(Box<dyn Fn(&HostValue) -> HostValue>),
    /// Accelerated map through the registry (JVM fallback when the id is
    /// not registered).
    MapAccel(AccCall),
}

/// A lazy stream of host values with offloadable `map` stages.
pub struct Stream<'r> {
    source: Vec<HostValue>,
    stages: Vec<Stage>,
    registry: &'r AcceleratorRegistry,
    reports: Vec<OffloadReport>,
}

impl<'r> Stream<'r> {
    /// Creates a stream over `source`, resolving accelerated stages
    /// against `registry`.
    pub fn of(source: Vec<HostValue>, registry: &'r AcceleratorRegistry) -> Stream<'r> {
        Stream {
            source,
            stages: Vec::new(),
            registry,
            reports: Vec::new(),
        }
    }

    /// Adds a host-side filter stage.
    #[must_use]
    pub fn filter(mut self, pred: impl Fn(&HostValue) -> bool + 'static) -> Self {
        self.stages.push(Stage::Filter(Box::new(pred)));
        self
    }

    /// Adds a host-side map stage.
    #[must_use]
    pub fn map_native(mut self, f: impl Fn(&HostValue) -> HostValue + 'static) -> Self {
        self.stages.push(Stage::MapNative(Box::new(f)));
        self
    }

    /// Adds an *accelerated* map stage: executed on the registered design
    /// when available, on the JVM interpreter otherwise — exactly Blaze's
    /// routing, reused by a different runtime system.
    #[must_use]
    pub fn map(mut self, call: AccCall) -> Self {
        self.stages.push(Stage::MapAccel(call));
        self
    }

    /// Runs the pipeline and returns the resulting elements.
    ///
    /// # Errors
    ///
    /// Propagates accelerator/JVM execution errors from offloaded stages.
    pub fn collect(mut self) -> Result<Vec<HostValue>, BlazeError> {
        let mut data = std::mem::take(&mut self.source);
        let stages = std::mem::take(&mut self.stages);
        for stage in &stages {
            data = self.run_stage(stage, data)?;
        }
        Ok(data)
    }

    /// Runs the pipeline and returns the elements plus the per-offload
    /// reports (which path ran, modelled time).
    ///
    /// # Errors
    ///
    /// Propagates accelerator/JVM execution errors from offloaded stages.
    pub fn collect_with_reports(
        mut self,
    ) -> Result<(Vec<HostValue>, Vec<OffloadReport>), BlazeError> {
        let mut data = std::mem::take(&mut self.source);
        let stages = std::mem::take(&mut self.stages);
        for stage in &stages {
            data = self.run_stage(stage, data)?;
        }
        Ok((data, self.reports))
    }

    fn run_stage(
        &mut self,
        stage: &Stage,
        data: Vec<HostValue>,
    ) -> Result<Vec<HostValue>, BlazeError> {
        match stage {
            Stage::Filter(p) => Ok(data.into_iter().filter(|v| p(v)).collect()),
            Stage::MapNative(f) => Ok(data.iter().map(f).collect()),
            Stage::MapAccel(call) => {
                if data.is_empty() {
                    return Ok(data);
                }
                if call.spec.operator != RddOp::Map {
                    return Err(BlazeError::Accel(
                        "stream map stages require a map kernel".into(),
                    ));
                }
                if let Some(accel) = self.registry.lookup(&call.id) {
                    let (out, stats) = accel.run_batch(&data)?;
                    self.reports.push(OffloadReport {
                        path: ExecutionPath::Offloaded,
                        tasks: stats.tasks,
                        time_ms: stats.modelled_ms,
                        bytes: stats.bytes,
                    });
                    Ok(out)
                } else {
                    let spec = &call.spec;
                    let mut interp = Interp::new(&spec.classes, &spec.methods);
                    let mut out = Vec::with_capacity(data.len());
                    let mut total_ns = 0.0;
                    for rec in &data {
                        let (v, stats) = interp.run(spec.entry, std::slice::from_ref(rec))?;
                        total_ns += stats.ns;
                        out.push(v);
                    }
                    self.reports.push(OffloadReport {
                        path: ExecutionPath::JvmFallback,
                        tasks: data.len() as u64,
                        time_ms: Some(total_ns / 1e6),
                        bytes: 0,
                    });
                    Ok(out)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::builder::{Expr, FnBuilder};
    use s2fa_sjvm::{ClassTable, JType, KernelSpec, MethodTable, Shape};

    fn square_spec() -> KernelSpec {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        b.ret(Expr::local(x).mul(Expr::local(x)));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "sq".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Int),
        }
    }

    #[test]
    fn mixed_pipeline_on_the_jvm_path() {
        let registry = AcceleratorRegistry::new();
        let call = AccCall {
            id: "sq".into(),
            spec: square_spec(),
        };
        let (out, reports) = Stream::of((1..=6).map(HostValue::I).collect(), &registry)
            .filter(|v| v.as_i64().unwrap() % 2 == 0) // 2, 4, 6
            .map(call) // 4, 16, 36
            .map_native(|v| HostValue::I(v.as_i64().unwrap() + 1)) // 5, 17, 37
            .collect_with_reports()
            .unwrap();
        assert_eq!(
            out,
            vec![HostValue::I(5), HostValue::I(17), HostValue::I(37)]
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].path, ExecutionPath::JvmFallback);
    }

    #[test]
    fn empty_streams_pass_through() {
        let registry = AcceleratorRegistry::new();
        let call = AccCall {
            id: "sq".into(),
            spec: square_spec(),
        };
        let out = Stream::of(vec![], &registry).map(call).collect().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn stages_compose_in_order() {
        let registry = AcceleratorRegistry::new();
        let out = Stream::of((0..5).map(HostValue::I).collect(), &registry)
            .map_native(|v| HostValue::I(v.as_i64().unwrap() * 10))
            .filter(|v| v.as_i64().unwrap() >= 20)
            .collect()
            .unwrap();
        assert_eq!(
            out,
            vec![HostValue::I(20), HostValue::I(30), HostValue::I(40)]
        );
    }
}
