//! A deployed accelerator: generated kernel + layouts + time model.

use crate::serial::DataLayout;
use crate::BlazeError;
use s2fa_hlsir::{CFunction, CVal, Executor};
use s2fa_sjvm::RddOp;
use std::collections::BTreeMap;

/// Timing model of a deployed accelerator, derived from the HLS estimate
/// of its final design (filled in by the `s2fa` pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelTimeModel {
    /// Marginal kernel time per task in milliseconds (compute/transfer
    /// overlapped as estimated).
    pub per_task_ms: f64,
    /// Fixed invocation overhead (driver call, DMA setup) in ms.
    pub setup_ms: f64,
}

impl AccelTimeModel {
    /// Modelled wall-clock for a batch of `tasks`.
    pub fn batch_ms(&self, tasks: u64) -> f64 {
        self.setup_ms + self.per_task_ms * tasks as f64
    }
}

/// Execution statistics of one offloaded batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelStats {
    /// Tasks processed.
    pub tasks: u64,
    /// Bytes moved over the interface (in + out).
    pub bytes: u64,
    /// Modelled accelerator wall-clock in ms (`None` if no time model was
    /// attached).
    pub modelled_ms: Option<f64>,
}

/// A registered accelerator design: the generated HLS kernel, the
/// generated data layouts, and (optionally) its timing model.
#[derive(Debug, Clone)]
pub struct Accelerator {
    /// Blaze accelerator id (Code 1's `val id`).
    pub id: String,
    /// The generated HLS C kernel.
    pub kernel: CFunction,
    /// Operator semantics baked into the kernel's template loop.
    pub operator: RddOp,
    /// Input-side layout.
    pub input_layout: DataLayout,
    /// Output-side layout.
    pub output_layout: DataLayout,
    /// Timing model from the final design's HLS estimate.
    pub time_model: Option<AccelTimeModel>,
}

impl Accelerator {
    /// Executes a batch of records on the accelerator.
    ///
    /// Functional behaviour comes from executing the generated HLS IR over
    /// the serialized buffers; the modelled time comes from
    /// [`AccelTimeModel`] if attached. For [`RddOp::Map`] the result has
    /// one record per input; for [`RddOp::Reduce`] it has exactly one.
    ///
    /// # Errors
    ///
    /// Returns [`BlazeError::Layout`] on record/layout mismatches and
    /// [`BlazeError::Accel`] if the kernel faults.
    pub fn run_batch(
        &self,
        records: &[s2fa_sjvm::HostValue],
    ) -> Result<(Vec<s2fa_sjvm::HostValue>, AccelStats), BlazeError> {
        if records.is_empty() {
            return Err(BlazeError::EmptyDataset);
        }
        let n = records.len();
        let mut buffers = self.input_layout.serialize(records)?;
        let out_tasks = match self.operator {
            RddOp::Map => n,
            RddOp::Reduce => 1,
        };
        buffers.extend(self.output_layout.alloc(out_tasks));
        let mut scalars = BTreeMap::new();
        scalars.insert("n".to_string(), CVal::I(n as i64));
        Executor::new(&self.kernel).run(&scalars, &mut buffers)?;
        let out = self.output_layout.deserialize(&buffers, out_tasks)?;
        // Broadcast leaves move once per batch on *both* sides of the
        // interface: captured closure state in, once-per-batch results out.
        let bytes = self.input_layout.bytes_per_task() * n as u64
            + self.input_layout.broadcast_bytes()
            + self.output_layout.bytes_per_task() * out_tasks as u64
            + self.output_layout.broadcast_bytes();
        let stats = AccelStats {
            tasks: n as u64,
            bytes,
            modelled_ms: self.time_model.map(|m| m.batch_ms(n as u64)),
        };
        Ok((out, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{ast, CBinOp, CNumKind, Expr, LValue, LoopId, Stmt};
    use s2fa_sjvm::{HostValue, JType, Shape};

    /// Hand-built kernel: out_1[i] = in_1[i] * 2
    fn doubler() -> Accelerator {
        let kernel = ast::CFunction {
            name: "dbl".into(),
            params: vec![
                ast::Param {
                    name: "n".into(),
                    ty: ast::CType::Int(32),
                    kind: ast::ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                ast::Param {
                    name: "in_1".into(),
                    ty: ast::CType::Float,
                    kind: ast::ParamKind::BufIn,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
                ast::Param {
                    name: "out_1".into(),
                    ty: ast::CType::Float,
                    kind: ast::ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "i".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs: Default::default(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::bin(
                        CBinOp::Mul,
                        CNumKind::F64,
                        Expr::index("in_1", Expr::var("i")),
                        Expr::ConstF(2.0),
                    ),
                }],
            }],
        };
        let shape = Shape::Scalar(JType::Double);
        Accelerator {
            id: "dbl".into(),
            kernel,
            operator: s2fa_sjvm::RddOp::Map,
            input_layout: DataLayout::from_shape(&shape, "in"),
            output_layout: DataLayout::from_shape(&shape, "out"),
            time_model: Some(AccelTimeModel {
                per_task_ms: 0.001,
                setup_ms: 0.5,
            }),
        }
    }

    /// Hand-built reduce kernel: out_1[0] = sum(in_1[0..n])
    fn summer() -> Accelerator {
        let kernel = ast::CFunction {
            name: "sum".into(),
            params: vec![
                ast::Param {
                    name: "n".into(),
                    ty: ast::CType::Int(32),
                    kind: ast::ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                ast::Param {
                    name: "in_1".into(),
                    ty: ast::CType::Float,
                    kind: ast::ParamKind::BufIn,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
                ast::Param {
                    name: "out_1".into(),
                    ty: ast::CType::Float,
                    kind: ast::ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "i".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs: Default::default(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::bin(
                        CBinOp::Add,
                        CNumKind::F64,
                        Expr::index("out_1", Expr::ConstI(0)),
                        Expr::index("in_1", Expr::var("i")),
                    ),
                }],
            }],
        };
        let shape = Shape::Scalar(JType::Double);
        Accelerator {
            id: "sum".into(),
            kernel,
            operator: s2fa_sjvm::RddOp::Reduce,
            input_layout: DataLayout::from_shape(&shape, "in"),
            output_layout: DataLayout::from_shape(&shape, "out"),
            time_model: Some(AccelTimeModel {
                per_task_ms: 0.25,
                setup_ms: 1.0,
            }),
        }
    }

    #[test]
    fn executes_map_batch() {
        let acc = doubler();
        let input: Vec<HostValue> = (0..5).map(|i| HostValue::F(i as f64)).collect();
        let (out, stats) = acc.run_batch(&input).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out[3], HostValue::F(6.0));
        assert_eq!(stats.tasks, 5);
        assert_eq!(stats.bytes, 5 * 8 * 2);
        let ms = stats.modelled_ms.unwrap();
        assert!((ms - (0.5 + 0.005)).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_an_error() {
        let acc = doubler();
        assert_eq!(acc.run_batch(&[]), Err(BlazeError::EmptyDataset));
    }

    #[test]
    fn executes_reduce_batch() {
        let acc = summer();
        let input: Vec<HostValue> = (1..=6).map(|i| HostValue::F(i as f64)).collect();
        let (out, stats) = acc.run_batch(&input).unwrap();
        // reduce produces exactly one record regardless of batch size
        assert_eq!(out, vec![HostValue::F(21.0)]);
        assert_eq!(stats.tasks, 6);
        // 6 input records in, 1 output record back
        assert_eq!(stats.bytes, 6 * 8 + 8);
        let ms = stats.modelled_ms.unwrap();
        assert!((ms - (1.0 + 0.25 * 6.0)).abs() < 1e-12);
    }

    #[test]
    fn reduce_rejects_empty_batches_too() {
        let acc = summer();
        assert_eq!(acc.run_batch(&[]), Err(BlazeError::EmptyDataset));
    }

    /// Regression: output-side broadcast leaves must be counted in the
    /// interface byte total (they were silently dropped while the input
    /// side's were added).
    #[test]
    fn output_broadcast_bytes_are_counted() {
        let mut acc = doubler();
        // (per-task Double, broadcast Double) on the output side: out_1
        // sliced per task, out_2 a single once-per-batch copy.
        let out_shape = Shape::pair(
            Shape::Scalar(JType::Double),
            Shape::broadcast(Shape::Scalar(JType::Double)),
        );
        acc.output_layout = DataLayout::from_shape(&out_shape, "out");
        acc.kernel.params.push(ast::Param {
            name: "out_2".into(),
            ty: ast::CType::Float,
            kind: ast::ParamKind::BufOut,
            elems_per_task: Some(1),
            broadcast: true,
        });
        assert_eq!(acc.output_layout.broadcast_bytes(), 8);
        let input: Vec<HostValue> = (0..5).map(|i| HostValue::F(i as f64)).collect();
        let (out, stats) = acc.run_batch(&input).unwrap();
        assert_eq!(out.len(), 5);
        // 5 tasks in + 5 per-task out + one 8-byte broadcast out
        assert_eq!(stats.bytes, 5 * 8 + 5 * 8 + 8);
    }

    #[test]
    fn time_model_batches() {
        let m = AccelTimeModel {
            per_task_ms: 0.5,
            setup_ms: 2.0,
        };
        assert!((m.batch_ms(100) - 52.0).abs() < 1e-12);
    }
}
