#![warn(missing_docs)]

//! # s2fa-blaze — the Spark + Blaze runtime substrate
//!
//! Blaze "abstracts FPGA accelerators as a service": Spark programs wrap an
//! RDD, tag a transformation with an accelerator id, and the runtime routes
//! each task batch either to a registered FPGA accelerator or back to the
//! JVM (paper §2, Code 1). This crate reproduces that integration surface:
//!
//! * [`Rdd`] / [`BlazeContext::wrap`] — the mini-Spark dataset and the
//!   Blaze wrapper;
//! * [`AccCall`] — the analogue of `class SW() extends Accelerator`:
//!   an accelerator id plus the Scala lambda (as a [`KernelSpec`]) used
//!   when the runtime falls back to the JVM;
//! * [`AcceleratorRegistry`] — the Blaze accelerator-manager service;
//! * [`DataLayout`] — the generated data-processing methods (paper §3.2's
//!   "data processing method generator"): reflection-style (de)serializers
//!   between [`HostValue`] records and the flat buffers of the generated
//!   accelerator interface;
//! * [`Accelerator::run_batch`] — functional offload through the HLS IR
//!   executor plus a PCIe/DMA + kernel time model, so application-level
//!   speedups can be reported end to end;
//! * [`streams`] — a Java-8-streams-style pipeline over the same
//!   accelerator service, demonstrating §2's claim that S2FA plugs into
//!   other JVM runtime systems unchanged;
//! * [`serving`] — the datacenter serving side: a deterministic
//!   multi-tenant request path (admission → queueing → batch forming →
//!   simulated cluster execution → reply) over the same registry, with
//!   trace events and host-time spans threaded through.
//!
//! [`KernelSpec`]: s2fa_sjvm::KernelSpec
//! [`HostValue`]: s2fa_sjvm::HostValue

pub mod accel;
pub mod rdd;
pub mod serial;
pub mod service;
pub mod serving;
pub mod streams;

mod error;

pub use accel::{AccelStats, AccelTimeModel, Accelerator};
pub use error::BlazeError;
pub use rdd::{AccCall, BlazeContext, BlazeRdd, ExecutionPath, OffloadReport, Rdd};
pub use serial::{BufferSlot, DataLayout};
pub use service::{AcceleratorRegistry, RegisteredAccel};
pub use serving::{ServeOutcome, ServingConfig, ServingRuntime, TenantSpec};
