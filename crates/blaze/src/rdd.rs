//! Mini-Spark RDDs and the Blaze wrapper.
//!
//! The paper's Code 1 in this substrate:
//!
//! ```
//! # use s2fa_blaze::{AcceleratorRegistry, BlazeContext, Rdd};
//! # use s2fa_sjvm::HostValue;
//! let registry = AcceleratorRegistry::new();
//! let blaze = BlazeContext::new(&registry);
//! let pairs = Rdd::from_values(vec![HostValue::I(1), HostValue::I(2)]);
//! let blaze_pairs = blaze.wrap(pairs);
//! // `blaze_pairs.map(&acc_call)` routes to the accelerator if
//! // `acc_call.id` is registered, otherwise falls back to the JVM.
//! ```

use crate::service::AcceleratorRegistry;
use crate::BlazeError;
use s2fa_sjvm::{HostValue, Interp, JvmCostModel, KernelSpec, RddOp};

/// A resilient distributed dataset (single-node, in-memory slice of one).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rdd {
    data: Vec<HostValue>,
}

impl Rdd {
    /// Creates an RDD from records.
    pub fn from_values(data: Vec<HostValue>) -> Rdd {
        Rdd { data }
    }

    /// The records.
    pub fn collect(&self) -> &[HostValue] {
        &self.data
    }

    /// Number of records.
    pub fn count(&self) -> usize {
        self.data.len()
    }

    /// True if the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Native map transformation (driver-side; not offloadable).
    pub fn map_native(&self, f: impl FnMut(&HostValue) -> HostValue) -> Rdd {
        Rdd {
            data: self.data.iter().map(f).collect(),
        }
    }
}

impl FromIterator<HostValue> for Rdd {
    fn from_iter<I: IntoIterator<Item = HostValue>>(iter: I) -> Self {
        Rdd {
            data: iter.into_iter().collect(),
        }
    }
}

/// The analogue of `class SW() extends Accelerator[I, O]` in Code 1: the
/// accelerator id plus the lambda (as compiled JVM bytecode) for the
/// fallback path.
#[derive(Debug, Clone)]
pub struct AccCall {
    /// Accelerator id to look up in the registry.
    pub id: String,
    /// The lambda, used when no accelerator is registered (Blaze falls
    /// back to executing the original Scala method on the JVM).
    pub spec: KernelSpec,
}

/// Which path executed an offloaded transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPath {
    /// Ran on the registered accelerator.
    Offloaded,
    /// Fell back to the single-threaded JVM executor.
    JvmFallback,
}

/// Timing/shape report of one transformation.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadReport {
    /// Which path ran.
    pub path: ExecutionPath,
    /// Records processed.
    pub tasks: u64,
    /// Modelled wall-clock of the executed path in ms. `None` means the
    /// offloaded design had no time model attached — distinct from an
    /// actual 0 ms execution, so aggregates can skip unmodelled runs
    /// instead of averaging in zeros. The JVM path always measures.
    pub time_ms: Option<f64>,
    /// Bytes over the accelerator interface (0 on the JVM path).
    pub bytes: u64,
}

impl OffloadReport {
    /// The modelled time, or 0.0 for unmodelled offloads — the old
    /// lossy behaviour, for display code that needs *a* number.
    pub fn time_ms_or_zero(&self) -> f64 {
        self.time_ms.unwrap_or(0.0)
    }
}

/// The Blaze driver context: holds the accelerator registry and the
/// offload policy.
#[derive(Debug, Clone, Copy)]
pub struct BlazeContext<'r> {
    registry: &'r AcceleratorRegistry,
    /// Minimum batch size worth offloading: below it the fixed driver/DMA
    /// setup dominates and the JVM path wins, so Blaze keeps small batches
    /// on the host.
    min_offload_batch: usize,
}

impl<'r> BlazeContext<'r> {
    /// Creates a context over a registry with offloading enabled for any
    /// batch size.
    pub fn new(registry: &'r AcceleratorRegistry) -> Self {
        BlazeContext {
            registry,
            min_offload_batch: 0,
        }
    }

    /// Sets the minimum batch size routed to the accelerator; smaller
    /// batches fall back to the JVM even when a design is registered.
    pub fn with_min_offload_batch(mut self, min: usize) -> Self {
        self.min_offload_batch = min;
        self
    }

    /// Wraps an RDD for transparent offloading (Code 1, line 2).
    pub fn wrap(&self, rdd: Rdd) -> BlazeRdd<'r> {
        BlazeRdd {
            rdd,
            registry: self.registry,
            min_offload_batch: self.min_offload_batch,
        }
    }
}

/// A wrapped RDD whose transformations route through the accelerator
/// manager.
#[derive(Debug)]
pub struct BlazeRdd<'r> {
    rdd: Rdd,
    registry: &'r AcceleratorRegistry,
    min_offload_batch: usize,
}

impl BlazeRdd<'_> {
    /// The wrapped records.
    pub fn collect(&self) -> &[HostValue] {
        self.rdd.collect()
    }

    /// Offloadable `map` (Code 1, line 3).
    ///
    /// # Errors
    ///
    /// Propagates layout/execution errors from either path.
    pub fn map(&self, acc: &AccCall) -> Result<(Rdd, OffloadReport), BlazeError> {
        self.transform(acc, RddOp::Map)
    }

    /// Offloadable `reduce`: combines all records pairwise with the lambda.
    ///
    /// # Errors
    ///
    /// Returns [`BlazeError::EmptyDataset`] for empty inputs; otherwise
    /// propagates layout/execution errors.
    pub fn reduce(&self, acc: &AccCall) -> Result<(HostValue, OffloadReport), BlazeError> {
        let (rdd, report) = self.transform(acc, RddOp::Reduce)?;
        let v = rdd
            .collect()
            .first()
            .cloned()
            .ok_or(BlazeError::EmptyDataset)?;
        Ok((v, report))
    }

    fn transform(&self, acc: &AccCall, op: RddOp) -> Result<(Rdd, OffloadReport), BlazeError> {
        if self.rdd.is_empty() {
            return Err(BlazeError::EmptyDataset);
        }
        if self.rdd.count() >= self.min_offload_batch {
            if let Some(accel) = self.registry.lookup(&acc.id) {
                return self.offload(&accel, acc, op);
            }
        }
        self.jvm_fallback(acc, op)
    }

    fn offload(
        &self,
        accel: &crate::accel::Accelerator,
        acc: &AccCall,
        op: RddOp,
    ) -> Result<(Rdd, OffloadReport), BlazeError> {
        {
            if accel.operator != op {
                return Err(BlazeError::Accel(format!(
                    "accelerator `{}` implements {}, not {}",
                    acc.id,
                    accel.operator.name(),
                    op.name()
                )));
            }
            let (out, stats) = accel.run_batch(self.rdd.collect())?;
            let report = OffloadReport {
                path: ExecutionPath::Offloaded,
                tasks: stats.tasks,
                time_ms: stats.modelled_ms,
                bytes: stats.bytes,
            };
            Ok((Rdd::from_values(out), report))
        }
    }

    /// Runs the original lambda on the interpreter (the Blaze fallback).
    fn jvm_fallback(&self, acc: &AccCall, op: RddOp) -> Result<(Rdd, OffloadReport), BlazeError> {
        let spec = &acc.spec;
        let mut interp =
            Interp::new(&spec.classes, &spec.methods).with_cost_model(JvmCostModel::default());
        let mut total_ns = 0.0;
        let out = match op {
            RddOp::Map => {
                let mut out = Vec::with_capacity(self.rdd.count());
                for rec in self.rdd.collect() {
                    let (v, stats) = interp.run(spec.entry, std::slice::from_ref(rec))?;
                    total_ns += stats.ns;
                    out.push(v);
                }
                out
            }
            RddOp::Reduce => {
                let records = self.rdd.collect();
                let mut acc_val = records[0].clone();
                for rec in &records[1..] {
                    let (v, stats) = interp.run(spec.entry, &[acc_val.clone(), rec.clone()])?;
                    total_ns += stats.ns;
                    acc_val = v;
                }
                vec![acc_val]
            }
        };
        let report = OffloadReport {
            path: ExecutionPath::JvmFallback,
            tasks: self.rdd.count() as u64,
            time_ms: Some(total_ns / 1e6),
            bytes: 0,
        };
        Ok((Rdd::from_values(out), report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_sjvm::builder::{Expr, FnBuilder};
    use s2fa_sjvm::{ClassTable, JType, MethodTable, Shape};

    /// x -> x * 3 lambda as a kernel spec.
    fn triple_spec() -> KernelSpec {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        b.ret(Expr::local(x).mul(Expr::const_i(3)));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "triple".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Int),
        }
    }

    /// (a, b) -> a + b reduce lambda.
    fn sum_spec() -> KernelSpec {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new(
            "call",
            &[("a", JType::Int), ("b", JType::Int)],
            Some(JType::Int),
        );
        let a = b.param(0);
        let x = b.param(1);
        b.ret(Expr::local(a).add(Expr::local(x)));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "sum".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Reduce,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Int),
        }
    }

    #[test]
    fn jvm_fallback_map() {
        let registry = AcceleratorRegistry::new();
        let blaze = BlazeContext::new(&registry);
        let rdd = Rdd::from_values(vec![HostValue::I(1), HostValue::I(5)]);
        let call = AccCall {
            id: "triple".into(),
            spec: triple_spec(),
        };
        let (out, report) = blaze.wrap(rdd).map(&call).unwrap();
        assert_eq!(out.collect(), &[HostValue::I(3), HostValue::I(15)]);
        assert_eq!(report.path, ExecutionPath::JvmFallback);
        assert!(report.time_ms.unwrap() > 0.0);
        assert_eq!(report.bytes, 0);
    }

    #[test]
    fn jvm_fallback_reduce() {
        let registry = AcceleratorRegistry::new();
        let blaze = BlazeContext::new(&registry);
        let rdd: Rdd = (1..=10).map(HostValue::I).collect();
        let call = AccCall {
            id: "sum".into(),
            spec: sum_spec(),
        };
        let (v, report) = blaze.wrap(rdd).reduce(&call).unwrap();
        assert_eq!(v, HostValue::I(55));
        assert_eq!(report.tasks, 10);
    }

    #[test]
    fn empty_dataset_rejected() {
        let registry = AcceleratorRegistry::new();
        let blaze = BlazeContext::new(&registry);
        let call = AccCall {
            id: "t".into(),
            spec: triple_spec(),
        };
        assert_eq!(
            blaze.wrap(Rdd::default()).map(&call).unwrap_err(),
            BlazeError::EmptyDataset
        );
    }

    #[test]
    fn native_map_and_collection() {
        let rdd = Rdd::from_values(vec![HostValue::I(1), HostValue::I(2)]);
        let doubled = rdd.map_native(|v| HostValue::I(v.as_i64().unwrap() * 2));
        assert_eq!(doubled.collect(), &[HostValue::I(2), HostValue::I(4)]);
        assert_eq!(doubled.count(), 2);
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::accel::Accelerator;
    use crate::serial::DataLayout;
    use s2fa_hlsir::{ast, CBinOp, CNumKind};
    use s2fa_sjvm::builder::{Expr as JE, FnBuilder};
    use s2fa_sjvm::{ClassTable, JType, MethodTable, Shape};

    fn identity_accel(id: &str) -> Accelerator {
        let shape = Shape::Scalar(JType::Int);
        Accelerator {
            id: id.into(),
            kernel: ast::CFunction {
                name: "idk".into(),
                params: vec![
                    ast::Param {
                        name: "n".into(),
                        ty: ast::CType::Int(32),
                        kind: ast::ParamKind::ScalarIn,
                        elems_per_task: None,
                        broadcast: false,
                    },
                    ast::Param {
                        name: "in_1".into(),
                        ty: ast::CType::Int(32),
                        kind: ast::ParamKind::BufIn,
                        elems_per_task: Some(1),
                        broadcast: false,
                    },
                    ast::Param {
                        name: "out_1".into(),
                        ty: ast::CType::Int(32),
                        kind: ast::ParamKind::BufOut,
                        elems_per_task: Some(1),
                        broadcast: false,
                    },
                ],
                body: vec![ast::Stmt::For {
                    id: ast::LoopId(0),
                    var: "i".into(),
                    bound: ast::Expr::var("n"),
                    trip_count: None,
                    attrs: Default::default(),
                    body: vec![ast::Stmt::Assign {
                        lhs: ast::LValue::Index("out_1".into(), Box::new(ast::Expr::var("i"))),
                        rhs: ast::Expr::bin(
                            CBinOp::Mul,
                            CNumKind::I32,
                            ast::Expr::index("in_1", ast::Expr::var("i")),
                            ast::Expr::ConstI(2),
                        ),
                    }],
                }],
            },
            operator: RddOp::Map,
            input_layout: DataLayout::from_shape(&shape, "in"),
            output_layout: DataLayout::from_shape(&shape, "out"),
            time_model: None,
        }
    }

    fn double_spec() -> KernelSpec {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        b.ret(JE::local(x).mul(JE::const_i(2)));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "dbl".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Int),
        }
    }

    #[test]
    fn small_batches_stay_on_the_jvm() {
        let registry = AcceleratorRegistry::new();
        registry.register(identity_accel("dbl"));
        let blaze = BlazeContext::new(&registry).with_min_offload_batch(10);
        let call = AccCall {
            id: "dbl".into(),
            spec: double_spec(),
        };
        // 3 records < threshold → JVM, same results
        let small = Rdd::from_values((0..3).map(HostValue::I).collect());
        let (out, report) = blaze.wrap(small).map(&call).unwrap();
        assert_eq!(report.path, ExecutionPath::JvmFallback);
        assert_eq!(out.collect()[2], HostValue::I(4));
        // 10 records ≥ threshold → accelerator
        let big = Rdd::from_values((0..10).map(HostValue::I).collect());
        let (out, report) = blaze.wrap(big).map(&call).unwrap();
        assert_eq!(report.path, ExecutionPath::Offloaded);
        assert_eq!(out.collect()[9], HostValue::I(18));
    }

    #[test]
    fn unmodelled_offload_is_distinguishable_from_zero_ms() {
        // identity_accel carries no time model: the offloaded report must
        // say "no model" (None), not claim a 0 ms execution.
        let registry = AcceleratorRegistry::new();
        registry.register(identity_accel("dbl"));
        let blaze = BlazeContext::new(&registry);
        let call = AccCall {
            id: "dbl".into(),
            spec: double_spec(),
        };
        let rdd = Rdd::from_values((0..4).map(HostValue::I).collect());
        let (_, report) = blaze.wrap(rdd).map(&call).unwrap();
        assert_eq!(report.path, ExecutionPath::Offloaded);
        assert_eq!(report.time_ms, None);
        assert_eq!(report.time_ms_or_zero(), 0.0);
    }

    #[test]
    fn operator_mismatch_is_reported() {
        let registry = AcceleratorRegistry::new();
        registry.register(identity_accel("dbl"));
        let blaze = BlazeContext::new(&registry);
        let mut spec = double_spec();
        spec.operator = RddOp::Reduce;
        // a reduce call against a map accelerator
        let call = AccCall {
            id: "dbl".into(),
            spec,
        };
        let rdd = Rdd::from_values((0..4).map(HostValue::I).collect());
        let err = blaze.wrap(rdd).reduce(&call).unwrap_err();
        assert!(matches!(err, BlazeError::Accel(_)), "{err}");
    }
}
