//! End-to-end tests of the Blaze serving runtime: functional
//! correctness on both paths, admission/queue bounds, batch forming,
//! and the determinism contract (outcomes bit-identical across OS
//! execution-thread counts; simulated `nodes` is a modeling knob).

use s2fa_blaze::serving::{Disposition, RejectReason};
use s2fa_blaze::{
    AccelTimeModel, Accelerator, AcceleratorRegistry, DataLayout, ExecutionPath, ServeOutcome,
    ServingConfig, ServingRuntime, TenantSpec,
};
use s2fa_hlsir::{ast, CBinOp, CNumKind};
use s2fa_obs::Profiler;
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, JType, KernelSpec, MethodTable, RddOp, Shape};
use s2fa_trace::{Event, NullSink, RingSink};

/// Hand-built map kernel: out_1[i] = in_1[i] * 2, with a time model.
fn doubler(id: &str) -> Accelerator {
    let kernel = ast::CFunction {
        name: "dbl".into(),
        params: vec![
            ast::Param {
                name: "n".into(),
                ty: ast::CType::Int(32),
                kind: ast::ParamKind::ScalarIn,
                elems_per_task: None,
                broadcast: false,
            },
            ast::Param {
                name: "in_1".into(),
                ty: ast::CType::Float,
                kind: ast::ParamKind::BufIn,
                elems_per_task: Some(1),
                broadcast: false,
            },
            ast::Param {
                name: "out_1".into(),
                ty: ast::CType::Float,
                kind: ast::ParamKind::BufOut,
                elems_per_task: Some(1),
                broadcast: false,
            },
        ],
        body: vec![ast::Stmt::For {
            id: ast::LoopId(0),
            var: "i".into(),
            bound: ast::Expr::var("n"),
            trip_count: None,
            attrs: Default::default(),
            body: vec![ast::Stmt::Assign {
                lhs: ast::LValue::Index("out_1".into(), Box::new(ast::Expr::var("i"))),
                rhs: ast::Expr::bin(
                    CBinOp::Mul,
                    CNumKind::F64,
                    ast::Expr::index("in_1", ast::Expr::var("i")),
                    ast::Expr::ConstF(2.0),
                ),
            }],
        }],
    };
    let shape = Shape::Scalar(JType::Double);
    Accelerator {
        id: id.into(),
        kernel,
        operator: RddOp::Map,
        input_layout: DataLayout::from_shape(&shape, "in"),
        output_layout: DataLayout::from_shape(&shape, "out"),
        time_model: Some(AccelTimeModel {
            per_task_ms: 0.01,
            setup_ms: 0.2,
        }),
    }
}

/// Hand-built reduce kernel: out_1[0] = sum(in_1[0..n]).
fn summer(id: &str) -> Accelerator {
    let kernel = ast::CFunction {
        name: "sum".into(),
        params: vec![
            ast::Param {
                name: "n".into(),
                ty: ast::CType::Int(32),
                kind: ast::ParamKind::ScalarIn,
                elems_per_task: None,
                broadcast: false,
            },
            ast::Param {
                name: "in_1".into(),
                ty: ast::CType::Float,
                kind: ast::ParamKind::BufIn,
                elems_per_task: Some(1),
                broadcast: false,
            },
            ast::Param {
                name: "out_1".into(),
                ty: ast::CType::Float,
                kind: ast::ParamKind::BufOut,
                elems_per_task: Some(1),
                broadcast: false,
            },
        ],
        body: vec![ast::Stmt::For {
            id: ast::LoopId(0),
            var: "i".into(),
            bound: ast::Expr::var("n"),
            trip_count: None,
            attrs: Default::default(),
            body: vec![ast::Stmt::Assign {
                lhs: ast::LValue::Index("out_1".into(), Box::new(ast::Expr::ConstI(0))),
                rhs: ast::Expr::bin(
                    CBinOp::Add,
                    CNumKind::F64,
                    ast::Expr::index("out_1", ast::Expr::ConstI(0)),
                    ast::Expr::index("in_1", ast::Expr::var("i")),
                ),
            }],
        }],
    };
    let shape = Shape::Scalar(JType::Double);
    Accelerator {
        id: id.into(),
        kernel,
        operator: RddOp::Reduce,
        input_layout: DataLayout::from_shape(&shape, "in"),
        output_layout: DataLayout::from_shape(&shape, "out"),
        time_model: Some(AccelTimeModel {
            per_task_ms: 0.02,
            setup_ms: 0.3,
        }),
    }
}

/// x -> x * 2 lambda (the doubler's fallback).
fn double_spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("x", JType::Double)], Some(JType::Double));
    let x = b.param(0);
    b.ret(Expr::local(x).add(Expr::local(x)));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    KernelSpec {
        name: "dbl".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Scalar(JType::Double),
        output_shape: Shape::Scalar(JType::Double),
    }
}

/// (a, b) -> a + b reduce lambda (the summer's fallback).
fn sum_spec() -> KernelSpec {
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new(
        "call",
        &[("a", JType::Double), ("b", JType::Double)],
        Some(JType::Double),
    );
    let a = b.param(0);
    let x = b.param(1);
    b.ret(Expr::local(a).add(Expr::local(x)));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    KernelSpec {
        name: "sum".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Reduce,
        input_shape: Shape::Scalar(JType::Double),
        output_shape: Shape::Scalar(JType::Double),
    }
}

fn floats(n: usize, seed: u64) -> Vec<HostValue> {
    (0..n)
        .map(|i| HostValue::F(((seed % 97) as f64) + i as f64))
        .collect()
}

fn tenant(name: &str, accel: &str, spec: KernelSpec, rate: f64, requests: usize) -> TenantSpec {
    TenantSpec {
        name: name.into(),
        accel_id: accel.into(),
        fallback: spec,
        rate_per_ms: rate,
        requests,
        records_per_request: 4,
        gen_input: floats,
        seed: 0xBEEF ^ name.len() as u64,
    }
}

fn serve(
    registry: &AcceleratorRegistry,
    config: ServingConfig,
    tenants: &[TenantSpec],
) -> ServeOutcome {
    ServingRuntime::new(registry, config)
        .unwrap()
        .serve(tenants, &NullSink, &Profiler::disabled())
        .unwrap()
}

#[test]
fn serves_a_map_tenant_functionally() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let out = serve(
        &registry,
        ServingConfig::default(),
        &[tenant("t0", "dbl", double_spec(), 1.0, 25)],
    );
    assert_eq!(out.outcomes.len(), 25);
    assert_eq!(out.stats.submitted, 25);
    assert_eq!(out.stats.completed(), 25);
    assert_eq!(out.stats.fallback_fraction(), 0.0);
    assert!(out.stats.batches >= 1);
    for o in &out.outcomes {
        match &o.disposition {
            Disposition::Completed {
                output,
                path,
                latency_ms,
                ..
            } => {
                assert_eq!(*path, ExecutionPath::Offloaded);
                assert!(*latency_ms > 0.0, "latency {latency_ms}");
                assert_eq!(output.len(), 4);
                for v in output {
                    let f = match v {
                        HostValue::F(f) => *f,
                        other => panic!("unexpected output {other:?}"),
                    };
                    assert_eq!(f % 2.0, 0.0, "doubled integer inputs stay even: {f}");
                }
            }
            other => panic!("request {} not completed: {other:?}", o.request),
        }
    }
}

#[test]
fn doubled_outputs_match_their_request_inputs() {
    // One request per batch (max_batch = 1) keeps the mapping trivial to
    // check end to end.
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let cfg = ServingConfig {
        max_batch: 1,
        ..Default::default()
    };
    let mix = [tenant("t0", "dbl", double_spec(), 0.2, 10)];
    let requests = s2fa_blaze::serving::generate(&mix);
    let out = serve(&registry, cfg, &mix);
    for (req, o) in requests.iter().zip(&out.outcomes) {
        let Disposition::Completed { output, .. } = &o.disposition else {
            panic!("request {} not completed", o.request);
        };
        let expect: Vec<HostValue> = req
            .records
            .iter()
            .map(|v| HostValue::F(v.as_f64().unwrap() * 2.0))
            .collect();
        assert_eq!(output, &expect);
    }
}

#[test]
fn unregistered_ids_take_the_jvm_fallback() {
    let registry = AcceleratorRegistry::new(); // nothing registered
    let out = serve(
        &registry,
        ServingConfig::default(),
        &[tenant("t0", "missing", double_spec(), 0.5, 15)],
    );
    assert_eq!(out.stats.completed(), 15);
    assert_eq!(out.stats.completed_fallback, 15);
    assert_eq!(out.stats.fallback_fraction(), 1.0);
    assert_eq!(out.stats.batches, 0, "fallback requests never batch");
    for o in &out.outcomes {
        assert_eq!(o.path(), Some(ExecutionPath::JvmFallback));
        let Disposition::Completed { output, .. } = &o.disposition else {
            unreachable!()
        };
        assert_eq!(output.len(), 4);
    }
}

#[test]
fn mixed_mix_reports_a_partial_fallback_fraction() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let out = serve(
        &registry,
        ServingConfig::default(),
        &[
            tenant("reg", "dbl", double_spec(), 0.5, 20),
            tenant("unreg", "missing", double_spec(), 0.5, 20),
        ],
    );
    assert_eq!(out.stats.completed(), 40);
    assert!((out.stats.fallback_fraction() - 0.5).abs() < 1e-12);
    assert_eq!(out.completed_on(ExecutionPath::Offloaded), 20);
    assert_eq!(out.completed_on(ExecutionPath::JvmFallback), 20);
}

#[test]
fn admission_control_bounds_per_tenant_inflight() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    // One inflight slot, slow service, fast arrivals: most submissions
    // must bounce off admission control.
    let cfg = ServingConfig {
        max_inflight: 1,
        max_batch: 1,
        ..Default::default()
    };
    let out = serve(
        &registry,
        cfg,
        &[tenant("t0", "dbl", double_spec(), 50.0, 40)],
    );
    assert!(out.stats.rejected > 0, "expected inflight rejections");
    assert_eq!(
        out.stats.completed() + out.stats.rejected,
        out.stats.submitted
    );
    let reasons: Vec<_> = out
        .outcomes
        .iter()
        .filter_map(|o| match &o.disposition {
            Disposition::Rejected { reason, .. } => Some(*reason),
            _ => None,
        })
        .collect();
    assert!(!reasons.is_empty());
    assert!(reasons.iter().all(|r| *r == RejectReason::InflightLimit));
}

#[test]
fn full_queues_reject() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    // Queue of 2, batches close only on deadline (max_batch larger than
    // the queue), arrivals much faster than the wait budget: overflow.
    let cfg = ServingConfig {
        max_batch: 16,
        queue_capacity: 2,
        max_inflight: 1000,
        max_wait_ms: 5.0,
        ..Default::default()
    };
    let out = serve(
        &registry,
        cfg,
        &[tenant("t0", "dbl", double_spec(), 20.0, 60)],
    );
    let queue_full = out
        .outcomes
        .iter()
        .filter(|o| {
            matches!(
                o.disposition,
                Disposition::Rejected {
                    reason: RejectReason::QueueFull,
                    ..
                }
            )
        })
        .count();
    assert!(queue_full > 0, "expected queue_full rejections");
    assert_eq!(
        out.stats.completed() + out.stats.rejected,
        out.stats.submitted
    );
}

#[test]
fn batches_respect_max_batch_and_close_causes() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let sink = RingSink::new(100_000);
    let cfg = ServingConfig {
        max_batch: 4,
        max_inflight: 1000,
        queue_capacity: 1000,
        ..Default::default()
    };
    let rt = ServingRuntime::new(&registry, cfg).unwrap();
    let out = rt
        .serve(
            &[tenant("t0", "dbl", double_spec(), 10.0, 80)],
            &sink,
            &Profiler::disabled(),
        )
        .unwrap();
    assert_eq!(out.stats.completed(), 80);
    let formed = sink.events_where(|e| matches!(e, Event::BatchFormed { .. }));
    assert_eq!(formed.len() as u64, out.stats.batches);
    let mut saw_full = false;
    for e in &formed {
        let Event::BatchFormed { size, cause, .. } = e else {
            unreachable!()
        };
        assert!(*size >= 1 && *size <= 4, "batch size {size}");
        assert!(cause == "full" || cause == "deadline", "cause {cause}");
        saw_full |= cause == "full";
    }
    assert!(saw_full, "high arrival rate should close batches on size");
    assert!(out.stats.batch_sizes.keys().all(|s| *s <= 4));
    // the trace tells one coherent story: every completed request has a
    // submit and a reply
    let submits = sink.events_where(|e| matches!(e, Event::Submit { .. }));
    let replies = sink.events_where(|e| matches!(e, Event::Reply { .. }));
    assert_eq!(submits.len(), 80);
    assert_eq!(replies.len() as u64, out.stats.completed());
}

#[test]
fn reduce_tenants_reduce_per_request_not_per_batch() {
    let registry = AcceleratorRegistry::new();
    registry.register(summer("sum"));
    // High rate so multiple requests coalesce into one batch — each must
    // still reduce over only its own records.
    let cfg = ServingConfig {
        max_batch: 8,
        max_inflight: 1000,
        queue_capacity: 1000,
        ..Default::default()
    };
    let mix = [tenant("t0", "sum", sum_spec(), 10.0, 20)];
    let requests = s2fa_blaze::serving::generate(&mix);
    let out = serve(&registry, cfg, &mix);
    assert!(
        out.stats.batch_sizes.keys().any(|s| *s > 1),
        "expected coalesced batches, got {:?}",
        out.stats.batch_sizes
    );
    for (req, o) in requests.iter().zip(&out.outcomes) {
        let Disposition::Completed { output, .. } = &o.disposition else {
            panic!("request {} not completed", o.request);
        };
        let expect: f64 = req.records.iter().map(|v| v.as_f64().unwrap()).sum();
        assert_eq!(output, &vec![HostValue::F(expect)]);
    }
}

#[test]
fn outcomes_are_bit_identical_across_exec_thread_counts() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    registry.register(summer("sum"));
    let mix = [
        tenant("maps", "dbl", double_spec(), 2.0, 60),
        tenant("reduces", "sum", sum_spec(), 1.0, 40),
        tenant("fallbacks", "missing", double_spec(), 0.5, 30),
    ];
    let mut runs = Vec::new();
    for exec_threads in [1usize, 3, 8] {
        let cfg = ServingConfig {
            exec_threads,
            ..Default::default()
        };
        let sink = RingSink::new(100_000);
        let out = ServingRuntime::new(&registry, cfg)
            .unwrap()
            .serve(&mix, &sink, &Profiler::disabled())
            .unwrap();
        runs.push((out, sink.events()));
    }
    let (base_out, base_events) = &runs[0];
    assert!(base_out.stats.completed() > 0);
    for (out, events) in &runs[1..] {
        // replies, outputs, latencies, aggregates: all bit-identical
        assert_eq!(out, base_out);
        // and the full trace event stream, in order
        assert_eq!(events, base_events);
    }
}

#[test]
fn nodes_is_a_modeling_knob_more_nodes_less_queueing() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let mix = [tenant("t0", "dbl", double_spec(), 20.0, 100)];
    let mean = |nodes: usize| {
        let cfg = ServingConfig {
            nodes,
            max_inflight: 1000,
            queue_capacity: 1000,
            ..Default::default()
        };
        let out = serve(&registry, cfg, &mix);
        assert_eq!(out.stats.completed(), 100);
        let lat = out.latencies_ms();
        (lat.iter().sum::<f64>() / lat.len() as f64, out)
    };
    let (mean_1, out_1) = mean(1);
    let (mean_4, out_4) = mean(4);
    assert!(
        mean_4 <= mean_1,
        "4 nodes should not be slower: {mean_4} vs {mean_1}"
    );
    // functional results are independent of the cluster size
    let outputs = |o: &ServeOutcome| {
        o.outcomes
            .iter()
            .filter_map(|r| match &r.disposition {
                Disposition::Completed { output, .. } => Some(output.clone()),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(outputs(&out_1), outputs(&out_4));
}

#[test]
fn operator_mismatch_is_rejected_up_front() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl")); // a Map design
    let rt = ServingRuntime::new(&registry, ServingConfig::default()).unwrap();
    // ... against a Reduce lambda
    let err = rt
        .serve(
            &[tenant("t0", "dbl", sum_spec(), 1.0, 5)],
            &NullSink,
            &Profiler::disabled(),
        )
        .unwrap_err();
    assert!(err.to_string().contains("implements"), "{err}");
}

#[test]
fn profiler_spans_cover_the_serving_phases() {
    let registry = AcceleratorRegistry::new();
    registry.register(doubler("dbl"));
    let profiler = Profiler::enabled();
    ServingRuntime::new(&registry, ServingConfig::default())
        .unwrap()
        .serve(
            &[tenant("t0", "dbl", double_spec(), 2.0, 20)],
            &NullSink,
            &profiler,
        )
        .unwrap();
    let spans = profiler.take_spans();
    s2fa_obs::verify_spans(&spans).unwrap();
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for phase in ["serve", "loadgen", "simulate", "execute_batches"] {
        assert!(names.contains(&phase), "missing span `{phase}`: {names:?}");
    }
}
