//! Property tests: the generated (de)serializers round-trip arbitrary
//! records of arbitrary shapes.

use proptest::prelude::*;
use s2fa_blaze::DataLayout;
use s2fa_sjvm::{HostValue, JType, Shape};

/// Random (shape, matching value) pairs.
fn shape_and_value() -> impl Strategy<Value = (Shape, HostValue)> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|v| (Shape::Scalar(JType::Int), HostValue::I(v as i64))),
        any::<f32>()
            .prop_filter("finite", |v| v.is_finite())
            .prop_map(|v| { (Shape::Scalar(JType::Double), HostValue::F(v as f64)) }),
        (1u32..6, prop::collection::vec(any::<i16>(), 0..6)).prop_map(|(n, vs)| {
            let n = n.max(vs.len() as u32);
            (
                Shape::Array(JType::Int, n),
                HostValue::Arr(vs.into_iter().map(|v| HostValue::I(v as i64)).collect()),
            )
        }),
        "[a-z]{0,6}".prop_map(|s| { (Shape::Array(JType::Char, 8), HostValue::Str(s)) }),
    ];
    leaf.prop_recursive(2, 12, 4, |inner| {
        prop::collection::vec(inner, 1..4).prop_map(|fields| {
            let (shapes, values): (Vec<Shape>, Vec<HostValue>) = fields.into_iter().unzip();
            (Shape::Composite(shapes), HostValue::Tuple(values))
        })
    })
}

/// The canonical value the serializer round-trips to: arrays padded to the
/// slot length, strings preserved (Char slots), tuples normalized.
fn canonical(v: &HostValue, s: &Shape) -> HostValue {
    match (v, s) {
        (HostValue::I(x), Shape::Scalar(t)) if t.is_float() => HostValue::F(*x as f64),
        (v, Shape::Scalar(_)) => v.clone(),
        (HostValue::Str(st), Shape::Array(JType::Char, _)) => HostValue::Str(st.clone()),
        (HostValue::Arr(items), Shape::Array(t, n)) => {
            let mut out: Vec<HostValue> = items
                .iter()
                .map(|it| match (it, t.is_float()) {
                    (HostValue::I(x), true) => HostValue::F(*x as f64),
                    (other, _) => other.clone(),
                })
                .collect();
            let zero = if t.is_float() {
                HostValue::F(0.0)
            } else {
                HostValue::I(0)
            };
            out.resize(*n as usize, zero);
            HostValue::Arr(out)
        }
        (HostValue::Tuple(vs), Shape::Composite(fs)) => {
            HostValue::Tuple(vs.iter().zip(fs).map(|(v, f)| canonical(v, f)).collect())
        }
        (v, Shape::Bcast(inner)) => canonical(v, inner),
        (v, _) => v.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_roundtrips((shape, value) in shape_and_value(), copies in 1usize..5) {
        let layout = DataLayout::from_shape(&shape, "in");
        let records = vec![value.clone(); copies];
        let buffers = layout.serialize(&records).expect("serializes");
        let back = layout.deserialize(&buffers, copies).expect("deserializes");
        let want = canonical(&value, &shape);
        for b in back {
            prop_assert_eq!(&b, &want);
        }
    }

    #[test]
    fn buffer_sizes_match_layout((shape, value) in shape_and_value(), copies in 1usize..5) {
        let layout = DataLayout::from_shape(&shape, "in");
        let records = vec![value; copies];
        let buffers = layout.serialize(&records).expect("serializes");
        for slot in &layout.slots {
            let expected = if slot.leaf.broadcast { 1 } else { copies };
            prop_assert_eq!(
                buffers[&slot.buffer].len(),
                expected * slot.leaf.count as usize
            );
        }
        // per-task byte accounting is consistent with the slot table
        let total: u64 = layout
            .slots
            .iter()
            .filter(|s| !s.leaf.broadcast)
            .map(|s| (s.leaf.elem.bits() as u64 / 8).max(1) * s.leaf.count as u64)
            .sum();
        prop_assert_eq!(layout.bytes_per_task(), total);
    }

    #[test]
    fn broadcast_wrapping_ships_once((shape, value) in shape_and_value(), copies in 2usize..5) {
        let bshape = Shape::broadcast(shape.clone());
        let layout = DataLayout::from_shape(&bshape, "in");
        let records = vec![value; copies];
        let buffers = layout.serialize(&records).expect("serializes");
        for slot in &layout.slots {
            prop_assert!(slot.leaf.broadcast);
            prop_assert_eq!(buffers[&slot.buffer].len(), slot.leaf.count as usize);
        }
        prop_assert_eq!(layout.bytes_per_task(), 0);
        prop_assert!(layout.broadcast_bytes() > 0);
    }
}
