#![warn(missing_docs)]

//! # s2fa-engine — the evaluation engine
//!
//! The layer between the DSE/tuning loops and the HLS estimator. Every
//! search component in the stack — the decision-tree partitioner's probe
//! pass, the per-partition seed evaluation, and the OpenTuner-substitute
//! loops themselves — asks the same question ("what does this design point
//! cost?") about overlapping sets of design points: partitions share
//! boundary regions, seeds repeat across partitions, and normalization
//! collapses many raw configurations onto one canonical point.
//!
//! [`EvalEngine`] answers that question once per *canonical* design point:
//!
//! * configurations are normalized first, so two raw points that the
//!   Merlin rewrite maps to the same legal design share one cache entry;
//! * a 128-bit FNV fingerprint of the normalized configuration keys a
//!   sharded, lock-striped memo table ([`EstimateCache`]) that is safe to
//!   share across worker threads;
//! * per-kernel invariants ([`s2fa_hlssim::KernelInvariants`]) are built
//!   once, so cache *misses* also skip the estimator's repeated subtree
//!   walks.
//!
//! Caching changes wall-clock time only. The virtual HLS cost
//! (`Estimate::hls_minutes`) is stored with the estimate and re-charged on
//! every hit, so DSE outcomes are identical with the cache on or off — a
//! property the test suites of this crate and `s2fa-dse` pin down.
//!
//! Ahead of the cache sits an optional `s2fa-lint` legality pre-screen
//! ([`EvalEngine::set_prescreen`]): points the static screen proves
//! infeasible return the same `+inf` objective a full evaluation would,
//! but charge zero virtual minutes and never reach the estimator. Because
//! the screen is exact, enabling it changes the virtual *clock*, not the
//! search values.

pub mod cache;
pub mod fingerprint;
pub mod pool;

pub use cache::{CacheStats, EstimateCache, SubtreeCache, SubtreeStats};
pub use fingerprint::fingerprint;
pub use pool::{JobHandle, PoolStats, WorkerPool};

use parking_lot::Mutex;
use s2fa_hlsir::KernelSummary;
use s2fa_hlssim::{Estimate, Estimator, KernelInvariants};
use s2fa_lint::{Legality, PruneRule};
use s2fa_merlin::DesignConfig;
use s2fa_obs::Profiler;
use s2fa_trace::{Event, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A memoizing, invariant-hoisting front-end to the HLS estimator for one
/// kernel.
///
/// Shareable across threads by reference (`&EvalEngine` is `Send + Sync`);
/// all methods take `&self`.
#[derive(Debug)]
pub struct EvalEngine {
    summary: KernelSummary,
    estimator: Estimator,
    invariants: KernelInvariants,
    cache: EstimateCache,
    subtrees: SubtreeCache,
    caching: bool,
    incremental: bool,
    prescreen: Option<Legality>,
    pruned_by_rule: [AtomicU64; PruneRule::ALL.len()],
    sink: Option<Arc<dyn TraceSink>>,
    /// Cache counters as of the last [`flush_cache_stats`]
    /// (`hits, misses, overwrites`), so each flush emits a delta.
    ///
    /// [`flush_cache_stats`]: EvalEngine::flush_cache_stats
    flushed: Mutex<(u64, u64, u64)>,
}

impl EvalEngine {
    /// An engine for `summary` under `estimator`, with caching enabled.
    pub fn new(summary: &KernelSummary, estimator: &Estimator) -> Self {
        EvalEngine {
            invariants: estimator.invariants(summary),
            summary: summary.clone(),
            estimator: estimator.clone(),
            cache: EstimateCache::default(),
            subtrees: SubtreeCache::default(),
            caching: true,
            incremental: true,
            prescreen: None,
            pruned_by_rule: Default::default(),
            sink: None,
            flushed: Mutex::new((0, 0, 0)),
        }
    }

    /// Attaches a structured-event sink; the engine reports memo-table
    /// activity through it as *batched* [`Event::CacheStats`] deltas
    /// (emitted by [`flush_cache_stats`](Self::flush_cache_stats), not
    /// per lookup — the eval hot path only bumps atomic counters).
    /// Cache events are host-side — they carry no virtual minute and
    /// never influence an estimate.
    pub fn set_sink(&mut self, sink: Option<Arc<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Attaches a profiler. With metrics enabled, memo-table probes
    /// feed the `cache_probe_ns` and `cache_lock_wait_ns` histograms;
    /// with the default disabled profiler this is a no-op and the probe
    /// path reads no clock.
    pub fn set_profiler(&mut self, profiler: &Profiler) {
        if let Some(metrics) = profiler.metrics() {
            self.cache.instrument(metrics);
        }
    }

    /// Emits the cache activity since the previous flush as one
    /// [`Event::CacheStats`] delta (nothing when no sink is attached or
    /// no activity happened). The DSE driver calls this at iteration
    /// boundaries — after the partition probe, after each partition's
    /// tuning run, and before `RunStop` — replacing the old per-lookup
    /// `cache_hit`/`cache_miss` unit events that dominated JSONL sink
    /// overhead on large batches.
    pub fn flush_cache_stats(&self) {
        let Some(sink) = &self.sink else { return };
        // Counters are read under the watermark lock: a snapshot taken
        // outside it could race a concurrent flusher that already advanced
        // the watermark past it, underflowing the delta.
        let mut last = self.flushed.lock();
        let s = self.cache.stats();
        let (hits, misses, overwrites) =
            (s.hits - last.0, s.misses - last.1, s.overwrites - last.2);
        if hits + misses + overwrites == 0 {
            return;
        }
        *last = (s.hits, s.misses, s.overwrites);
        drop(last);
        sink.emit(&Event::CacheStats {
            hits,
            misses,
            overwrites,
        });
    }

    /// Enables or disables memoization (estimates are identical either
    /// way; only wall-clock time changes).
    pub fn set_caching(&mut self, enabled: bool) {
        self.caching = enabled;
    }

    /// Whether memoization is enabled.
    pub fn caching(&self) -> bool {
        self.caching
    }

    /// Enables or disables incremental re-estimation (subtree-cost
    /// replay) on cache misses. Provably bit-identical to the full walk
    /// (the hlssim and dse determinism suites pin it down), so the
    /// default is on; it only takes effect while caching is enabled —
    /// with caching off every evaluation is a plain full walk.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.incremental = enabled;
    }

    /// Whether incremental re-estimation is enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Enables or disables the `s2fa-lint` legality pre-screen.
    ///
    /// When on, points the static screen proves infeasible skip the
    /// estimator and the memo table entirely: the engine returns a
    /// synthetic infeasible estimate whose objective (`+inf`) equals what
    /// the estimator would have reported, but with **zero** virtual HLS
    /// minutes charged. The screen is exact (it rejects iff the estimator
    /// reports infeasible — property-tested), so search *values* are
    /// unchanged; only the virtual clock and the estimator invocation
    /// counts shrink. Off by default.
    pub fn set_prescreen(&mut self, enabled: bool) {
        self.prescreen = enabled.then(|| Legality::new(&self.summary, &self.estimator));
    }

    /// Whether the legality pre-screen is enabled.
    pub fn prescreen(&self) -> bool {
        self.prescreen.is_some()
    }

    /// Per-rule pre-screen hit counts as `(lint code, hits)`, in stable
    /// rule order.
    pub fn prune_counts(&self) -> Vec<(String, u64)> {
        PruneRule::ALL
            .iter()
            .map(|r| {
                (
                    r.code().code.to_string(),
                    self.pruned_by_rule[r.index()].load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// The kernel this engine evaluates.
    pub fn summary(&self) -> &KernelSummary {
        &self.summary
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// Evaluates one design point, memoized on its canonical form.
    ///
    /// Equal to `self.estimator().evaluate(self.summary(), config)` in all
    /// cases — cache hits return the stored estimate including its virtual
    /// `hls_minutes` charge, and normalization is idempotent, so the
    /// canonical point evaluates to the same estimate as the raw one.
    pub fn evaluate(&self, config: &DesignConfig) -> Estimate {
        // Alias fast-path: a raw point seen before returns its stored
        // estimate without paying the clone + normalize + prescreen
        // prologue (the warm-cache path the tuner's repeat proposals
        // hammer). Pruned points never enter the alias tier, so the
        // prescreen stays authoritative for everything it ever rejected.
        let raw = if self.caching {
            let raw = fingerprint(config);
            if let Some(hit) = self.cache.get_alias(raw) {
                return hit;
            }
            Some(raw)
        } else {
            None
        };
        let mut cfg = config.clone();
        cfg.normalize(&self.summary);
        if let Some(oracle) = &self.prescreen {
            if let Some(hit) = oracle.prescreen(&cfg) {
                self.cache.count_pruned();
                self.pruned_by_rule[hit.rule.index()].fetch_add(1, Ordering::Relaxed);
                if let Some(sink) = &self.sink {
                    sink.emit(&Event::Prune {
                        rule: hit.rule.code().code.to_string(),
                    });
                }
                return oracle.pruned_estimate(&hit);
            }
        }
        if !self.caching {
            return self
                .estimator
                .evaluate_with(&self.summary, &self.invariants, &cfg);
        }
        let key = fingerprint(&cfg);
        let est = match self.cache.get(key) {
            Some(hit) => hit,
            None => {
                let est = if self.incremental {
                    self.estimator.evaluate_incremental(
                        &self.summary,
                        &self.invariants,
                        &cfg,
                        &self.subtrees,
                    )
                } else {
                    self.estimator
                        .evaluate_with(&self.summary, &self.invariants, &cfg)
                };
                self.cache.insert(key, est.clone());
                est
            }
        };
        if let Some(raw) = raw {
            self.cache.insert_alias(raw, est.clone());
        }
        est
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the subtree-cost store counters (all zero until an
    /// incremental evaluation runs).
    pub fn subtree_stats(&self) -> SubtreeStats {
        self.subtrees.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{
        Access, BufferDir, BufferInfo, CarriedDep, LoopId, LoopInfo, OpCounts, Stride,
    };

    fn summary() -> KernelSummary {
        let mut inner_ops = OpCounts::new();
        inner_ops.fadd = 1;
        inner_ops.fmul = 1;
        inner_ops.mem_read = 2;
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        let mut outer_ops = OpCounts::new();
        outer_ops.mem_write = 1;
        KernelSummary {
            name: "dot".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: outer_ops,
                    accesses: vec![Access {
                        buffer: "out_1".into(),
                        write: true,
                        stride: Stride::Unit,
                    }],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 64,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: inner_ops,
                    accesses: vec![
                        Access {
                            buffer: "in_1".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                        Access {
                            buffer: "w".into(),
                            write: false,
                            stride: Stride::Zero,
                        },
                    ],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "w".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "out_1".into(),
                    elem_bits: 32,
                    len: 1,
                    dir: BufferDir::Out,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn engine_matches_direct_evaluation() {
        let s = summary();
        let est = Estimator::new();
        let engine = EvalEngine::new(&s, &est);
        for cfg in [
            DesignConfig::area_seed(&s),
            DesignConfig::perf_seed(&s),
            DesignConfig::new(),
        ] {
            assert_eq!(engine.evaluate(&cfg), est.evaluate(&s, &cfg));
        }
    }

    #[test]
    fn repeat_evaluations_hit_the_cache() {
        let s = summary();
        let engine = EvalEngine::new(&s, &Estimator::new());
        let cfg = DesignConfig::perf_seed(&s);
        let a = engine.evaluate(&cfg);
        let b = engine.evaluate(&cfg);
        assert_eq!(a, b);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.entries, 1);
        // hls_minutes is re-charged on hits (virtual cost unchanged)
        assert_eq!(a.hls_minutes, b.hls_minutes);
    }

    #[test]
    fn normalization_collapses_equivalent_points() {
        let s = summary();
        let engine = EvalEngine::new(&s, &Estimator::new());
        // parallel factor beyond the trip count clamps to the same
        // canonical point as the exact factor.
        let mut a = DesignConfig::area_seed(&s);
        a.loop_directive_mut(LoopId(1)).parallel = 9999;
        let mut b = DesignConfig::area_seed(&s);
        b.loop_directive_mut(LoopId(1)).parallel = 64;
        engine.evaluate(&a);
        engine.evaluate(&b);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 1, "clamped config should share the entry");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn disabled_cache_still_matches() {
        let s = summary();
        let est = Estimator::new();
        let mut engine = EvalEngine::new(&s, &est);
        engine.set_caching(false);
        let cfg = DesignConfig::perf_seed(&s);
        assert_eq!(engine.evaluate(&cfg), est.evaluate(&s, &cfg));
        assert_eq!(engine.cache_stats().entries, 0);
        assert_eq!(engine.cache_stats().misses, 0);
    }

    #[test]
    fn prescreen_skips_the_estimator_but_keeps_the_objective() {
        let s = summary();
        let est = Estimator::new();
        let mut engine = EvalEngine::new(&s, &est);
        engine.set_prescreen(true);
        assert!(engine.prescreen());
        // an unroutable/over-cap point
        let mut dead = DesignConfig::perf_seed(&s);
        dead.loop_directive_mut(LoopId(0)).parallel = 512;
        dead.loop_directive_mut(LoopId(1)).parallel = 64;
        let direct = est.evaluate(&s, &dead);
        assert!(!direct.is_feasible(), "fixture must be infeasible");
        let pruned = engine.evaluate(&dead);
        assert!(!pruned.is_feasible());
        assert_eq!(pruned.objective(), direct.objective());
        assert_eq!(pruned.hls_minutes, 0.0, "static pruning is free");
        let stats = engine.cache_stats();
        assert_eq!(stats.pruned_illegal, 1);
        assert_eq!(
            (stats.hits, stats.misses, stats.entries),
            (0, 0, 0),
            "pruned points must never touch the memo table"
        );
        let by_rule: u64 = engine.prune_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(by_rule, 1);

        // feasible points pass through to the estimator untouched
        let ok = DesignConfig::area_seed(&s);
        assert_eq!(engine.evaluate(&ok), est.evaluate(&s, &ok));
        assert_eq!(engine.cache_stats().misses, 1);
    }

    #[test]
    fn prescreen_counts_even_with_caching_off() {
        let s = summary();
        let mut engine = EvalEngine::new(&s, &Estimator::new());
        engine.set_caching(false);
        engine.set_prescreen(true);
        let mut dead = DesignConfig::perf_seed(&s);
        dead.loop_directive_mut(LoopId(0)).parallel = 512;
        dead.loop_directive_mut(LoopId(1)).parallel = 64;
        engine.evaluate(&dead);
        assert_eq!(engine.cache_stats().pruned_illegal, 1);
    }

    #[test]
    fn prescreen_emits_prune_events() {
        use s2fa_trace::RingSink;
        let s = summary();
        let mut engine = EvalEngine::new(&s, &Estimator::new());
        engine.set_prescreen(true);
        let ring = Arc::new(RingSink::new(16));
        engine.set_sink(Some(ring.clone()));
        let mut dead = DesignConfig::perf_seed(&s);
        dead.loop_directive_mut(LoopId(0)).parallel = 512;
        dead.loop_directive_mut(LoopId(1)).parallel = 64;
        engine.evaluate(&dead);
        let events = ring.events();
        assert!(matches!(events.as_slice(), [Event::Prune { rule }] if rule.starts_with("S2FA-E")));
    }

    #[test]
    fn cache_activity_flushes_as_deltas_not_per_lookup() {
        use s2fa_trace::RingSink;
        let s = summary();
        let mut engine = EvalEngine::new(&s, &Estimator::new());
        let ring = Arc::new(RingSink::new(16));
        engine.set_sink(Some(ring.clone()));
        let cfg = DesignConfig::perf_seed(&s);
        engine.evaluate(&cfg); // miss
        engine.evaluate(&cfg); // hit
        assert_eq!(ring.emitted(), 0, "lookups emit nothing on the hot path");
        engine.flush_cache_stats();
        engine.flush_cache_stats(); // no new activity → no event
        engine.evaluate(&cfg); // hit
        engine.flush_cache_stats();
        let events = ring.events();
        assert_eq!(
            events,
            vec![
                Event::CacheStats {
                    hits: 1,
                    misses: 1,
                    overwrites: 0
                },
                Event::CacheStats {
                    hits: 1,
                    misses: 0,
                    overwrites: 0
                },
            ],
            "each flush is the delta since the previous one"
        );
    }

    /// Regression: a flusher that snapshots the counters outside the
    /// watermark lock can race a concurrent flusher that already advanced
    /// the watermark past its snapshot, underflowing the delta. Hammer the
    /// engine from many threads, each interleaving lookups and flushes.
    #[test]
    fn concurrent_flushes_never_underflow_and_sum_to_totals() {
        use s2fa_trace::RingSink;
        let s = summary();
        let mut engine = EvalEngine::new(&s, &Estimator::new());
        let ring = Arc::new(RingSink::new(1 << 16));
        engine.set_sink(Some(ring.clone()));
        let cfg = DesignConfig::perf_seed(&s);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let engine = &engine;
                let cfg = &cfg;
                scope.spawn(move || {
                    for _ in 0..50 {
                        engine.evaluate(cfg);
                        engine.flush_cache_stats();
                    }
                });
            }
        });
        engine.flush_cache_stats();
        let (mut hits, mut misses) = (0u64, 0u64);
        for e in ring.events() {
            if let Event::CacheStats {
                hits: h, misses: m, ..
            } = e
            {
                hits += h;
                misses += m;
            }
        }
        let totals = engine.cache_stats();
        assert_eq!(hits, totals.hits);
        assert_eq!(misses, totals.misses);
    }

    #[test]
    fn profiled_engine_times_cache_probes() {
        let s = summary();
        let mut engine = EvalEngine::new(&s, &Estimator::new());
        let profiler = s2fa_obs::Profiler::metrics_only();
        engine.set_profiler(&profiler);
        let cfg = DesignConfig::perf_seed(&s);
        engine.evaluate(&cfg);
        engine.evaluate(&cfg);
        let snap = profiler.metrics().unwrap().snapshot();
        assert_eq!(snap.histograms["cache_probe_ns"].count, 2);
        assert_eq!(snap.histograms["cache_lock_wait_ns"].count, 2);
    }

    #[test]
    fn incremental_and_plain_paths_agree_bitwise() {
        let s = summary();
        let est = Estimator::new();
        let mut plain = EvalEngine::new(&s, &est);
        plain.set_incremental(false);
        let inc = EvalEngine::new(&s, &est);
        assert!(inc.incremental(), "incremental defaults on");
        let mut cfgs = vec![DesignConfig::area_seed(&s), DesignConfig::perf_seed(&s)];
        for p in [2u32, 4, 8, 16] {
            let mut c = DesignConfig::area_seed(&s);
            c.loop_directive_mut(LoopId(1)).parallel = p;
            cfgs.push(c);
        }
        for cfg in &cfgs {
            assert_eq!(inc.evaluate(cfg), plain.evaluate(cfg));
        }
        assert!(
            inc.subtree_stats().entries > 0,
            "incremental runs record subtrees"
        );
        assert_eq!(plain.subtree_stats().entries, 0);
    }

    #[test]
    fn alias_fast_path_serves_raw_repeats() {
        let s = summary();
        let engine = EvalEngine::new(&s, &Estimator::new());
        let mut raw = DesignConfig::area_seed(&s);
        // Denormalized: clamps onto a canonical point under normalize.
        raw.loop_directive_mut(LoopId(1)).parallel = 9999;
        let a = engine.evaluate(&raw);
        let b = engine.evaluate(&raw); // alias hit: skips normalize entirely
        assert_eq!(a, b);
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn concurrent_evaluations_agree() {
        let s = summary();
        let est = Estimator::new();
        let engine = EvalEngine::new(&s, &est);
        let mut cfgs = Vec::new();
        for p in [1u32, 2, 4, 8] {
            let mut c = DesignConfig::area_seed(&s);
            c.loop_directive_mut(LoopId(1)).parallel = p;
            cfgs.push(c);
        }
        let results: Vec<Vec<Estimate>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let engine = &engine;
                    let cfgs = &cfgs;
                    scope.spawn(move || cfgs.iter().map(|c| engine.evaluate(c)).collect())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (i, cfg) in cfgs.iter().enumerate() {
            let expect = est.evaluate(&s, cfg);
            for r in &results {
                assert_eq!(r[i], expect);
            }
        }
        assert_eq!(engine.cache_stats().entries, 4);
    }
}
