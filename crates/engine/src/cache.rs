//! The concurrent estimate memo table.
//!
//! A fixed array of mutex-striped `HashMap` shards keyed by design-point
//! fingerprint. Reads and writes for different shards never contend, and
//! the striping count (16) comfortably exceeds the worker parallelism of
//! the DSE driver. Counters are lock-free atomics, so hot-path hits cost
//! one shard lock plus one relaxed increment.

use parking_lot::Mutex;
use s2fa_hlssim::{Estimate, SubtreeCost, SubtreeKey, SubtreeStore};
use s2fa_obs::{Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 16;

/// Pass-through hasher for maps keyed by (or containing) fingerprint
/// digests: the key already carries a well-mixed 128-bit digest, so
/// re-hashing it through SipHash on every probe is pure overhead on the
/// hot alias and subtree paths. XOR-folds whatever arrives and lets
/// `HashMap` take bits from that — sound because every keyed field is
/// either a digest or rides alongside one.
#[derive(Debug, Default)]
pub struct FpHasher(u64);

impl Hasher for FpHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are expected; fold whatever
        // arrives word-wise so the type still works as a generic Hasher.
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.0 ^= u64::from_le_bytes(w);
        }
    }

    fn write_u128(&mut self, v: u128) {
        self.0 ^= (v as u64) ^ ((v >> 64) as u64);
    }

    fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
    }
}

type FpMap<V> = HashMap<u128, V, BuildHasherDefault<FpHasher>>;
type SubtreeMap = HashMap<SubtreeKey, Arc<SubtreeCost>, BuildHasherDefault<FpHasher>>;

/// One stripe of the memo table plus its own hit/miss tallies. Folding
/// the counters into the shard keeps the hot probe at one lock round
/// trip — a separate atomic increment costs a second locked RMW per
/// evaluation, which is measurable on the warm alias path.
#[derive(Debug, Default)]
struct Shard {
    map: FpMap<Estimate>,
    hits: u64,
    misses: u64,
}

/// Resolved histogram handles for probe latency and shard-lock wait
/// (see [`EstimateCache::instrument`]).
#[derive(Debug)]
struct CacheInstr {
    probe_ns: Arc<Histogram>,
    lock_wait_ns: Arc<Histogram>,
}

/// Monotonic counters of cache activity (see [`EstimateCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// First-writes: insertions that created a new entry. Counted via the
    /// entry API, so `inserts == entries` holds even under racing workers
    /// (an invariant the tests pin down).
    pub inserts: u64,
    /// Insertions that replaced an existing entry — benign races where
    /// two workers priced the same canonical point concurrently.
    pub overwrites: u64,
    /// Distinct entries currently stored.
    pub entries: u64,
    /// Design points the `s2fa-lint` legality pre-screen rejected before
    /// the estimator or the memo table was consulted. Counted even when
    /// caching is disabled — pruning is an engine property, and this
    /// snapshot is the engine's single activity record.
    pub pruned_illegal: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe `fingerprint → Estimate` memo table.
///
/// Two tiers share the counters: the **canonical** table (keyed by the
/// fingerprint of the *normalized* configuration — the source of truth,
/// what `entries`/`inserts` count) and an **alias** table keyed by the
/// fingerprint of the *raw* configuration. A raw point that was evaluated
/// before short-circuits on the alias probe without paying the clone +
/// normalize + prescreen prologue; an alias miss costs one extra lookup
/// and is not counted (the canonical probe that follows counts it).
#[derive(Debug, Default)]
pub struct EstimateCache {
    shards: [Mutex<Shard>; SHARDS],
    alias: [Mutex<Shard>; SHARDS],
    inserts: AtomicU64,
    overwrites: AtomicU64,
    pruned: AtomicU64,
    instr: Option<CacheInstr>,
}

impl EstimateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    // Fold the fingerprint; FNV output is well-mixed in the low bits.
    fn shard_idx(key: u128) -> usize {
        ((key as u64) ^ ((key >> 64) as u64)) as usize % SHARDS
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[Self::shard_idx(key)]
    }

    /// Attaches latency instrumentation: every subsequent probe feeds
    /// the `cache_probe_ns` (full lookup) and `cache_lock_wait_ns`
    /// (shard-lock acquisition) histograms. Without it (the default)
    /// the probe path reads no clock at all.
    pub fn instrument(&mut self, metrics: &MetricsRegistry) {
        self.instr = Some(CacheInstr {
            probe_ns: metrics.histogram("cache_probe_ns"),
            lock_wait_ns: metrics.histogram("cache_lock_wait_ns"),
        });
    }

    /// Looks up an estimate, counting the hit or miss (tallied inside
    /// the already-held shard lock — no extra atomic on the hot path).
    pub fn get(&self, key: u128) -> Option<Estimate> {
        match &self.instr {
            None => {
                let mut guard = self.shard(key).lock();
                let found = guard.map.get(&key).cloned();
                match found {
                    Some(_) => guard.hits += 1,
                    None => guard.misses += 1,
                }
                found
            }
            Some(instr) => {
                let t0 = Instant::now();
                let mut guard = self.shard(key).lock();
                instr.lock_wait_ns.record(t0.elapsed().as_nanos() as u64);
                let found = guard.map.get(&key).cloned();
                match found {
                    Some(_) => guard.hits += 1,
                    None => guard.misses += 1,
                }
                drop(guard);
                instr.probe_ns.record(t0.elapsed().as_nanos() as u64);
                found
            }
        }
    }

    /// Stores an estimate; returns `true` if the key was new. Racing
    /// inserts of the same key are benign — all writers computed the same
    /// value from the same canonical point — but only the first writer is
    /// counted as an insert (the loser counts as an overwrite), so
    /// `inserts` can never exceed `entries` and derived numbers (e.g. the
    /// CLI's distinct-points line) don't drift under concurrency.
    pub fn insert(&self, key: u128, estimate: Estimate) -> bool {
        use std::collections::hash_map::Entry;
        let mut shard = self.shard(key).lock();
        match shard.map.entry(key) {
            Entry::Vacant(v) => {
                v.insert(estimate);
                drop(shard);
                self.inserts.fetch_add(1, Ordering::Relaxed);
                true
            }
            Entry::Occupied(mut o) => {
                o.insert(estimate);
                drop(shard);
                self.overwrites.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Probes the alias tier with a **raw** (pre-normalization)
    /// fingerprint. A hit counts as a cache hit and feeds the probe
    /// histograms exactly like a canonical hit; a miss counts nothing —
    /// the canonical probe that follows it owns the miss, so hit/miss
    /// totals still sum to one count per evaluation.
    pub fn get_alias(&self, raw: u128) -> Option<Estimate> {
        let shard = &self.alias[Self::shard_idx(raw)];
        match &self.instr {
            None => {
                let mut guard = shard.lock();
                let found = guard.map.get(&raw).cloned();
                if found.is_some() {
                    guard.hits += 1;
                }
                found
            }
            Some(instr) => {
                let t0 = Instant::now();
                let mut guard = shard.lock();
                let lock_ns = t0.elapsed().as_nanos() as u64;
                let found = guard.map.get(&raw).cloned();
                if found.is_some() {
                    guard.hits += 1;
                }
                drop(guard);
                if found.is_some() {
                    instr.lock_wait_ns.record(lock_ns);
                    instr.probe_ns.record(t0.elapsed().as_nanos() as u64);
                }
                found
            }
        }
    }

    /// Maps a raw fingerprint onto an already-priced estimate. Alias
    /// entries are a lookup accelerator, not part of the memo table
    /// proper: they bump no insert counter and do not appear in
    /// `entries`/`len`.
    pub fn insert_alias(&self, raw: u128, estimate: Estimate) {
        self.alias[Self::shard_idx(raw)]
            .lock()
            .map
            .insert(raw, estimate);
    }

    /// Counts one legality-pre-screen rejection. Pruned points never
    /// touch the table or the hit/miss counters.
    pub fn count_pruned(&self) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().map.is_empty())
    }

    /// Snapshot of the activity counters. Hit/miss tallies are summed
    /// over both tiers' shards (alias hits count as cache hits; alias
    /// misses were never tallied — the canonical probe that follows one
    /// owns the miss).
    pub fn stats(&self) -> CacheStats {
        let mut hits = 0;
        let mut misses = 0;
        for s in self.shards.iter().chain(self.alias.iter()) {
            let g = s.lock();
            hits += g.hits;
            misses += g.misses;
        }
        CacheStats {
            hits,
            misses,
            inserts: self.inserts.load(Ordering::Relaxed),
            overwrites: self.overwrites.load(Ordering::Relaxed),
            entries: self.len() as u64,
            pruned_illegal: self.pruned.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`SubtreeCache`] activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubtreeStats {
    /// Subtree lookups served from the cache (walks skipped).
    pub hits: u64,
    /// Subtree lookups that walked and recorded.
    pub misses: u64,
    /// Distinct subtree records stored.
    pub entries: u64,
}

/// A sharded, thread-safe store of recorded subtree walks — the engine's
/// [`SubtreeStore`] implementation backing incremental re-estimation.
///
/// Scoped to one `EvalEngine` (keys are kernel-relative). Racing `put`s
/// of one key are benign: every record is a pure function of its key, so
/// the first writer wins and later writers drop their copy.
#[derive(Debug, Default)]
pub struct SubtreeCache {
    shards: [Mutex<SubtreeMap>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SubtreeCache {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: &SubtreeKey) -> &Mutex<SubtreeMap> {
        let f = key.subfp;
        let idx = ((f as u64) ^ ((f >> 64) as u64) ^ (key.root.0 as u64) ^ key.repl_bits) as usize
            % SHARDS;
        &self.shards[idx]
    }

    /// Number of distinct subtree records stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> SubtreeStats {
        SubtreeStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }
}

impl SubtreeStore for SubtreeCache {
    fn get(&self, key: &SubtreeKey) -> Option<Arc<SubtreeCost>> {
        let found = self.shard(key).lock().get(key).cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn put(&self, key: SubtreeKey, cost: SubtreeCost) {
        self.shard(&key)
            .lock()
            .entry(key)
            .or_insert_with(|| Arc::new(cost));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlssim::{Feasibility, ResourceUsage};

    fn estimate(tag: u64) -> Estimate {
        Estimate {
            compute_cycles: tag,
            transfer_cycles: 0,
            total_cycles: tag,
            ii_critical: 1.0,
            freq_mhz: 250.0,
            time_ms: tag as f64,
            batch_tasks: 1,
            resources: ResourceUsage::new(),
            feasibility: Feasibility::Feasible,
            hls_minutes: 3.0,
        }
    }

    #[test]
    fn get_insert_and_counters() {
        let c = EstimateCache::new();
        assert!(c.get(7).is_none());
        assert!(c.insert(7, estimate(1)));
        assert_eq!(c.get(7).unwrap().compute_cycles, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert_eq!(s.overwrites, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn repeated_insert_counts_as_overwrite_not_insert() {
        let c = EstimateCache::new();
        assert!(c.insert(7, estimate(1)));
        assert!(!c.insert(7, estimate(1)));
        assert!(!c.insert(7, estimate(1)));
        let s = c.stats();
        assert_eq!(s.inserts, 1, "only the first write creates the entry");
        assert_eq!(s.overwrites, 2);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn inserts_equal_entries_even_under_racing_writers() {
        // 8 workers all blindly insert the same 32 keys: first-writes must
        // equal distinct entries, with every other write an overwrite —
        // the counter invariant that keeps derived stats honest.
        let c = EstimateCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..96u64 {
                        c.insert((i % 32) as u128, estimate(i % 32));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.entries, 32);
        assert_eq!(s.inserts, s.entries, "inserts drifted from entries");
        assert_eq!(s.inserts + s.overwrites, 8 * 96);
    }

    #[test]
    fn pruned_counter_is_independent_of_the_table() {
        let c = EstimateCache::new();
        c.count_pruned();
        c.count_pruned();
        let s = c.stats();
        assert_eq!(s.pruned_illegal, 2);
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn instrumented_probes_feed_histograms() {
        let registry = MetricsRegistry::new();
        let mut c = EstimateCache::new();
        c.instrument(&registry);
        c.insert(7, estimate(1));
        c.get(7);
        c.get(8);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["cache_probe_ns"].count, 2);
        assert_eq!(snap.histograms["cache_lock_wait_ns"].count, 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "counters unaffected");
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = EstimateCache::new();
        for k in 0..64u128 {
            c.insert(k, estimate(k as u64));
        }
        assert_eq!(c.len(), 64);
        let populated = c.shards.iter().filter(|s| !s.lock().map.is_empty()).count();
        assert!(populated > 1, "sequential keys should stripe");
    }

    #[test]
    fn concurrent_mixed_load() {
        let c = EstimateCache::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let key = (i % 32) as u128;
                        if c.get(key).is_none() {
                            c.insert(key, estimate(key as u64));
                        }
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(c.len(), 32);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
    }
}
