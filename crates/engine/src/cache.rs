//! The concurrent estimate memo table.
//!
//! A fixed array of mutex-striped `HashMap` shards keyed by design-point
//! fingerprint. Reads and writes for different shards never contend, and
//! the striping count (16) comfortably exceeds the worker parallelism of
//! the DSE driver. Counters are lock-free atomics, so hot-path hits cost
//! one shard lock plus one relaxed increment.

use parking_lot::Mutex;
use s2fa_hlssim::Estimate;
use s2fa_obs::{Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 16;

/// Resolved histogram handles for probe latency and shard-lock wait
/// (see [`EstimateCache::instrument`]).
#[derive(Debug)]
struct CacheInstr {
    probe_ns: Arc<Histogram>,
    lock_wait_ns: Arc<Histogram>,
}

/// Monotonic counters of cache activity (see [`EstimateCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// First-writes: insertions that created a new entry. Counted via the
    /// entry API, so `inserts == entries` holds even under racing workers
    /// (an invariant the tests pin down).
    pub inserts: u64,
    /// Insertions that replaced an existing entry — benign races where
    /// two workers priced the same canonical point concurrently.
    pub overwrites: u64,
    /// Distinct entries currently stored.
    pub entries: u64,
    /// Design points the `s2fa-lint` legality pre-screen rejected before
    /// the estimator or the memo table was consulted. Counted even when
    /// caching is disabled — pruning is an engine property, and this
    /// snapshot is the engine's single activity record.
    pub pruned_illegal: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, thread-safe `fingerprint → Estimate` memo table.
#[derive(Debug, Default)]
pub struct EstimateCache {
    shards: [Mutex<HashMap<u128, Estimate>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    overwrites: AtomicU64,
    pruned: AtomicU64,
    instr: Option<CacheInstr>,
}

impl EstimateCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, key: u128) -> &Mutex<HashMap<u128, Estimate>> {
        // Fold the fingerprint; FNV output is well-mixed in the low bits.
        let idx = ((key as u64) ^ ((key >> 64) as u64)) as usize % SHARDS;
        &self.shards[idx]
    }

    /// Attaches latency instrumentation: every subsequent probe feeds
    /// the `cache_probe_ns` (full lookup) and `cache_lock_wait_ns`
    /// (shard-lock acquisition) histograms. Without it (the default)
    /// the probe path reads no clock at all.
    pub fn instrument(&mut self, metrics: &MetricsRegistry) {
        self.instr = Some(CacheInstr {
            probe_ns: metrics.histogram("cache_probe_ns"),
            lock_wait_ns: metrics.histogram("cache_lock_wait_ns"),
        });
    }

    /// Looks up an estimate, counting the hit or miss.
    pub fn get(&self, key: u128) -> Option<Estimate> {
        let found = match &self.instr {
            None => self.shard(key).lock().get(&key).cloned(),
            Some(instr) => {
                let t0 = Instant::now();
                let guard = self.shard(key).lock();
                instr.lock_wait_ns.record(t0.elapsed().as_nanos() as u64);
                let found = guard.get(&key).cloned();
                drop(guard);
                instr.probe_ns.record(t0.elapsed().as_nanos() as u64);
                found
            }
        };
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores an estimate; returns `true` if the key was new. Racing
    /// inserts of the same key are benign — all writers computed the same
    /// value from the same canonical point — but only the first writer is
    /// counted as an insert (the loser counts as an overwrite), so
    /// `inserts` can never exceed `entries` and derived numbers (e.g. the
    /// CLI's distinct-points line) don't drift under concurrency.
    pub fn insert(&self, key: u128, estimate: Estimate) -> bool {
        use std::collections::hash_map::Entry;
        let mut shard = self.shard(key).lock();
        match shard.entry(key) {
            Entry::Vacant(v) => {
                v.insert(estimate);
                drop(shard);
                self.inserts.fetch_add(1, Ordering::Relaxed);
                true
            }
            Entry::Occupied(mut o) => {
                o.insert(estimate);
                drop(shard);
                self.overwrites.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Counts one legality-pre-screen rejection. Pruned points never
    /// touch the table or the hit/miss counters.
    pub fn count_pruned(&self) {
        self.pruned.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct entries stored.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            overwrites: self.overwrites.load(Ordering::Relaxed),
            entries: self.len() as u64,
            pruned_illegal: self.pruned.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlssim::{Feasibility, ResourceUsage};

    fn estimate(tag: u64) -> Estimate {
        Estimate {
            compute_cycles: tag,
            transfer_cycles: 0,
            total_cycles: tag,
            ii_critical: 1.0,
            freq_mhz: 250.0,
            time_ms: tag as f64,
            batch_tasks: 1,
            resources: ResourceUsage::new(),
            feasibility: Feasibility::Feasible,
            hls_minutes: 3.0,
        }
    }

    #[test]
    fn get_insert_and_counters() {
        let c = EstimateCache::new();
        assert!(c.get(7).is_none());
        assert!(c.insert(7, estimate(1)));
        assert_eq!(c.get(7).unwrap().compute_cycles, 1);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 1, 1, 1));
        assert_eq!(s.overwrites, 0);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn repeated_insert_counts_as_overwrite_not_insert() {
        let c = EstimateCache::new();
        assert!(c.insert(7, estimate(1)));
        assert!(!c.insert(7, estimate(1)));
        assert!(!c.insert(7, estimate(1)));
        let s = c.stats();
        assert_eq!(s.inserts, 1, "only the first write creates the entry");
        assert_eq!(s.overwrites, 2);
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn inserts_equal_entries_even_under_racing_writers() {
        // 8 workers all blindly insert the same 32 keys: first-writes must
        // equal distinct entries, with every other write an overwrite —
        // the counter invariant that keeps derived stats honest.
        let c = EstimateCache::new();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..96u64 {
                        c.insert((i % 32) as u128, estimate(i % 32));
                    }
                });
            }
        });
        let s = c.stats();
        assert_eq!(s.entries, 32);
        assert_eq!(s.inserts, s.entries, "inserts drifted from entries");
        assert_eq!(s.inserts + s.overwrites, 8 * 96);
    }

    #[test]
    fn pruned_counter_is_independent_of_the_table() {
        let c = EstimateCache::new();
        c.count_pruned();
        c.count_pruned();
        let s = c.stats();
        assert_eq!(s.pruned_illegal, 2);
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn instrumented_probes_feed_histograms() {
        let registry = MetricsRegistry::new();
        let mut c = EstimateCache::new();
        c.instrument(&registry);
        c.insert(7, estimate(1));
        c.get(7);
        c.get(8);
        let snap = registry.snapshot();
        assert_eq!(snap.histograms["cache_probe_ns"].count, 2);
        assert_eq!(snap.histograms["cache_lock_wait_ns"].count, 2);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1), "counters unaffected");
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = EstimateCache::new();
        for k in 0..64u128 {
            c.insert(k, estimate(k as u64));
        }
        assert_eq!(c.len(), 64);
        let populated = c.shards.iter().filter(|s| !s.lock().is_empty()).count();
        assert!(populated > 1, "sequential keys should stripe");
    }

    #[test]
    fn concurrent_mixed_load() {
        let c = EstimateCache::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let c = &c;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let key = (i % 32) as u128;
                        if c.get(key).is_none() {
                            c.insert(key, estimate(key as u64));
                        }
                        let _ = t;
                    }
                });
            }
        });
        assert_eq!(c.len(), 32);
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 800);
    }
}
