//! Canonical design-point fingerprints.
//!
//! A [`DesignConfig`] hashes to a 128-bit FNV-1a digest over a
//! deterministic byte encoding of its fields. Both maps inside the config
//! are `BTreeMap`s, so iteration order — and therefore the fingerprint —
//! is canonical for a given set of entries. Callers are expected to
//! normalize the configuration first so that equivalent raw points (e.g. a
//! clamped parallel factor) collapse onto one key; the fingerprint itself
//! is purely structural.
//!
//! At 128 bits, birthday collisions are negligible for any realistic run
//! (a DSE evaluating 10⁹ distinct points has collision probability
//! ~10⁻²⁰), so the memo table stores estimates keyed by digest alone.

use s2fa_hlsir::PipelineMode;
use s2fa_merlin::DesignConfig;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental FNV-1a over a byte stream.
struct Fnv(u128);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
}

/// The 128-bit canonical fingerprint of a design configuration.
///
/// Structural equality ⇒ equal fingerprints; field order is fixed by the
/// `BTreeMap` keys, so the digest is independent of insertion history.
pub fn fingerprint(config: &DesignConfig) -> u128 {
    let mut h = Fnv::new();
    for (id, d) in &config.loops {
        h.write(&[0x01]);
        h.write_u32(id.0);
        match d.tile {
            Some(t) => {
                h.write(&[0x01]);
                h.write_u32(t);
            }
            None => h.write(&[0x00]),
        }
        h.write_u32(d.parallel);
        h.write(&[match d.pipeline {
            PipelineMode::Off => 0u8,
            PipelineMode::On => 1,
            PipelineMode::Flatten => 2,
        }]);
        h.write(&[d.tree_reduce as u8]);
    }
    for (name, bits) in &config.buffer_bits {
        h.write(&[0x02]);
        h.write(name.as_bytes());
        h.write(&[0x00]);
        h.write_u32(*bits);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::LoopId;
    use s2fa_merlin::LoopDirective;

    #[test]
    fn equal_configs_equal_fingerprints() {
        let mut a = DesignConfig::new();
        a.loop_directive_mut(LoopId(0)).parallel = 4;
        a.buffer_bits.insert("in".into(), 128);
        let mut b = DesignConfig::new();
        b.buffer_bits.insert("in".into(), 128); // different insertion order
        b.loop_directive_mut(LoopId(0)).parallel = 4;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn each_field_perturbs_the_digest() {
        let mut base = DesignConfig::new();
        base.loops.insert(
            LoopId(1),
            LoopDirective {
                tile: Some(4),
                parallel: 2,
                pipeline: PipelineMode::On,
                tree_reduce: false,
            },
        );
        base.buffer_bits.insert("in".into(), 64);
        let f0 = fingerprint(&base);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).tile = None;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).parallel = 3;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::Flatten;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).tree_reduce = true;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.buffer_bits.insert("in".into(), 128);
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.buffer_bits.insert("in2".into(), 64);
        assert_ne!(fingerprint(&m), f0);
    }

    #[test]
    fn loop_id_vs_field_confusion_is_distinguished() {
        // L0 with tile 1 vs L1 with no tile — byte streams must differ.
        let mut a = DesignConfig::new();
        a.loops.insert(
            LoopId(0),
            LoopDirective {
                tile: Some(1),
                ..LoopDirective::none()
            },
        );
        let mut b = DesignConfig::new();
        b.loops.insert(LoopId(1), LoopDirective::none());
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
