//! Canonical design-point fingerprints.
//!
//! A [`DesignConfig`] hashes to a 128-bit FNV-1a digest over a
//! deterministic word encoding of its fields. Both maps inside the config
//! are `BTreeMap`s, so iteration order — and therefore the fingerprint —
//! is canonical for a given set of entries. Callers are expected to
//! normalize the configuration first so that equivalent raw points (e.g. a
//! clamped parallel factor) collapse onto one key; the fingerprint itself
//! is purely structural.
//!
//! The digest runs **word-at-a-time** (two parallel 64-bit xor-multiply
//! streams per word, via the shared [`SubFnv`] mixer) rather than
//! byte-at-a-time: a directive packs into two words and a buffer entry
//! into ~two, so a typical config fingerprints in a dozen independent
//! multiply pairs instead of a serial ~100-multiply chain.
//! Fields occupy disjoint bit ranges within each word (tag byte, loop id,
//! tile flag, pipeline mode, `tree_reduce`), so every field perturbs the
//! digest and a loop id can never be confused with a neighboring field.
//!
//! At 128 bits, birthday collisions are negligible for any realistic run
//! (a DSE evaluating 10⁹ distinct points has collision probability
//! ~10⁻²⁰), so the memo table stores estimates keyed by digest alone.

use s2fa_hlsir::PipelineMode;
use s2fa_hlssim::SubFnv;
use s2fa_merlin::DesignConfig;

/// The 128-bit canonical fingerprint of a design configuration.
///
/// Structural equality ⇒ equal fingerprints; field order is fixed by the
/// `BTreeMap` keys, so the digest is independent of insertion history.
pub fn fingerprint(config: &DesignConfig) -> u128 {
    let mut h = SubFnv::new();
    for (id, d) in &config.loops {
        let (tile_flag, tile_val) = match d.tile {
            Some(t) => (1u64, t as u64),
            None => (0, 0),
        };
        let pipe = match d.pipeline {
            PipelineMode::Off => 0u64,
            PipelineMode::On => 1,
            PipelineMode::Flatten => 2,
        };
        // Tag 0x01 | loop id (32 bits) | tile flag | pipeline | tree_reduce.
        h.word(
            0x01 | ((id.0 as u64) << 8)
                | (tile_flag << 40)
                | (pipe << 41)
                | ((d.tree_reduce as u64) << 43),
        );
        h.word(tile_val | ((d.parallel as u64) << 32));
    }
    for (name, bits) in &config.buffer_bits {
        // Tag 0x02 | name length | configured width, then the name bytes
        // packed 8 per word (the length word disambiguates zero padding).
        h.word(0x02 | ((name.len() as u64) << 8) | ((*bits as u64) << 32));
        for chunk in name.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            h.word(u64::from_le_bytes(w));
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::LoopId;
    use s2fa_merlin::LoopDirective;

    #[test]
    fn equal_configs_equal_fingerprints() {
        let mut a = DesignConfig::new();
        a.loop_directive_mut(LoopId(0)).parallel = 4;
        a.buffer_bits.insert("in".into(), 128);
        let mut b = DesignConfig::new();
        b.buffer_bits.insert("in".into(), 128); // different insertion order
        b.loop_directive_mut(LoopId(0)).parallel = 4;
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn each_field_perturbs_the_digest() {
        let mut base = DesignConfig::new();
        base.loops.insert(
            LoopId(1),
            LoopDirective {
                tile: Some(4),
                parallel: 2,
                pipeline: PipelineMode::On,
                tree_reduce: false,
            },
        );
        base.buffer_bits.insert("in".into(), 64);
        let f0 = fingerprint(&base);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).tile = None;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).parallel = 3;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::Flatten;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.loop_directive_mut(LoopId(1)).tree_reduce = true;
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.buffer_bits.insert("in".into(), 128);
        assert_ne!(fingerprint(&m), f0);

        let mut m = base.clone();
        m.buffer_bits.insert("in2".into(), 64);
        assert_ne!(fingerprint(&m), f0);
    }

    #[test]
    fn loop_id_vs_field_confusion_is_distinguished() {
        // L0 with tile 1 vs L1 with no tile — word streams must differ.
        let mut a = DesignConfig::new();
        a.loops.insert(
            LoopId(0),
            LoopDirective {
                tile: Some(1),
                ..LoopDirective::none()
            },
        );
        let mut b = DesignConfig::new();
        b.loops.insert(LoopId(1), LoopDirective::none());
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn buffer_names_with_shared_prefixes_are_distinguished() {
        // Same total byte content split differently across name/width
        // boundaries must not collide (the length word pins the split).
        let mut a = DesignConfig::new();
        a.buffer_bits.insert("buffer_a".into(), 64);
        let mut b = DesignConfig::new();
        b.buffer_bits.insert("buffer_ab".into(), 64);
        let mut c = DesignConfig::new();
        c.buffer_bits.insert("buffer_".into(), 64);
        let (fa, fb, fc) = (fingerprint(&a), fingerprint(&b), fingerprint(&c));
        assert_ne!(fa, fb);
        assert_ne!(fa, fc);
        assert_ne!(fb, fc);
    }
}
