//! The persistent evaluation worker pool.
//!
//! PR 6's flight recorder pinned the threaded evaluator's inversion (more
//! threads → *slower*) on per-batch OS-thread spawn: at 8 threads, spawn
//! was 84 % of batch wall time. This module replaces the per-batch
//! `std::thread::scope` fan-out with workers spawned **once per DSE run**
//! and fed contiguous chunk work-units through a shared queue.
//!
//! ## Execution model
//!
//! A [`submit`](WorkerPool::submit) call enqueues one [`Job`]: a task
//! closure plus an index range `0..len` cut into chunks of `chunk`
//! indices. Workers (and the submitting caller, via
//! [`JobHandle::help`]) race on an atomic cursor: each executor claims
//! the next chunk with one `fetch_add` and invokes the task with
//! `(start, end, is_worker)`. Which executor runs which chunk is
//! scheduling-dependent, but **what** each chunk computes is a pure
//! function of its index range — callers write results by index into a
//! pre-sized buffer — so outcomes are bit-identical across worker
//! counts, including zero (the determinism property the DSE suite pins).
//!
//! ## Safety
//!
//! The task reference is lifetime-erased so a borrowing closure can cross
//! the worker threads (the same contract `std::thread::scope` provides
//! dynamically): [`JobHandle::wait`] blocks until every chunk has
//! *returned*, the handle's `Drop` waits too, and a worker never invokes
//! the task once the cursor passes `len` — so no task invocation can
//! start or be in flight after the borrow ends.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Locks ignoring poison (a panicking task must not wedge the pool).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Waits on `cv` ignoring poison.
fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// The chunked task signature: `(start, end, is_worker)` over `start..end`.
/// `is_worker` is `true` on pool threads and `false` on the submitting
/// caller — observability hooks use it to label lanes; results must not
/// depend on it.
pub type Task = dyn Fn(usize, usize, bool) + Sync;

/// One submitted work item.
struct Job {
    /// Lifetime-erased task; only dereferenced while chunks remain, which
    /// the submitting [`JobHandle`] outlives by construction.
    task: &'static Task,
    len: usize,
    chunk: usize,
    /// Next unclaimed index.
    cursor: AtomicUsize,
    /// Chunks claimed but not yet finished + chunks not yet claimed.
    remaining: AtomicUsize,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claims and runs chunks until the cursor is exhausted.
    fn run_chunks(self: &Arc<Self>, shared: &PoolShared, is_worker: bool) {
        loop {
            let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.len {
                return;
            }
            let end = (start + self.chunk).min(self.len);
            (self.task)(start, end, is_worker);
            shared.chunks.fetch_add(1, Ordering::Relaxed);
            if is_worker {
                shared.worker_chunks.fetch_add(1, Ordering::Relaxed);
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = lock(&self.done);
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    available: Condvar,
    shutdown: AtomicBool,
    jobs: AtomicU64,
    chunks: AtomicU64,
    worker_chunks: AtomicU64,
}

/// Monotonic activity counters of a pool (relaxed loads; exact once the
/// jobs they cover have been waited on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool worker threads (executors minus the helping caller).
    pub workers: u64,
    /// Jobs submitted.
    pub jobs: u64,
    /// Chunks executed, by anyone.
    pub chunks: u64,
    /// Chunks executed by pool workers (the rest ran on submitting
    /// callers via [`JobHandle::help`]).
    pub worker_chunks: u64,
}

impl PoolStats {
    /// Fraction of chunks the pool workers carried (0 when no chunks ran)
    /// — the utilization figure the CLI metrics dump prints.
    pub fn worker_share(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.worker_chunks as f64 / self.chunks as f64
        }
    }
}

/// A persistent pool of evaluation workers.
///
/// Spawn once per DSE run with `eval_threads - 1` workers (the submitting
/// caller is the final executor, via [`JobHandle::help`]); share by
/// `Arc` across partition threads — the queue accepts concurrent
/// submissions and workers drain jobs FIFO, oldest first.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.threads.len())
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Spawns `workers` pool threads. `0` is valid: every chunk then runs
    /// on the submitting caller inside [`JobHandle::help`], which keeps
    /// single-threaded runs free of cross-thread handoff entirely.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            jobs: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            worker_chunks: AtomicU64::new(0),
        });
        let threads = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("s2fa-eval-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, threads }
    }

    /// Number of pool worker threads.
    pub fn workers(&self) -> usize {
        self.threads.len()
    }

    /// Cuts `len` items into chunks big enough to amortize the claim
    /// `fetch_add` but small enough to balance `executors` (≈4 chunks per
    /// executor on large batches, floor 16 items).
    pub fn auto_chunk(len: usize, executors: usize) -> usize {
        if len == 0 {
            return 1;
        }
        len.div_ceil(4 * executors.max(1)).clamp(16.min(len), 256)
    }

    /// Enqueues a job over `0..len` in chunks of `chunk` items and wakes
    /// the workers. The caller should [`help`](JobHandle::help) (it is an
    /// executor too) and then [`wait`](JobHandle::wait); the task borrow
    /// is pinned until the handle is waited on or dropped.
    pub fn submit<'t>(
        &self,
        len: usize,
        chunk: usize,
        task: &'t (dyn Fn(usize, usize, bool) + Sync + 't),
    ) -> JobHandle<'t> {
        let chunk = chunk.max(1);
        let n_chunks = len.div_ceil(chunk);
        // SAFETY: the erased borrow is only dereferenced by task
        // invocations, every invocation finishes before `wait`/`Drop`
        // returns (the `remaining` count gates `done`), and none can
        // start afterwards (the cursor is exhausted). The handle's
        // lifetime parameter keeps `'t` alive until then.
        let task: &'static Task = unsafe {
            std::mem::transmute::<&'t (dyn Fn(usize, usize, bool) + Sync + 't), &'static Task>(task)
        };
        let job = Arc::new(Job {
            task,
            len,
            chunk,
            cursor: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n_chunks),
            done: Mutex::new(n_chunks == 0),
            done_cv: Condvar::new(),
        });
        self.shared.jobs.fetch_add(1, Ordering::Relaxed);
        if n_chunks > 0 {
            lock(&self.shared.queue).push_back(Arc::clone(&job));
            self.shared.available.notify_all();
        }
        JobHandle {
            job,
            shared: Arc::clone(&self.shared),
            _task: PhantomData,
        }
    }

    /// Activity counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.threads.len() as u64,
            jobs: self.shared.jobs.load(Ordering::Relaxed),
            chunks: self.shared.chunks.load(Ordering::Relaxed),
            worker_chunks: self.shared.worker_chunks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Take the lock so no worker can check the flag between our
            // store and its wait — the notify cannot be missed.
            let _q = lock(&self.shared.queue);
            self.shared.available.notify_all();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                // Drop exhausted jobs off the front; their last chunks may
                // still be running, but there is nothing left to claim.
                while q
                    .front()
                    .is_some_and(|j| j.cursor.load(Ordering::Relaxed) >= j.len)
                {
                    q.pop_front();
                }
                if let Some(j) = q.front() {
                    break Arc::clone(j);
                }
                q = wait(&shared.available, q);
            }
        };
        job.run_chunks(&shared, true);
    }
}

/// An in-flight [`WorkerPool::submit`]. Waits for completion on
/// [`wait`](Self::wait) — or on `Drop`, so an early return can never
/// leave the borrowed task running.
#[must_use = "the caller should help() and wait() on the handle"]
pub struct JobHandle<'t> {
    job: Arc<Job>,
    shared: Arc<PoolShared>,
    _task: PhantomData<&'t Task>,
}

impl JobHandle<'_> {
    /// Runs chunks on the calling thread until none are left to claim.
    /// The submitting caller is the pool's extra executor: with `help`,
    /// `workers + 1` threads share the batch, and a 0-worker pool
    /// degenerates to an inline serial loop.
    pub fn help(&self) {
        self.job.run_chunks(&self.shared, false);
    }

    /// Blocks until every chunk has finished executing.
    pub fn wait(self) {
        self.wait_ref();
    }

    fn wait_ref(&self) {
        let mut done = lock(&self.job.done);
        while !*done {
            done = wait(&self.job.done_cv, done);
        }
    }
}

impl Drop for JobHandle<'_> {
    fn drop(&mut self) {
        self.wait_ref();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        let task = |s: usize, e: usize, _w: bool| {
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        };
        let h = pool.submit(1000, 7, &task);
        h.help();
        h.wait();
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "index {i}");
        }
    }

    #[test]
    fn zero_worker_pool_runs_on_the_caller() {
        let pool = WorkerPool::new(0);
        let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        let worker_chunks = AtomicU64::new(0);
        let task = |s: usize, e: usize, w: bool| {
            if w {
                worker_chunks.fetch_add(1, Ordering::SeqCst);
            }
            for h in &hits[s..e] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        };
        let h = pool.submit(64, 16, &task);
        h.help();
        h.wait();
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        assert_eq!(worker_chunks.load(Ordering::SeqCst), 0);
        assert_eq!(pool.stats().worker_chunks, 0);
        assert_eq!(pool.stats().chunks, 4);
    }

    #[test]
    fn empty_job_completes_immediately() {
        let pool = WorkerPool::new(2);
        let task = |_s: usize, _e: usize, _w: bool| panic!("no chunks to run");
        let h = pool.submit(0, 8, &task);
        h.help();
        h.wait();
        assert_eq!(pool.stats().chunks, 0);
        assert_eq!(pool.stats().jobs, 1);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = WorkerPool::new(4);
        let totals: Vec<u64> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|t| {
                    let pool = &pool;
                    scope.spawn(move || {
                        let sum = AtomicU64::new(0);
                        let task = |s: usize, e: usize, _w: bool| {
                            let mut acc = 0;
                            for i in s..e {
                                acc += t * 10_000 + i as u64;
                            }
                            sum.fetch_add(acc, Ordering::SeqCst);
                        };
                        let h = pool.submit(500, 32, &task);
                        h.help();
                        h.wait();
                        sum.load(Ordering::SeqCst)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for (t, total) in totals.iter().enumerate() {
            let expect: u64 = (0..500u64).map(|i| t as u64 * 10_000 + i).sum();
            assert_eq!(*total, expect, "submitter {t}");
        }
        assert_eq!(pool.stats().jobs, 4);
    }

    #[test]
    fn dropped_handle_waits_for_completion() {
        let done: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        {
            let pool = WorkerPool::new(2);
            let task = |s: usize, e: usize, _w: bool| {
                for d in &done[s..e] {
                    d.fetch_add(1, Ordering::SeqCst);
                }
            };
            let h = pool.submit(256, 8, &task);
            h.help();
            drop(h); // must block until all chunks returned
        } // pool drop joins workers
        assert!(done.iter().all(|d| d.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_the_same_workers() {
        let pool = WorkerPool::new(2);
        for round in 0..50usize {
            let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
            let task = |s: usize, e: usize, _w: bool| {
                for h in &hits[s..e] {
                    h.fetch_add(1, Ordering::SeqCst);
                }
            };
            let h = pool.submit(100, 9, &task);
            h.help();
            h.wait();
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "round {round}"
            );
        }
        assert_eq!(pool.stats().jobs, 50);
    }

    #[test]
    fn auto_chunk_balances_and_floors() {
        assert_eq!(WorkerPool::auto_chunk(0, 8), 1);
        assert_eq!(WorkerPool::auto_chunk(512, 8), 16);
        assert_eq!(WorkerPool::auto_chunk(4, 8), 4);
        assert_eq!(WorkerPool::auto_chunk(10_000, 1), 256);
        for len in [1usize, 2, 15, 16, 100, 512, 10_000] {
            for ex in [1usize, 2, 8] {
                let c = WorkerPool::auto_chunk(len, ex);
                assert!((1..=256).contains(&c), "chunk {c} for len {len} x{ex}");
            }
        }
    }
}
