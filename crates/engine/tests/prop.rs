//! Property tests for the evaluation engine: memoization and invariant
//! hoisting must be invisible — for *arbitrary* raw design points, the
//! cached, uncached, and direct-estimator paths all return the identical
//! `Estimate`.

use proptest::prelude::*;
use s2fa_engine::EvalEngine;
use s2fa_hlsir::{
    Access, BufferDir, BufferInfo, KernelSummary, LoopId, LoopInfo, OpCounts, PipelineMode, Stride,
};
use s2fa_hlssim::Estimator;
use s2fa_merlin::{DesignConfig, LoopDirective};

/// The dot-product fixture: a 1024-task loop around a 64-trip MAC loop.
fn summary() -> KernelSummary {
    let mut inner_ops = OpCounts::new();
    inner_ops.fadd = 1;
    inner_ops.fmul = 1;
    inner_ops.mem_read = 2;
    let mut outer_ops = OpCounts::new();
    outer_ops.mem_write = 1;
    KernelSummary {
        name: "dot".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: outer_ops,
                accesses: vec![Access {
                    buffer: "out_1".into(),
                    write: true,
                    stride: Stride::Unit,
                }],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: 64,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: inner_ops,
                accesses: vec![
                    Access {
                        buffer: "in_1".into(),
                        write: false,
                        stride: Stride::Unit,
                    },
                    Access {
                        buffer: "w".into(),
                        write: false,
                        stride: Stride::Unit,
                    },
                ],
                carried: None,
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "w".into(),
                elem_bits: 32,
                len: 64,
                dir: BufferDir::In,
                broadcast: true,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 64,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
        dataflow: None,
    }
}

/// An arbitrary — deliberately *not* normalized — loop directive. Raw
/// factors may be non-powers-of-two or exceed the trip count; the engine
/// must canonicalize them exactly like the estimator does.
fn arb_directive() -> impl Strategy<Value = LoopDirective> {
    (
        prop_oneof![Just(None), (1u32..2048).prop_map(Some)],
        1u32..2048,
        prop_oneof![
            Just(PipelineMode::Off),
            Just(PipelineMode::On),
            Just(PipelineMode::Flatten),
        ],
        any::<bool>(),
    )
        .prop_map(|(tile, parallel, pipeline, tree_reduce)| LoopDirective {
            tile,
            parallel,
            pipeline,
            tree_reduce,
        })
}

fn arb_config() -> impl Strategy<Value = DesignConfig> {
    (
        arb_directive(),
        arb_directive(),
        1u32..1024,
        1u32..1024,
        1u32..1024,
    )
        .prop_map(|(d0, d1, b0, b1, b2)| {
            let mut cfg = DesignConfig::new();
            cfg.loops.insert(LoopId(0), d0);
            cfg.loops.insert(LoopId(1), d1);
            cfg.buffer_bits.insert("in_1".into(), b0);
            cfg.buffer_bits.insert("w".into(), b1);
            cfg.buffer_bits.insert("out_1".into(), b2);
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Cached, uncached, and direct estimator paths agree on arbitrary
    // raw design points — including the virtual `hls_minutes` charge.
    #[test]
    fn cached_equals_uncached(cfg in arb_config()) {
        let s = summary();
        let est = Estimator::new();
        let direct = est.evaluate(&s, &cfg);

        let mut engine = EvalEngine::new(&s, &est);
        engine.set_caching(false);
        prop_assert_eq!(&engine.evaluate(&cfg), &direct, "uncached path diverged");

        engine.set_caching(true);
        // miss path
        prop_assert_eq!(&engine.evaluate(&cfg), &direct, "miss path diverged");
        // hit path must replay the stored estimate byte-for-byte
        prop_assert_eq!(&engine.evaluate(&cfg), &direct, "hit path diverged");
        let stats = engine.cache_stats();
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.misses, 1);
    }

    // Normalization makes the cache key canonical: the normalized twin
    // of a raw point lands on the same entry and the same estimate.
    #[test]
    fn normalized_twin_shares_the_entry(cfg in arb_config()) {
        let s = summary();
        let engine = EvalEngine::new(&s, &Estimator::new());
        let first = engine.evaluate(&cfg);
        let mut canon = cfg.clone();
        canon.normalize(&s);
        prop_assert_eq!(engine.evaluate(&canon), first);
        prop_assert_eq!(engine.cache_stats().hits, 1);
    }
}
