//! Property tests: structural transformations preserve semantics, and
//! configuration normalization is idempotent and legal.

use proptest::prelude::*;
use s2fa_hlsir::{
    analysis, CBinOp, CFunction, CNumKind, CType, CVal, Executor, Expr, LValue, LoopAttrs, LoopId,
    Param, ParamKind, PipelineMode, Stmt,
};
use s2fa_merlin::{tile_loop, unroll_loop, DesignConfig};
use std::collections::BTreeMap;

/// Builds `out[i] = a*in[i]*in[i] + b*in[i] + c` over `tc` elements.
fn poly_kernel(tc: u32, a: i64, b: i64, c: i64) -> CFunction {
    let x = || Expr::index("in_1", Expr::var("i"));
    CFunction {
        name: "poly".into(),
        params: vec![
            Param {
                name: "in_1".into(),
                ty: CType::Int(32),
                kind: ParamKind::BufIn,
                elems_per_task: Some(1),
                broadcast: false,
            },
            Param {
                name: "out_1".into(),
                ty: CType::Int(32),
                kind: ParamKind::BufOut,
                elems_per_task: Some(1),
                broadcast: false,
            },
        ],
        body: vec![Stmt::For {
            id: LoopId(0),
            var: "i".into(),
            bound: Expr::ConstI(tc as i64),
            trip_count: Some(tc),
            attrs: LoopAttrs::default(),
            body: vec![Stmt::Assign {
                lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                rhs: Expr::bin(
                    CBinOp::Add,
                    CNumKind::I32,
                    Expr::bin(
                        CBinOp::Mul,
                        CNumKind::I32,
                        Expr::bin(CBinOp::Mul, CNumKind::I32, Expr::ConstI(a), x()),
                        x(),
                    ),
                    Expr::bin(
                        CBinOp::Add,
                        CNumKind::I32,
                        Expr::bin(CBinOp::Mul, CNumKind::I32, Expr::ConstI(b), x()),
                        Expr::ConstI(c),
                    ),
                ),
            }],
        }],
    }
}

fn run(f: &CFunction, input: &[i64]) -> Vec<CVal> {
    let mut buffers = BTreeMap::new();
    buffers.insert(
        "in_1".to_string(),
        input.iter().map(|&v| CVal::I(v)).collect::<Vec<_>>(),
    );
    buffers.insert("out_1".to_string(), vec![CVal::I(0); input.len()]);
    Executor::new(f)
        .run(&BTreeMap::new(), &mut buffers)
        .expect("executes");
    buffers.remove("out_1").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiling_preserves_semantics(
        tc_pow in 3u32..7,             // 8..64
        factor_pow in 1u32..3,         // 2..4
        a in -4i64..4, b in -4i64..4, c in -4i64..4,
        input in prop::collection::vec(any::<i16>(), 64..=64),
    ) {
        let tc = 1 << tc_pow;
        let factor = 1 << factor_pow;
        prop_assume!(factor > 1 && factor < tc);
        let base = poly_kernel(tc, a, b, c);
        let input: Vec<i64> = input.iter().take(tc as usize).map(|&v| v as i64).collect();
        let expected = run(&base, &input);
        let mut tiled = base.clone();
        tile_loop(&mut tiled, LoopId(0), factor).expect("tiles");
        prop_assert_eq!(run(&tiled, &input), expected);
    }

    #[test]
    fn unrolling_preserves_semantics(
        tc_pow in 3u32..7,
        factor_pow in 0u32..4,
        a in -4i64..4, b in -4i64..4, c in -4i64..4,
        input in prop::collection::vec(any::<i16>(), 64..=64),
    ) {
        let tc = 1u32 << tc_pow;
        let factor = 1u32 << factor_pow.min(tc_pow);
        let base = poly_kernel(tc, a, b, c);
        let input: Vec<i64> = input.iter().take(tc as usize).map(|&v| v as i64).collect();
        let expected = run(&base, &input);
        let mut unrolled = base.clone();
        unroll_loop(&mut unrolled, LoopId(0), factor).expect("unrolls");
        prop_assert_eq!(run(&unrolled, &input), expected);
    }

    #[test]
    fn tile_then_unroll_composes(
        a in -4i64..4, b in -4i64..4, c in -4i64..4,
        input in prop::collection::vec(any::<i16>(), 32..=32),
    ) {
        let base = poly_kernel(32, a, b, c);
        let input: Vec<i64> = input.iter().map(|&v| v as i64).collect();
        let expected = run(&base, &input);
        let mut t = base.clone();
        let inner = tile_loop(&mut t, LoopId(0), 8).expect("tiles");
        unroll_loop(&mut t, inner, 4).expect("unrolls inner");
        prop_assert_eq!(run(&t, &input), expected);
    }

    #[test]
    fn normalize_is_idempotent(
        tile_idx in 0u32..6,
        par in 1u32..64,
        pipe in 0u8..3,
        bits in prop::sample::select(vec![7u32, 16, 100, 512, 4096]),
    ) {
        let f = poly_kernel(32, 1, 1, 1);
        let summary = analysis::summarize(&f, 32).expect("analyzes");
        let mut cfg = DesignConfig::new();
        {
            let d = cfg.loop_directive_mut(LoopId(0));
            d.tile = if tile_idx == 0 { None } else { Some(1 << tile_idx) };
            d.parallel = par;
            d.pipeline = match pipe {
                0 => PipelineMode::Off,
                1 => PipelineMode::On,
                _ => PipelineMode::Flatten,
            };
        }
        cfg.buffer_bits.insert("in_1".into(), bits);
        let mut once = cfg.clone();
        once.normalize(&summary);
        let mut twice = once.clone();
        let notes = twice.normalize(&summary);
        prop_assert_eq!(&once, &twice, "second normalize changed: {:?}", notes);
        // normalized factors are always legal
        let d = once.loop_directive(LoopId(0));
        prop_assert!(d.parallel_factor() <= 32);
        if let Some(t) = d.tile {
            prop_assert!(t > 1 && t < 32);
        }
        let w = once.buffer_width("in_1");
        prop_assert!((16..=512).contains(&w) && w.is_power_of_two());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn structural_application_preserves_semantics(
        tile_pow in 1u32..4,
        par in 1u32..8,
        a in -4i64..4, b in -4i64..4, c in -4i64..4,
        input in prop::collection::vec(any::<i16>(), 32..=32),
    ) {
        use s2fa_merlin::apply_structural;
        let base = poly_kernel(32, a, b, c);
        let input: Vec<i64> = input.iter().map(|&v| v as i64).collect();
        let expected = run(&base, &input);
        let mut cfg = DesignConfig::new();
        {
            let d = cfg.loop_directive_mut(LoopId(0));
            d.tile = Some(1 << tile_pow);
            d.parallel = par;
            d.pipeline = PipelineMode::On;
        }
        let (transformed, report) = apply_structural(&base, &cfg);
        prop_assert!(!report.applied.is_empty());
        prop_assert_eq!(run(&transformed, &input), expected);
        // a structural tile adds a loop
        if (1u32 << tile_pow) > 1 && (1u32 << tile_pow) < 32 {
            prop_assert_eq!(transformed.loop_ids().len(), 2);
        }
    }
}
