//! Source-to-source transformations over the HLS C AST.
//!
//! Two layers, mirroring how the Merlin compiler works:
//!
//! * [`apply_directives`] attaches a [`DesignConfig`]'s directives to the
//!   AST as loop attributes (rendered as `#pragma ACCEL` lines). This is
//!   what the DSE evaluates — the analytical HLS model interprets the
//!   attributes directly.
//! * [`tile_loop`] / [`unroll_loop`] perform the *actual* structural
//!   rewrites for the final design source. They preserve semantics — the
//!   `s2fa-hlsir` executor produces bit-identical results before and after
//!   (property-tested).

use crate::config::DesignConfig;
use s2fa_hlsir::{CBinOp, CFunction, CNumKind, Expr, LValue, LoopId, Stmt};
use std::fmt;

/// Errors from structural transformations.
#[derive(Debug, Clone, PartialEq)]
pub enum TransformError {
    /// The loop id does not exist in the function.
    NoSuchLoop(LoopId),
    /// The loop's trip count is not a compile-time constant.
    DynamicBound(LoopId),
    /// The factor does not divide the trip count (S2FA restricts structural
    /// unrolling to even splits; the remainder case is handled by the
    /// analytic model only).
    NonDividingFactor {
        /// The loop being transformed.
        id: LoopId,
        /// Its trip count.
        tc: u32,
        /// The rejected factor.
        factor: u32,
    },
    /// Factor out of the legal range.
    BadFactor {
        /// The loop being transformed.
        id: LoopId,
        /// The out-of-range factor.
        factor: u32,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::NoSuchLoop(id) => write!(f, "no loop {id} in function"),
            TransformError::DynamicBound(id) => {
                write!(f, "loop {id} has a dynamic bound; cannot restructure")
            }
            TransformError::NonDividingFactor { id, tc, factor } => {
                write!(f, "factor {factor} does not divide trip count {tc} of {id}")
            }
            TransformError::BadFactor { id, factor } => {
                write!(f, "factor {factor} is out of range for {id}")
            }
        }
    }
}

impl std::error::Error for TransformError {}

/// Record of the directives applied to a function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransformReport {
    /// Human-readable pragma lines, one per applied directive.
    pub applied: Vec<String>,
}

/// Attaches every directive in `config` to the corresponding loop of `f`.
///
/// Unknown loop ids in the config are ignored (they may refer to loops
/// invalidated by an earlier structural rewrite).
pub fn apply_directives(f: &mut CFunction, config: &DesignConfig) -> TransformReport {
    let mut report = TransformReport::default();
    for (&id, d) in &config.loops {
        if let Some(Stmt::For { attrs, .. }) = f.loop_mut(id) {
            attrs.pipeline = d.pipeline;
            attrs.parallel = d.parallel_factor();
            attrs.tile = d.tile;
            attrs.tree_reduce = d.tree_reduce;
            if d.pipeline != s2fa_hlsir::PipelineMode::Off {
                report
                    .applied
                    .push(format!("{id}: pipeline {}", d.pipeline));
            }
            if d.parallel_factor() > 1 {
                report
                    .applied
                    .push(format!("{id}: parallel factor={}", d.parallel_factor()));
            }
            if let Some(t) = d.tile {
                report.applied.push(format!("{id}: tile factor={t}"));
            }
            if d.tree_reduce {
                report.applied.push(format!("{id}: tree reduction"));
            }
        }
    }
    report
}

/// Splits loop `id` (trip count `tc`) into an outer loop of `tc / factor`
/// iterations and a fresh inner loop of `factor` iterations, substituting
/// `var -> var_o * factor + var_i` in the body. Returns the new inner
/// loop's id.
///
/// # Errors
///
/// See [`TransformError`]; in particular `factor` must divide the trip
/// count and lie strictly between 1 and `tc`.
pub fn tile_loop(f: &mut CFunction, id: LoopId, factor: u32) -> Result<LoopId, TransformError> {
    let fresh = next_loop_id(f);
    let target = f.loop_mut(id).ok_or(TransformError::NoSuchLoop(id))?;
    let (old_var, tc, attrs, old_body) = match &*target {
        Stmt::For {
            var,
            trip_count,
            attrs,
            body,
            ..
        } => (
            var.clone(),
            trip_count.ok_or(TransformError::DynamicBound(id))?,
            *attrs,
            body.clone(),
        ),
        _ => unreachable!("loop_mut only returns For"),
    };
    if factor <= 1 || factor >= tc {
        return Err(TransformError::BadFactor { id, factor });
    }
    if tc % factor != 0 {
        return Err(TransformError::NonDividingFactor { id, tc, factor });
    }
    let outer_var = format!("{old_var}_o");
    let inner_var = format!("{old_var}_i");
    let flat = Expr::bin(
        CBinOp::Add,
        CNumKind::I32,
        Expr::bin(
            CBinOp::Mul,
            CNumKind::I32,
            Expr::var(outer_var.clone()),
            Expr::ConstI(factor as i64),
        ),
        Expr::var(inner_var.clone()),
    );
    let new_body: Vec<Stmt> = old_body
        .iter()
        .map(|s| subst_stmt(s, &old_var, &flat))
        .collect();
    let inner = Stmt::For {
        id: fresh,
        var: inner_var,
        bound: Expr::ConstI(factor as i64),
        trip_count: Some(factor),
        attrs: Default::default(),
        body: new_body,
    };
    *target = Stmt::For {
        id,
        var: outer_var,
        bound: Expr::ConstI((tc / factor) as i64),
        trip_count: Some(tc / factor),
        attrs,
        body: vec![inner],
    };
    Ok(fresh)
}

/// Fully replicates the body of loop `id` `factor` times, dividing the
/// trip count — the structural form of `#pragma ACCEL parallel`.
///
/// # Errors
///
/// `factor` must divide the constant trip count.
pub fn unroll_loop(f: &mut CFunction, id: LoopId, factor: u32) -> Result<(), TransformError> {
    let target = f.loop_mut(id).ok_or(TransformError::NoSuchLoop(id))?;
    let Stmt::For {
        var,
        trip_count,
        body,
        ..
    } = target
    else {
        unreachable!("loop_mut only returns For")
    };
    let tc = trip_count.ok_or(TransformError::DynamicBound(id))?;
    if factor == 0 || factor > tc {
        return Err(TransformError::BadFactor { id, factor });
    }
    if tc % factor != 0 {
        return Err(TransformError::NonDividingFactor { id, tc, factor });
    }
    if factor == 1 {
        return Ok(());
    }
    let old_var = var.clone();
    let mut new_body = Vec::with_capacity(body.len() * factor as usize);
    for k in 0..factor {
        // var -> var * factor + k
        let rep = Expr::bin(
            CBinOp::Add,
            CNumKind::I32,
            Expr::bin(
                CBinOp::Mul,
                CNumKind::I32,
                Expr::var(old_var.clone()),
                Expr::ConstI(factor as i64),
            ),
            Expr::ConstI(k as i64),
        );
        for s in body.iter() {
            new_body.push(subst_stmt(s, &old_var, &rep));
        }
    }
    *body = new_body;
    *trip_count = Some(tc / factor);
    if let Stmt::For { bound, .. } = target {
        *bound = Expr::ConstI((tc / factor) as i64);
    }
    Ok(())
}

fn next_loop_id(f: &CFunction) -> LoopId {
    LoopId(
        f.loop_ids()
            .iter()
            .map(|l| l.0)
            .max()
            .map(|m| m + 1)
            .unwrap_or(0),
    )
}

/// Substitutes every read of variable `name` in `s` with `rep`.
fn subst_stmt(s: &Stmt, name: &str, rep: &Expr) -> Stmt {
    match s {
        Stmt::DeclArr { .. } => s.clone(),
        Stmt::Decl { name: n, ty, init } => Stmt::Decl {
            name: n.clone(),
            ty: *ty,
            init: init.as_ref().map(|e| subst_expr(e, name, rep)),
        },
        Stmt::Assign { lhs, rhs } => Stmt::Assign {
            lhs: match lhs {
                LValue::Var(n) => LValue::Var(n.clone()),
                LValue::Index(n, i) => LValue::Index(n.clone(), Box::new(subst_expr(i, name, rep))),
            },
            rhs: subst_expr(rhs, name, rep),
        },
        Stmt::For {
            id,
            var,
            bound,
            trip_count,
            attrs,
            body,
        } => Stmt::For {
            id: *id,
            var: var.clone(),
            bound: subst_expr(bound, name, rep),
            trip_count: *trip_count,
            attrs: *attrs,
            // inner loop shadowing its own var would stop substitution, but
            // generated code never shadows
            body: if var == name {
                body.clone()
            } else {
                body.iter().map(|s| subst_stmt(s, name, rep)).collect()
            },
        },
        Stmt::If { cond, then, els } => Stmt::If {
            cond: subst_expr(cond, name, rep),
            then: then.iter().map(|s| subst_stmt(s, name, rep)).collect(),
            els: els.iter().map(|s| subst_stmt(s, name, rep)).collect(),
        },
    }
}

fn subst_expr(e: &Expr, name: &str, rep: &Expr) -> Expr {
    match e {
        Expr::ConstI(_) | Expr::ConstF(_) => e.clone(),
        Expr::Var(n) => {
            if n == name {
                rep.clone()
            } else {
                e.clone()
            }
        }
        Expr::Index(n, i) => Expr::Index(n.clone(), Box::new(subst_expr(i, name, rep))),
        Expr::Bin(op, k, a, b) => Expr::Bin(
            *op,
            *k,
            Box::new(subst_expr(a, name, rep)),
            Box::new(subst_expr(b, name, rep)),
        ),
        Expr::Neg(k, a) => Expr::Neg(*k, Box::new(subst_expr(a, name, rep))),
        Expr::Call(f, k, args) => Expr::Call(
            *f,
            *k,
            args.iter().map(|a| subst_expr(a, name, rep)).collect(),
        ),
        Expr::Cast(from, to, a) => Expr::Cast(*from, *to, Box::new(subst_expr(a, name, rep))),
        Expr::Select(c, a, b) => Expr::Select(
            Box::new(subst_expr(c, name, rep)),
            Box::new(subst_expr(a, name, rep)),
            Box::new(subst_expr(b, name, rep)),
        ),
    }
}

/// Applies a configuration *structurally* where possible: inner loops with
/// a constant trip count divisible by their tile factor are actually split
/// (the Merlin source-to-source rewrite), and the remaining directives are
/// attached as attributes. The task loop's tile (a runtime-bounded loop)
/// always stays an attribute — it is realized by the runtime's batch
/// staging, not by loop restructuring.
///
/// Statically reports every [`TransformError`] that `config`'s tile and
/// unroll factors would raise against `f`, without mutating anything.
///
/// This mirrors what [`tile_loop`] / [`unroll_loop`] would reject, in the
/// order they check: factor range first, divisibility second. Loops the
/// config names that do not exist in `f` are skipped (the appliers ignore
/// them), and loops without a compile-time trip count — the task loop,
/// whose factors are realized as attributes and batch staging — are
/// skipped too, matching [`apply_structural`]'s pre-filter.
pub fn check_factors(f: &CFunction, config: &DesignConfig) -> Vec<TransformError> {
    let mut errors = Vec::new();
    for (&id, d) in &config.loops {
        let tc = match f.loop_stmt(id) {
            Some(Stmt::For { trip_count, .. }) => *trip_count,
            _ => continue,
        };
        let Some(tc) = tc else { continue };
        if let Some(t) = d.tile {
            if t <= 1 || t >= tc {
                errors.push(TransformError::BadFactor { id, factor: t });
            } else if tc % t != 0 {
                errors.push(TransformError::NonDividingFactor { id, tc, factor: t });
            }
        }
        let u = d.parallel_factor();
        if u > tc {
            errors.push(TransformError::BadFactor { id, factor: u });
        } else if tc % u != 0 {
            errors.push(TransformError::NonDividingFactor { id, tc, factor: u });
        }
    }
    errors
}

/// Applies a configuration *structurally* where possible: inner loops with
/// a constant trip count divisible by their tile factor are actually split
/// (the Merlin source-to-source rewrite), and the remaining directives are
/// attached as attributes. The task loop's tile (a runtime-bounded loop)
/// always stays an attribute — it is realized by the runtime's batch
/// staging, not by loop restructuring.
///
/// Returns the transformed function and the report of what was applied.
/// Structural rewrites preserve semantics (property-tested), so the result
/// is safe to execute and to ship as the final design source.
pub fn apply_structural(f: &CFunction, config: &DesignConfig) -> (CFunction, TransformReport) {
    let mut out = f.clone();
    let mut report = TransformReport::default();
    // Structural tiling first: it creates fresh inner loops, so directives
    // are re-applied afterwards against the surviving loop ids.
    let mut remaining = config.clone();
    for (&id, d) in &config.loops {
        let Some(t) = d.tile else { continue };
        let tc = match out.loop_stmt(id) {
            Some(Stmt::For { trip_count, .. }) => *trip_count,
            _ => None,
        };
        let Some(tc) = tc else { continue };
        if t > 1 && t < tc && tc % t == 0 {
            if let Ok(inner) = tile_loop(&mut out, id, t) {
                report.applied.push(format!(
                    "{id}: structural tile factor={t} (new inner {inner})"
                ));
                if let Some(dir) = remaining.loops.get_mut(&id) {
                    // the factor is now realized in the structure
                    dir.tile = None;
                }
            }
        }
    }
    let attr_report = apply_directives(&mut out, &remaining);
    report.applied.extend(attr_report.applied);
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{CType, CVal, Executor, LoopAttrs, Param, ParamKind, PipelineMode};
    use std::collections::BTreeMap;

    /// out[i] = in[i] + i, for i in 0..16
    fn add_index_kernel() -> CFunction {
        CFunction {
            name: "k".into(),
            params: vec![
                Param {
                    name: "in_1".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::counted_for(
                LoopId(0),
                "i",
                16,
                vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::iadd(Expr::index("in_1", Expr::var("i")), Expr::var("i")),
                }],
            )],
        }
    }

    fn run(f: &CFunction) -> Vec<CVal> {
        let mut buffers = BTreeMap::new();
        buffers.insert(
            "in_1".to_string(),
            (0..16).map(|v| CVal::I(v * 10)).collect::<Vec<_>>(),
        );
        buffers.insert("out_1".to_string(), vec![CVal::I(0); 16]);
        Executor::new(f)
            .run(&BTreeMap::new(), &mut buffers)
            .unwrap();
        buffers.remove("out_1").unwrap()
    }

    #[test]
    fn check_factors_mirrors_the_appliers() {
        let base = add_index_kernel();
        // tc = 16: tile 4 and parallel 8 are clean
        let mut ok = DesignConfig::new();
        ok.loop_directive_mut(LoopId(0)).tile = Some(4);
        ok.loop_directive_mut(LoopId(0)).parallel = 8;
        assert!(check_factors(&base, &ok).is_empty());

        // non-dividing tile, out-of-range parallel
        let mut bad = DesignConfig::new();
        bad.loop_directive_mut(LoopId(0)).tile = Some(3);
        bad.loop_directive_mut(LoopId(0)).parallel = 32;
        let errs = check_factors(&base, &bad);
        assert_eq!(errs.len(), 2);
        assert!(errs.iter().any(|e| matches!(
            e,
            TransformError::NonDividingFactor {
                tc: 16,
                factor: 3,
                ..
            }
        )));
        assert!(errs
            .iter()
            .any(|e| matches!(e, TransformError::BadFactor { factor: 32, .. })));
        // each reported factor is exactly what the applier rejects
        let mut f = base.clone();
        assert!(tile_loop(&mut f, LoopId(0), 3).is_err());
        assert!(unroll_loop(&mut f, LoopId(0), 32).is_err());

        // unknown loop ids are ignored, like apply_directives
        let mut ghost = DesignConfig::new();
        ghost.loop_directive_mut(LoopId(99)).tile = Some(3);
        assert!(check_factors(&base, &ghost).is_empty());
    }

    #[test]
    fn tiling_preserves_semantics() {
        let base = add_index_kernel();
        let expected = run(&base);
        let mut tiled = base.clone();
        let inner = tile_loop(&mut tiled, LoopId(0), 4).unwrap();
        assert_ne!(inner, LoopId(0));
        assert_eq!(tiled.loop_ids().len(), 2);
        assert_eq!(run(&tiled), expected);
    }

    #[test]
    fn unrolling_preserves_semantics() {
        let base = add_index_kernel();
        let expected = run(&base);
        for factor in [2, 4, 8, 16] {
            let mut u = base.clone();
            unroll_loop(&mut u, LoopId(0), factor).unwrap();
            assert_eq!(run(&u), expected, "factor {factor}");
        }
    }

    #[test]
    fn tile_then_unroll_inner() {
        let base = add_index_kernel();
        let expected = run(&base);
        let mut t = base.clone();
        let inner = tile_loop(&mut t, LoopId(0), 8).unwrap();
        unroll_loop(&mut t, inner, 8).unwrap();
        assert_eq!(run(&t), expected);
    }

    #[test]
    fn non_dividing_factor_rejected() {
        let mut f = add_index_kernel();
        assert!(matches!(
            tile_loop(&mut f, LoopId(0), 3),
            Err(TransformError::NonDividingFactor { .. })
        ));
        assert!(matches!(
            unroll_loop(&mut f, LoopId(0), 5),
            Err(TransformError::NonDividingFactor { .. })
        ));
    }

    #[test]
    fn bad_loop_and_factor_errors() {
        let mut f = add_index_kernel();
        assert!(matches!(
            tile_loop(&mut f, LoopId(7), 4),
            Err(TransformError::NoSuchLoop(_))
        ));
        assert!(matches!(
            tile_loop(&mut f, LoopId(0), 1),
            Err(TransformError::BadFactor { .. })
        ));
        assert!(matches!(
            tile_loop(&mut f, LoopId(0), 16),
            Err(TransformError::BadFactor { .. })
        ));
    }

    #[test]
    fn directives_set_attrs_and_report() {
        let mut f = add_index_kernel();
        let mut cfg = DesignConfig::new();
        {
            let d = cfg.loop_directive_mut(LoopId(0));
            d.parallel = 4;
            d.pipeline = PipelineMode::On;
            d.tile = Some(8);
        }
        let report = apply_directives(&mut f, &cfg);
        assert_eq!(report.applied.len(), 3);
        if let Some(Stmt::For { attrs, .. }) = f.loop_stmt(LoopId(0)) {
            assert_eq!(
                *attrs,
                LoopAttrs {
                    pipeline: PipelineMode::On,
                    parallel: 4,
                    tile: Some(8),
                    tree_reduce: false
                }
            );
        } else {
            panic!("loop missing");
        }
    }

    #[test]
    fn directives_for_unknown_loops_ignored() {
        let mut f = add_index_kernel();
        let mut cfg = DesignConfig::new();
        cfg.loop_directive_mut(LoopId(42)).parallel = 4;
        let report = apply_directives(&mut f, &cfg);
        assert!(report.applied.is_empty());
    }
}
