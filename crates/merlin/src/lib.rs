#![warn(missing_docs)]

//! # s2fa-merlin — the Merlin-compiler transformation library substitute
//!
//! S2FA includes "a transformation library of the Merlin compiler ... for
//! C/C++ to FPGA compilation, to include code transformation into the design
//! space. The Merlin transformation library provides a set of pragmas for
//! useful code transformations such as loop tiling, tree reduction,
//! coarse-grained parallelism, and so forth" (§3.2).
//!
//! This crate provides that vocabulary over the `s2fa-hlsir` AST:
//!
//! * [`DesignConfig`] — one point of Table 1's design space: per-loop
//!   {tile, parallel, pipeline} directives plus per-buffer bit-widths;
//! * [`DesignConfig::normalize`] — the factor-dependency rules (Impediment
//!   2): a `flatten` pipeline invalidates every directive of its sub-loops,
//!   parallelization of a non-reducible recurrence is rejected, factors are
//!   clamped to trip counts;
//! * [`transform`] — real source-to-source rewrites (tiling, unrolling,
//!   directive application) producing the final HLS C the user would ship;
//! * seed constructors ([`DesignConfig::perf_seed`],
//!   [`DesignConfig::area_seed`]) used by the DSE seed-generation strategy
//!   (§4.3.2).

pub mod config;
pub mod transform;

pub use config::{DesignConfig, LoopDirective};
pub use transform::{
    apply_directives, apply_structural, check_factors, tile_loop, unroll_loop, TransformError,
    TransformReport,
};
