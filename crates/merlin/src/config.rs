//! Design configurations — points of Table 1's design space.

use s2fa_hlsir::{BufferDir, KernelSummary, LoopId, PipelineMode};
use std::collections::BTreeMap;
use std::fmt;

/// Directives applied to one loop (one row of Table 1 per factor family).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopDirective {
    /// Loop tiling factor `t`, `1 < t < TC(L)`; `None` = off.
    pub tile: Option<u32>,
    /// Parallel (coarse-/fine-grained unroll) factor `u`; 1 = off.
    pub parallel: u32,
    /// Pipeline mode `p ∈ {on, off, flatten}`.
    pub pipeline: PipelineMode,
    /// Tree-reduction rewrite of the loop's accumulation.
    pub tree_reduce: bool,
}

impl LoopDirective {
    /// The all-off directive.
    pub fn none() -> Self {
        Self::default()
    }

    /// Effective parallel factor (≥ 1).
    pub fn parallel_factor(&self) -> u32 {
        self.parallel.max(1)
    }
}

/// A complete design point: directives for every loop plus interface buffer
/// bit-widths.
///
/// Buffer bit-width is the off-chip port width `b = 2^n, 8 < b ≤ 512`
/// (Table 1); wider ports move more bytes per cycle.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DesignConfig {
    /// Per-loop directives (absent loop = all off).
    pub loops: BTreeMap<LoopId, LoopDirective>,
    /// Interface buffer name → port bit-width.
    pub buffer_bits: BTreeMap<String, u32>,
}

/// Minimum configurable port width.
pub const MIN_BUFFER_BITS: u32 = 16;
/// Maximum configurable port width (one AXI beat on the F1 shell).
pub const MAX_BUFFER_BITS: u32 = 512;
/// The parallel factor of the performance-driven seed (§4.3.2).
pub const PERF_SEED_PARALLEL: u32 = 32;

impl DesignConfig {
    /// The empty (all-off) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Directive of a loop (all-off if unset).
    pub fn loop_directive(&self, id: LoopId) -> LoopDirective {
        self.loops.get(&id).copied().unwrap_or_default()
    }

    /// Mutable directive accessor, inserting the default if absent.
    pub fn loop_directive_mut(&mut self, id: LoopId) -> &mut LoopDirective {
        self.loops.entry(id).or_default()
    }

    /// Port width of a buffer (minimum width if unset).
    pub fn buffer_width(&self, name: &str) -> u32 {
        self.buffer_bits
            .get(name)
            .copied()
            .unwrap_or(MIN_BUFFER_BITS)
    }

    /// The *area-driven* seed (§4.3.2): "disable all optimizations so all
    /// loops are performed sequentially and all off-chip buffers are set to
    /// the minimum bit-width" — guaranteed feasible.
    pub fn area_seed(summary: &KernelSummary) -> Self {
        let mut cfg = DesignConfig::new();
        for l in &summary.loops {
            cfg.loops.insert(l.id, LoopDirective::none());
        }
        for b in &summary.buffers {
            if b.dir != BufferDir::Local {
                cfg.buffer_bits
                    .insert(b.name.clone(), b.elem_bits.max(MIN_BUFFER_BITS));
            }
        }
        cfg
    }

    /// The *performance-driven* seed (§4.3.2): "enable pipelining for all
    /// loops, set the parallel factor of every loop to 32, and set the
    /// buffer bit-width to 512" — may fail synthesis but converges fast
    /// when it doesn't.
    pub fn perf_seed(summary: &KernelSummary) -> Self {
        let mut cfg = DesignConfig::new();
        for l in &summary.loops {
            cfg.loops.insert(
                l.id,
                LoopDirective {
                    tile: None,
                    parallel: PERF_SEED_PARALLEL.min(l.trip_count.max(1)),
                    pipeline: PipelineMode::On,
                    tree_reduce: l.carried.as_ref().is_some_and(|c| c.reducible),
                },
            );
        }
        for b in &summary.buffers {
            if b.dir != BufferDir::Local {
                cfg.buffer_bits.insert(b.name.clone(), MAX_BUFFER_BITS);
            }
        }
        cfg
    }

    /// Enforces the factor-dependency rules of the design space
    /// (Impediment 2), returning the list of adjustments made:
    ///
    /// * `flatten` on a loop **invalidates every directive of its
    ///   descendants** (they are fully unrolled by definition);
    /// * a parallel factor on a loop whose recurrence is *not* reducible is
    ///   reset (the transformation is illegal without tree reduction);
    /// * `tree_reduce` is dropped where no reducible recurrence exists;
    /// * tile/parallel factors are clamped to the loop trip count.
    pub fn normalize(&mut self, summary: &KernelSummary) -> Vec<String> {
        let mut notes = Vec::new();
        // Clamp factors and legality per loop.
        for l in &summary.loops {
            let d = self.loops.entry(l.id).or_default();
            if d.parallel > l.trip_count {
                notes.push(format!(
                    "{}: parallel {} clamped to trip count {}",
                    l.id, d.parallel, l.trip_count
                ));
                d.parallel = l.trip_count.max(1);
            }
            if let Some(t) = d.tile {
                if t <= 1 || t >= l.trip_count {
                    notes.push(format!("{}: tile {} out of (1, TC) — dropped", l.id, t));
                    d.tile = None;
                }
            }
            match &l.carried {
                Some(c) if !c.reducible => {
                    if d.parallel > 1 {
                        notes.push(format!(
                            "{}: parallel on non-reducible recurrence via `{}` — reset",
                            l.id, c.via
                        ));
                        d.parallel = 1;
                    }
                    if d.tree_reduce {
                        notes.push(format!("{}: tree reduction illegal — dropped", l.id));
                        d.tree_reduce = false;
                    }
                }
                Some(c) if c.reducible => {
                    // Parallelizing a reduction requires the tree rewrite.
                    if d.parallel > 1 && !d.tree_reduce {
                        d.tree_reduce = true;
                        notes.push(format!(
                            "{}: parallel reduction implies tree reduction",
                            l.id
                        ));
                    }
                }
                _ => {
                    if d.tree_reduce {
                        notes.push(format!("{}: no recurrence — tree reduction dropped", l.id));
                        d.tree_reduce = false;
                    }
                }
            }
        }
        // Flatten invalidates descendants (top-down so nested flattens
        // collapse deterministically).
        for l in &summary.loops {
            if self.loop_directive(l.id).pipeline == PipelineMode::Flatten {
                for c in summary.descendants(l.id) {
                    let d = self.loops.entry(c).or_default();
                    if *d != LoopDirective::none() {
                        notes.push(format!("{c}: invalidated by flatten on {}", l.id));
                    }
                    *d = LoopDirective::none();
                }
            }
        }
        // Clamp buffer widths into range and to powers of two.
        for (name, bits) in self.buffer_bits.iter_mut() {
            let clamped = bits
                .next_power_of_two()
                .clamp(MIN_BUFFER_BITS, MAX_BUFFER_BITS);
            if clamped != *bits {
                notes.push(format!("{name}: width {bits} adjusted to {clamped}"));
                *bits = clamped;
            }
        }
        notes
    }

    /// A short one-line summary of the configuration (for traces/logs).
    pub fn brief(&self) -> String {
        let loops = self
            .loops
            .iter()
            .map(|(id, d)| {
                format!(
                    "{id}:p{}{}{}{}",
                    d.parallel_factor(),
                    match d.pipeline {
                        PipelineMode::Off => "",
                        PipelineMode::On => "+pipe",
                        PipelineMode::Flatten => "+flat",
                    },
                    d.tile.map(|t| format!("+t{t}")).unwrap_or_default(),
                    if d.tree_reduce { "+tree" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        let bufs = self
            .buffer_bits
            .iter()
            .map(|(n, b)| format!("{n}:{b}b"))
            .collect::<Vec<_>>()
            .join(" ");
        format!("[{loops} | {bufs}]")
    }
}

impl fmt::Display for DesignConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.brief())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{Access, BufferInfo, CarriedDep, LoopInfo, OpCounts, Stride};

    fn summary() -> KernelSummary {
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        KernelSummary {
            name: "k".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "i".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: OpCounts::new(),
                    accesses: vec![],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 8,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: OpCounts::new(),
                    accesses: vec![Access {
                        buffer: "in_1".into(),
                        write: false,
                        stride: Stride::Unit,
                    }],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 8,
                dir: BufferDir::In,
                broadcast: false,
            }],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn seeds_match_paper() {
        let s = summary();
        let perf = DesignConfig::perf_seed(&s);
        assert_eq!(perf.loop_directive(LoopId(0)).parallel, 32);
        // clamped to the 8-iteration inner loop
        assert_eq!(perf.loop_directive(LoopId(1)).parallel, 8);
        assert_eq!(perf.loop_directive(LoopId(0)).pipeline, PipelineMode::On);
        assert_eq!(perf.buffer_width("in_1"), 512);

        let area = DesignConfig::area_seed(&s);
        assert_eq!(area.loop_directive(LoopId(0)), LoopDirective::none());
        assert_eq!(area.buffer_width("in_1"), 32);
    }

    #[test]
    fn flatten_invalidates_descendants() {
        let s = summary();
        let mut cfg = DesignConfig::perf_seed(&s);
        cfg.loop_directive_mut(LoopId(0)).pipeline = PipelineMode::Flatten;
        let notes = cfg.normalize(&s);
        assert_eq!(cfg.loop_directive(LoopId(1)), LoopDirective::none());
        assert!(notes.iter().any(|n| n.contains("invalidated by flatten")));
    }

    #[test]
    fn parallel_clamped_to_trip_count() {
        let s = summary();
        let mut cfg = DesignConfig::new();
        cfg.loop_directive_mut(LoopId(1)).parallel = 999;
        cfg.normalize(&s);
        assert_eq!(cfg.loop_directive(LoopId(1)).parallel, 8);
    }

    #[test]
    fn parallel_reduction_requires_tree() {
        let s = summary();
        let mut cfg = DesignConfig::new();
        cfg.loop_directive_mut(LoopId(1)).parallel = 4;
        cfg.normalize(&s);
        assert!(cfg.loop_directive(LoopId(1)).tree_reduce);
    }

    #[test]
    fn non_reducible_recurrence_blocks_parallel() {
        let mut s = summary();
        s.loops[1].carried.as_mut().unwrap().reducible = false;
        let mut cfg = DesignConfig::new();
        cfg.loop_directive_mut(LoopId(1)).parallel = 4;
        cfg.loop_directive_mut(LoopId(1)).tree_reduce = true;
        let notes = cfg.normalize(&s);
        assert_eq!(cfg.loop_directive(LoopId(1)).parallel, 1);
        assert!(!cfg.loop_directive(LoopId(1)).tree_reduce);
        assert!(!notes.is_empty());
    }

    #[test]
    fn bad_tile_dropped_and_width_clamped() {
        let s = summary();
        let mut cfg = DesignConfig::new();
        cfg.loop_directive_mut(LoopId(1)).tile = Some(8); // == TC → dropped
        cfg.buffer_bits.insert("in_1".into(), 100); // → 128
        cfg.normalize(&s);
        assert_eq!(cfg.loop_directive(LoopId(1)).tile, None);
        assert_eq!(cfg.buffer_width("in_1"), 128);
    }

    #[test]
    fn brief_is_compact() {
        let s = summary();
        let cfg = DesignConfig::perf_seed(&s);
        let b = cfg.brief();
        assert!(b.contains("L0:p32+pipe"));
        assert!(b.contains("in_1:512b"));
    }
}
