//! Property tests for the JVM substrate: the builder always produces
//! verifiable bytecode, and the interpreter implements the documented
//! numeric semantics.

use proptest::prelude::*;
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{verify, ClassTable, HostValue, Interp, JType, MethodTable, NumKind};

/// A small random integer expression over one parameter.
#[derive(Debug, Clone)]
enum E {
    X,
    C(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Neg(Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Abs(Box<E>),
    Sel(Box<E>, Box<E>, Box<E>),
}

fn strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), any::<i8>().prop_map(E::C)];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Abs(Box::new(a))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| E::Sel(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn to_builder(e: &E, x: s2fa_sjvm::builder::LocalId) -> Expr {
    match e {
        E::X => Expr::local(x),
        E::C(v) => Expr::const_i(*v as i64),
        E::Add(a, b) => to_builder(a, x).add(to_builder(b, x)),
        E::Sub(a, b) => to_builder(a, x).sub(to_builder(b, x)),
        E::Mul(a, b) => to_builder(a, x).mul(to_builder(b, x)),
        E::Neg(a) => to_builder(a, x).neg(),
        E::Min(a, b) => to_builder(a, x).min(to_builder(b, x)),
        E::Max(a, b) => to_builder(a, x).max(to_builder(b, x)),
        E::Abs(a) => to_builder(a, x).abs(),
        E::Sel(c, a, b) => Expr::select(
            to_builder(c, x).lt(Expr::const_i(0)),
            to_builder(a, x),
            to_builder(b, x),
        ),
    }
}

/// Reference evaluation with the documented `Int` semantics (wrap at 32
/// bits after every arithmetic operation).
fn eval(e: &E, x: i32) -> i32 {
    match e {
        E::X => x,
        E::C(v) => *v as i32,
        E::Add(a, b) => eval(a, x).wrapping_add(eval(b, x)),
        E::Sub(a, b) => eval(a, x).wrapping_sub(eval(b, x)),
        E::Mul(a, b) => eval(a, x).wrapping_mul(eval(b, x)),
        E::Neg(a) => eval(a, x).wrapping_neg(),
        E::Min(a, b) => eval(a, x).min(eval(b, x)),
        E::Max(a, b) => eval(a, x).max(eval(b, x)),
        E::Abs(a) => eval(a, x).wrapping_abs(),
        E::Sel(c, a, b) => {
            if eval(c, x) < 0 {
                eval(a, x)
            } else {
                eval(b, x)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn builder_output_always_verifies(e in strategy()) {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("f", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        let body = to_builder(&e, x);
        b.ret(body);
        let id = b.finish(&mut classes, &mut methods).expect("builds");
        verify::verify_method(methods.get(id), &methods).expect("verifies");
        // max stack is bounded and sane
        let depth = verify::max_stack(methods.get(id), &methods);
        prop_assert!(depth >= 1);
    }

    #[test]
    fn interpreter_matches_wrapping_reference(e in strategy(), x in any::<i16>()) {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("f", &[("x", JType::Int)], Some(JType::Int));
        let xl = b.param(0);
        let body = to_builder(&e, xl);
        b.ret(body);
        let id = b.finish(&mut classes, &mut methods).expect("builds");
        let mut interp = Interp::new(&classes, &methods);
        let (out, stats) = interp.run(id, &[HostValue::I(x as i64)]).expect("runs");
        prop_assert_eq!(out.as_i64(), Some(eval(&e, x as i32) as i64));
        prop_assert!(stats.ns > 0.0);
        prop_assert!(stats.instructions > 0);
    }

    #[test]
    fn interpreter_is_deterministic(e in strategy(), x in any::<i16>()) {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("f", &[("x", JType::Int)], Some(JType::Int));
        let xl = b.param(0);
        let body = to_builder(&e, xl);
        b.ret(body);
        let id = b.finish(&mut classes, &mut methods).expect("builds");
        let mut interp = Interp::new(&classes, &methods);
        let a = interp.run(id, &[HostValue::I(x as i64)]).expect("runs");
        let b2 = interp.run(id, &[HostValue::I(x as i64)]).expect("runs");
        prop_assert_eq!(a.0, b2.0);
        prop_assert_eq!(a.1.instructions, b2.1.instructions);
    }

    #[test]
    fn long_arithmetic_does_not_wrap_at_32(a in any::<i32>(), b in any::<i32>()) {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut fb = FnBuilder::new(
            "f",
            &[("a", JType::Long), ("b", JType::Long)],
            Some(JType::Long),
        );
        let pa = fb.param(0);
        let pb = fb.param(1);
        fb.ret(Expr::local(pa).add(Expr::local(pb)));
        let id = fb.finish(&mut classes, &mut methods).expect("builds");
        let mut interp = Interp::new(&classes, &methods);
        let (out, _) = interp
            .run(id, &[HostValue::I(a as i64), HostValue::I(b as i64)])
            .expect("runs");
        prop_assert_eq!(out.as_i64(), Some(a as i64 + b as i64));
        // literal kind helper is consistent
        prop_assert_eq!(NumKind::Long.jtype(), JType::Long);
    }
}
