#![warn(missing_docs)]

//! # s2fa-sjvm — the JVM substrate of the S2FA reproduction
//!
//! S2FA's input is the *JVM bytecode* of a Scala lambda written inside a
//! Spark RDD transformation. Since no Scala/JVM frontend exists in the Rust
//! ecosystem, this crate provides the closest synthetic equivalent that
//! exercises the same code path:
//!
//! * a class model with object-oriented constructs (tuples, object arrays,
//!   fields, virtual methods, constructors) — the "semantic gap" of the
//!   paper's Challenge 1 exists in full;
//! * a stack-machine bytecode ([`Op`]) closely modelled on the JVM;
//! * a structured kernel-builder DSL ([`builder::FnBuilder`]) standing in for
//!   `scalac`: workloads are authored against the DSL and lowered to
//!   bytecode, exactly as Scala lambdas are lowered by the Scala compiler;
//! * a bytecode [verifier](verify) and an [interpreter](interp) with a
//!   calibrated per-opcode JVM cost model — the single-threaded JVM executor
//!   that all Fig. 4 speedups are normalized against.
//!
//! The bytecode-to-C compiler in the `s2fa` crate consumes [`Method`] values
//! produced here; it never sees the builder, only bytecode.
//!
//! ```
//! use s2fa_sjvm::builder::{FnBuilder, Expr};
//! use s2fa_sjvm::{ClassTable, JType, MethodTable};
//!
//! let mut classes = ClassTable::new();
//! let mut methods = MethodTable::new();
//! let mut f = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
//! let x = f.param(0);
//! f.ret(Expr::local(x).mul(Expr::const_i(3)).add(Expr::const_i(1)));
//! let m = f.finish(&mut classes, &mut methods)?;
//! # Ok::<(), s2fa_sjvm::SjvmError>(())
//! ```

pub mod builder;
pub mod bytecode;
pub mod class;
pub mod cost;
pub mod host;
pub mod interp;
pub mod kernel;
pub mod method;
pub mod ty;
pub mod verify;

mod error;

pub use bytecode::{Cond, MathFn, NumKind, Op};
pub use class::{ClassDef, ClassId, ClassTable, FieldDef};
pub use cost::JvmCostModel;
pub use error::SjvmError;
pub use host::HostValue;
pub use interp::{ExecStats, Interp, Value};
pub use kernel::{KernelSpec, RddOp, Shape, ShapeLeaf};
pub use method::{Method, MethodId, MethodTable};
pub use ty::JType;
