//! Class definitions and the class table.
//!
//! S2FA kernels use object-oriented constructs — tuples, case-class-like
//! records, object arrays — which the bytecode-to-C compiler must flatten
//! away (the paper's Challenge 1). This module models the minimum of the
//! JVM class system needed to pose that problem: named classes with typed
//! fields and virtual methods.
//!
//! Generic classes such as `scala.Tuple2[A, B]` are represented
//! *monomorphized*: each distinct instantiation is a separate [`ClassDef`]
//! (e.g. `Tuple2$FF` for `(Float, Float)`). This mirrors what the S2FA
//! compiler reconstructs from erased bytecode plus the type-parameter
//! descriptions it requires (§3.3 "Library calls").

use crate::method::MethodId;
use crate::ty::JType;
use crate::SjvmError;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a class in a [`ClassTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// A field of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name (e.g. `_1` for the first element of a tuple).
    pub name: String,
    /// Declared type.
    pub ty: JType,
}

/// A class definition: an ordered list of fields plus virtual methods.
#[derive(Debug, Clone)]
pub struct ClassDef {
    /// Fully qualified name, e.g. `scala.Tuple2$DD`.
    pub name: String,
    /// Ordered fields; the constructor assigns them positionally.
    pub fields: Vec<FieldDef>,
    /// Virtual methods: name → method id in the [`MethodTable`].
    ///
    /// [`MethodTable`]: crate::method::MethodTable
    pub methods: HashMap<String, MethodId>,
}

impl ClassDef {
    /// Index of the field named `name`.
    pub fn field_index(&self, name: &str) -> Option<u16> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u16)
    }
}

/// Registry of class definitions.
///
/// ```
/// use s2fa_sjvm::{ClassTable, JType};
///
/// let mut classes = ClassTable::new();
/// let pair = classes.define_tuple2(JType::Float, JType::Float);
/// assert_eq!(classes.get(pair).fields.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    defs: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
}

impl ClassTable {
    /// Creates an empty class table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines a new class.
    ///
    /// # Errors
    ///
    /// Returns [`SjvmError::DuplicateClass`] if a class with the same name
    /// already exists.
    pub fn define(
        &mut self,
        name: impl Into<String>,
        fields: Vec<FieldDef>,
    ) -> Result<ClassId, SjvmError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(SjvmError::DuplicateClass(name));
        }
        let id = ClassId(self.defs.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.defs.push(ClassDef {
            name,
            fields,
            methods: HashMap::new(),
        });
        Ok(id)
    }

    /// Defines (or returns the existing) monomorphized `scala.Tuple2`
    /// instantiation for element types `(a, b)`.
    pub fn define_tuple2(&mut self, a: JType, b: JType) -> ClassId {
        let name = format!("scala.Tuple2${}${}", mangle(&a), mangle(&b));
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        self.define(
            name,
            vec![
                FieldDef {
                    name: "_1".into(),
                    ty: a,
                },
                FieldDef {
                    name: "_2".into(),
                    ty: b,
                },
            ],
        )
        .expect("tuple class name is fresh")
    }

    /// Defines (or returns the existing) monomorphized `scala.Tuple3`.
    pub fn define_tuple3(&mut self, a: JType, b: JType, c: JType) -> ClassId {
        let name = format!("scala.Tuple3${}${}${}", mangle(&a), mangle(&b), mangle(&c));
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        self.define(
            name,
            vec![
                FieldDef {
                    name: "_1".into(),
                    ty: a,
                },
                FieldDef {
                    name: "_2".into(),
                    ty: b,
                },
                FieldDef {
                    name: "_3".into(),
                    ty: c,
                },
            ],
        )
        .expect("tuple class name is fresh")
    }

    /// Attaches a virtual method to a class.
    pub fn add_method(&mut self, class: ClassId, name: impl Into<String>, method: MethodId) {
        self.defs[class.0 as usize]
            .methods
            .insert(name.into(), method);
    }

    /// Looks a class up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: ClassId) -> &ClassDef {
        &self.defs[id.0 as usize]
    }

    /// Looks a class up by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Number of classes defined.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no class has been defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.defs
            .iter()
            .enumerate()
            .map(|(i, d)| (ClassId(i as u32), d))
    }
}

fn mangle(ty: &JType) -> String {
    match ty {
        JType::Boolean => "Z".into(),
        JType::Byte => "B".into(),
        JType::Char => "C".into(),
        JType::Short => "S".into(),
        JType::Int => "I".into(),
        JType::Long => "J".into(),
        JType::Float => "F".into(),
        JType::Double => "D".into(),
        JType::Ref(id) => format!("L{}", id.0),
        JType::Array(e) => format!("A{}", mangle(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn define_and_lookup() {
        let mut t = ClassTable::new();
        let id = t
            .define(
                "Point",
                vec![
                    FieldDef {
                        name: "x".into(),
                        ty: JType::Double,
                    },
                    FieldDef {
                        name: "y".into(),
                        ty: JType::Double,
                    },
                ],
            )
            .unwrap();
        assert_eq!(t.by_name("Point"), Some(id));
        assert_eq!(t.get(id).field_index("y"), Some(1));
        assert_eq!(t.get(id).field_index("z"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn duplicate_class_rejected() {
        let mut t = ClassTable::new();
        t.define("A", vec![]).unwrap();
        assert!(matches!(
            t.define("A", vec![]),
            Err(SjvmError::DuplicateClass(_))
        ));
    }

    #[test]
    fn tuple2_is_memoized() {
        let mut t = ClassTable::new();
        let a = t.define_tuple2(JType::Float, JType::Int);
        let b = t.define_tuple2(JType::Float, JType::Int);
        let c = t.define_tuple2(JType::Int, JType::Float);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(t.get(a).fields[0].name, "_1");
    }

    #[test]
    fn tuple_of_arrays_mangles_uniquely() {
        let mut t = ClassTable::new();
        let a = t.define_tuple2(JType::array(JType::Byte), JType::Int);
        let b = t.define_tuple2(JType::Byte, JType::array(JType::Int));
        assert_ne!(a, b);
    }

    #[test]
    fn tuple3_fields() {
        let mut t = ClassTable::new();
        let id = t.define_tuple3(JType::Int, JType::Int, JType::Double);
        let d = t.get(id);
        assert_eq!(d.fields.len(), 3);
        assert_eq!(d.fields[2].ty, JType::Double);
    }
}
