//! The stack-machine bytecode.
//!
//! The instruction set is modelled on the JVM: an operand stack, a local
//! variable array, typed arithmetic, field access, object/array allocation,
//! virtual dispatch, and conditional branches with absolute instruction
//! targets. It deviates from the real JVM only where the deviation is
//! irrelevant to the compilation problem (single-slot longs/doubles, merged
//! `iadd`/`ladd`/... into [`Op::Add`] with a [`NumKind`] tag).

use crate::class::ClassId;
use crate::method::MethodId;
use crate::ty::JType;
use std::fmt;

/// Numeric kind tag on arithmetic instructions (the `i`/`l`/`f`/`d` prefix
/// of JVM opcodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumKind {
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
}

impl NumKind {
    /// The corresponding [`JType`].
    pub fn jtype(self) -> JType {
        match self {
            NumKind::Int => JType::Int,
            NumKind::Long => JType::Long,
            NumKind::Float => JType::Float,
            NumKind::Double => JType::Double,
        }
    }

    /// True for `Float`/`Double`.
    pub fn is_float(self) -> bool {
        matches!(self, NumKind::Float | NumKind::Double)
    }
}

/// Comparison condition for branch instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Cond {
    /// Logical negation of the condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }

    /// Evaluates the condition over an ordering-like signum (-1, 0, 1).
    pub fn holds(self, signum: i32) -> bool {
        match self {
            Cond::Eq => signum == 0,
            Cond::Ne => signum != 0,
            Cond::Lt => signum < 0,
            Cond::Le => signum <= 0,
            Cond::Gt => signum > 0,
            Cond::Ge => signum >= 0,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "==",
            Cond::Ne => "!=",
            Cond::Lt => "<",
            Cond::Le => "<=",
            Cond::Gt => ">",
            Cond::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Intrinsic math functions (`java.lang.Math` statics the compiler knows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MathFn {
    /// `Math.exp` — 1 argument.
    Exp,
    /// `Math.log` — 1 argument.
    Log,
    /// `Math.sqrt` — 1 argument.
    Sqrt,
    /// `Math.abs` — 1 argument.
    Abs,
    /// `Math.min` — 2 arguments.
    Min,
    /// `Math.max` — 2 arguments.
    Max,
}

impl MathFn {
    /// Number of operands popped from the stack.
    pub fn arity(self) -> usize {
        match self {
            MathFn::Exp | MathFn::Log | MathFn::Sqrt | MathFn::Abs => 1,
            MathFn::Min | MathFn::Max => 2,
        }
    }

    /// The `java.lang.Math` method name.
    pub fn name(self) -> &'static str {
        match self {
            MathFn::Exp => "exp",
            MathFn::Log => "log",
            MathFn::Sqrt => "sqrt",
            MathFn::Abs => "abs",
            MathFn::Min => "min",
            MathFn::Max => "max",
        }
    }
}

/// A bytecode instruction.
///
/// Branch targets are absolute indices into the method's code vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    // --- constants and locals -------------------------------------------
    /// Push an integer constant.
    ConstI(i64),
    /// Push a floating-point constant.
    ConstF(f64),
    /// Push `null`.
    ConstNull,
    /// Push local variable `n`.
    Load(u16),
    /// Pop into local variable `n`.
    Store(u16),

    // --- arrays ----------------------------------------------------------
    /// Allocate an array with a *constant* length (paper §3.3: dynamic
    /// allocation is restricted to constant sizes) and push the reference.
    NewArray {
        /// Element type.
        elem: JType,
        /// Constant length.
        len: u32,
    },
    /// Pop index, pop array ref, push element.
    ALoad,
    /// Pop value, pop index, pop array ref, store element.
    AStore,
    /// Pop array ref, push its length.
    ArrayLen,

    // --- objects ----------------------------------------------------------
    /// Allocate an instance with zeroed fields and push the reference.
    New(ClassId),
    /// Pop object ref, push field `idx`.
    GetField(ClassId, u16),
    /// Pop value, pop object ref, store field `idx`.
    PutField(ClassId, u16),
    /// Virtual call: pops the arguments then the receiver, pushes the
    /// return value (if any). `method` indexes the class's method map by
    /// declaration order; resolution is by exact class (no inheritance).
    InvokeVirtual {
        /// Statically resolved receiver class.
        class: ClassId,
        /// Resolved method id.
        method: MethodId,
    },
    /// Static call to another method in the same [`MethodTable`].
    ///
    /// [`MethodTable`]: crate::method::MethodTable
    InvokeStatic {
        /// Callee method id.
        method: MethodId,
    },

    // --- arithmetic --------------------------------------------------------
    /// Pop two, push their sum (`iadd`/`ladd`/`fadd`/`dadd`).
    Add(NumKind),
    /// Pop two, push their difference.
    Sub(NumKind),
    /// Pop two, push their product.
    Mul(NumKind),
    /// Pop two, push their quotient.
    Div(NumKind),
    /// Pop two, push the remainder.
    Rem(NumKind),
    /// Pop one, push its negation.
    Neg(NumKind),
    /// Integer shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Logical shift right.
    UShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Intrinsic math call; pops [`MathFn::arity`] operands.
    Math(MathFn, NumKind),
    /// Numeric conversion (`i2d`, `d2i`, ...).
    Cast {
        /// Source kind.
        from: NumKind,
        /// Destination kind.
        to: NumKind,
    },
    /// Pop two numbers, push their comparison signum as an `Int`
    /// (the JVM's `fcmpl`/`lcmp` family).
    Cmp(NumKind),

    // --- control flow ------------------------------------------------------
    /// Pop two values, branch to `target` if `a cond b`.
    IfCmp {
        /// Operand kind.
        kind: NumKind,
        /// Comparison to take the branch on.
        cond: Cond,
        /// Absolute branch target.
        target: u32,
    },
    /// Pop one value, branch to `target` if `v cond 0`.
    IfZero {
        /// Comparison against zero to take the branch on.
        cond: Cond,
        /// Absolute branch target.
        target: u32,
    },
    /// Unconditional branch.
    Goto(u32),
    /// Return from the method, popping the return value if non-void.
    Return,

    // --- stack management ---------------------------------------------------
    /// Discard the top of stack.
    Pop,
    /// Duplicate the top of stack.
    Dup,
}

impl Op {
    /// Branch target of this instruction, if it is a branch.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Op::IfCmp { target, .. } | Op::IfZero { target, .. } | Op::Goto(target) => {
                Some(*target)
            }
            _ => None,
        }
    }

    /// True if this instruction is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Op::IfCmp { .. } | Op::IfZero { .. })
    }

    /// True if control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Goto(_) | Op::Return)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_negate_roundtrip() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
            // negation flips truth for every signum
            for s in [-1, 0, 1] {
                assert_ne!(c.holds(s), c.negate().holds(s));
            }
        }
    }

    #[test]
    fn cond_holds() {
        assert!(Cond::Lt.holds(-1));
        assert!(!Cond::Lt.holds(0));
        assert!(Cond::Ge.holds(0));
        assert!(Cond::Ne.holds(1));
    }

    #[test]
    fn mathfn_arity() {
        assert_eq!(MathFn::Exp.arity(), 1);
        assert_eq!(MathFn::Max.arity(), 2);
        assert_eq!(MathFn::Sqrt.name(), "sqrt");
    }

    #[test]
    fn branch_metadata() {
        assert_eq!(Op::Goto(7).branch_target(), Some(7));
        assert!(Op::Goto(7).is_terminator());
        assert!(!Op::Goto(7).is_cond_branch());
        let br = Op::IfZero {
            cond: Cond::Eq,
            target: 3,
        };
        assert!(br.is_cond_branch());
        assert!(!br.is_terminator());
        assert_eq!(Op::Add(NumKind::Int).branch_target(), None);
    }

    #[test]
    fn numkind_jtype() {
        assert_eq!(NumKind::Double.jtype(), JType::Double);
        assert!(NumKind::Float.is_float());
        assert!(!NumKind::Long.is_float());
    }
}
