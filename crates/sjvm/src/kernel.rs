//! Kernel specifications — the unit handed to S2FA.
//!
//! A [`KernelSpec`] bundles everything S2FA receives for one offloaded RDD
//! transformation: the program (class + method tables), the entry lambda,
//! and the RDD operator whose semantics the compiler must reproduce with a
//! template loop (paper §3.2: "the outermost loop in kernels is always
//! inserted by our bytecode-to-C compiler").

use crate::class::ClassTable;
use crate::method::{MethodId, MethodTable};
use crate::ty::JType;

/// The concrete, fixed-size data shape of a kernel's input or output
/// element.
///
/// JVM types erase array lengths, but S2FA compiles every `new` to a
/// constant-size C array (§3.3) and its data-layout generator needs fixed
/// element counts to produce the flat accelerator interface. A [`Shape`]
/// carries the declared [`JType`] structure *plus* those lengths — the
/// information the real system recovers from type-parameter descriptions
/// and the S2FA class templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Shape {
    /// A primitive scalar.
    Scalar(JType),
    /// A primitive array with a fixed per-element length.
    Array(JType, u32),
    /// A tuple/object: ordered field shapes.
    Composite(Vec<Shape>),
    /// A *broadcast* value: identical across every record of the batch
    /// (a captured closure variable such as a weight vector or centroid
    /// array). Blaze ships broadcast data to the accelerator once per
    /// batch instead of once per task.
    Bcast(Box<Shape>),
}

/// One primitive leaf of a [`Shape`]: its field path, element type, and
/// element count (1 for scalars).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeLeaf {
    /// Field-index path from the root value to this leaf.
    pub path: Vec<usize>,
    /// Primitive element type.
    pub elem: JType,
    /// Elements per task.
    pub count: u32,
    /// True if the leaf is broadcast (shipped once per batch).
    pub broadcast: bool,
}

impl Shape {
    /// All primitive leaves in field order.
    pub fn leaves(&self) -> Vec<ShapeLeaf> {
        let mut out = Vec::new();
        fn walk(s: &Shape, path: &mut Vec<usize>, out: &mut Vec<ShapeLeaf>) {
            match s {
                Shape::Scalar(t) => out.push(ShapeLeaf {
                    path: path.clone(),
                    elem: t.clone(),
                    count: 1,
                    broadcast: false,
                }),
                Shape::Array(t, n) => out.push(ShapeLeaf {
                    path: path.clone(),
                    elem: t.clone(),
                    count: *n,
                    broadcast: false,
                }),
                Shape::Composite(fields) => {
                    for (i, f) in fields.iter().enumerate() {
                        path.push(i);
                        walk(f, path, out);
                        path.pop();
                    }
                }
                Shape::Bcast(inner) => {
                    let start = out.len();
                    walk(inner, path, out);
                    for leaf in &mut out[start..] {
                        leaf.broadcast = true;
                    }
                }
            }
        }
        walk(self, &mut Vec::new(), &mut out);
        out
    }

    /// Total primitive elements per task.
    pub fn total_elems(&self) -> u64 {
        self.leaves().iter().map(|l| l.count as u64).sum()
    }

    /// A pair shape (`Tuple2`).
    pub fn pair(a: Shape, b: Shape) -> Shape {
        Shape::Composite(vec![a, b])
    }

    /// Marks a shape as broadcast (captured closure state shared by every
    /// record of the batch).
    pub fn broadcast(inner: Shape) -> Shape {
        Shape::Bcast(Box::new(inner))
    }
}

/// The RDD transformation operator a kernel lambda is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RddOp {
    /// `rdd.map(f)` — independent per-element application.
    Map,
    /// `rdd.reduce(f)` — associative pairwise combination; the template
    /// accumulates over the batch.
    Reduce,
}

impl RddOp {
    /// Human-readable operator name.
    pub fn name(self) -> &'static str {
        match self {
            RddOp::Map => "map",
            RddOp::Reduce => "reduce",
        }
    }
}

/// A complete kernel handed to the S2FA pipeline.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    /// Kernel name, used as the Blaze accelerator id (Code 1's `id`).
    pub name: String,
    /// All classes referenced by the kernel.
    pub classes: ClassTable,
    /// All methods (the lambda plus any virtual methods it calls).
    pub methods: MethodTable,
    /// The entry lambda (`call` in the Blaze `Accelerator` interface).
    pub entry: MethodId,
    /// The RDD operator the lambda is passed to.
    pub operator: RddOp,
    /// Concrete shape of one input element.
    pub input_shape: Shape,
    /// Concrete shape of one output element.
    pub output_shape: Shape,
}

impl KernelSpec {
    /// The lambda's input element type.
    pub fn input_type(&self) -> &JType {
        &self.methods.get(self.entry).params[0]
    }

    /// The lambda's output element type, if it returns a value.
    pub fn output_type(&self) -> Option<&JType> {
        self.methods.get(self.entry).ret.as_ref()
    }

    /// Verifies every method in the kernel.
    ///
    /// # Errors
    ///
    /// Propagates the first verification failure.
    pub fn verify(&self) -> Result<(), crate::SjvmError> {
        for (_, m) in self.methods.iter() {
            crate::verify::verify_method(m, &self.methods)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Expr, FnBuilder};

    #[test]
    fn spec_exposes_signature() {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Double));
        let x = b.param(0);
        b.ret(Expr::local(x).cast(crate::NumKind::Double));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        let spec = KernelSpec {
            name: "k".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Scalar(JType::Int),
            output_shape: Shape::Scalar(JType::Double),
        };
        assert_eq!(spec.input_type(), &JType::Int);
        assert_eq!(spec.output_type(), Some(&JType::Double));
        assert_eq!(spec.operator.name(), "map");
        spec.verify().unwrap();
    }

    #[test]
    fn shape_leaves_and_paths() {
        // ((Double, [F;4]), Int)
        let s = Shape::pair(
            Shape::pair(Shape::Scalar(JType::Double), Shape::Array(JType::Float, 4)),
            Shape::Scalar(JType::Int),
        );
        let leaves = s.leaves();
        assert_eq!(leaves.len(), 3);
        assert_eq!(leaves[0].path, vec![0, 0]);
        assert_eq!(leaves[1].path, vec![0, 1]);
        assert_eq!(leaves[1].count, 4);
        assert_eq!(leaves[2].path, vec![1]);
        assert_eq!(s.total_elems(), 6);
    }
}
