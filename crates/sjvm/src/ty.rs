//! JVM-style types.

use crate::class::ClassId;
use std::fmt;

/// A JVM-style type, as carried by bytecode and class field descriptors.
///
/// Mirrors the JVM type system with one simplification: `Long` and `Double`
/// occupy a single operand-stack slot instead of two (the two-slot encoding
/// is an artifact of the real JVM's 32-bit heritage that adds nothing to the
/// compilation problem).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum JType {
    /// `boolean` (1 bit, stored as a byte).
    Boolean,
    /// `byte` — signed 8 bits.
    Byte,
    /// `char` — unsigned 16 bits (kernel strings use it as bytes).
    Char,
    /// `short` — signed 16 bits.
    Short,
    /// `int` — signed 32 bits.
    Int,
    /// `long` — signed 64 bits.
    Long,
    /// `float` — IEEE 754 single.
    Float,
    /// `double` — IEEE 754 double.
    Double,
    /// Reference to an instance of a class.
    Ref(ClassId),
    /// Array with the given element type.
    Array(Box<JType>),
}

impl JType {
    /// Shorthand for an array of `elem`.
    pub fn array(elem: JType) -> JType {
        JType::Array(Box::new(elem))
    }

    /// True for the numeric primitive types (everything except refs/arrays).
    pub fn is_primitive(&self) -> bool {
        !matches!(self, JType::Ref(_) | JType::Array(_))
    }

    /// True for `Float`/`Double`.
    pub fn is_float(&self) -> bool {
        matches!(self, JType::Float | JType::Double)
    }

    /// True for the integral primitives.
    pub fn is_integral(&self) -> bool {
        matches!(
            self,
            JType::Boolean | JType::Byte | JType::Char | JType::Short | JType::Int | JType::Long
        )
    }

    /// Bit width of a primitive value of this type.
    ///
    /// References and arrays report the width of a pointer on the simulated
    /// 64-bit JVM (64 bits).
    pub fn bits(&self) -> u32 {
        match self {
            JType::Boolean | JType::Byte => 8,
            JType::Char | JType::Short => 16,
            JType::Int | JType::Float => 32,
            JType::Long | JType::Double => 64,
            JType::Ref(_) | JType::Array(_) => 64,
        }
    }

    /// Element type if `self` is an array.
    pub fn elem(&self) -> Option<&JType> {
        match self {
            JType::Array(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for JType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JType::Boolean => write!(f, "boolean"),
            JType::Byte => write!(f, "byte"),
            JType::Char => write!(f, "char"),
            JType::Short => write!(f, "short"),
            JType::Int => write!(f, "int"),
            JType::Long => write!(f, "long"),
            JType::Float => write!(f, "float"),
            JType::Double => write!(f, "double"),
            JType::Ref(id) => write!(f, "ref#{}", id.0),
            JType::Array(e) => write!(f, "{e}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_classification() {
        assert!(JType::Int.is_primitive());
        assert!(JType::Double.is_float());
        assert!(JType::Char.is_integral());
        assert!(!JType::array(JType::Int).is_primitive());
        assert!(!JType::Ref(ClassId(0)).is_primitive());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(JType::Byte.bits(), 8);
        assert_eq!(JType::Short.bits(), 16);
        assert_eq!(JType::Int.bits(), 32);
        assert_eq!(JType::Float.bits(), 32);
        assert_eq!(JType::Long.bits(), 64);
        assert_eq!(JType::Double.bits(), 64);
        assert_eq!(JType::array(JType::Byte).bits(), 64);
    }

    #[test]
    fn array_elem() {
        let a = JType::array(JType::Float);
        assert_eq!(a.elem(), Some(&JType::Float));
        assert_eq!(JType::Int.elem(), None);
    }

    #[test]
    fn display_is_java_like() {
        assert_eq!(JType::array(JType::Int).to_string(), "int[]");
        assert_eq!(JType::Double.to_string(), "double");
    }
}
