//! Bytecode interpreter — the "JVM" of the reproduction.
//!
//! Executes verified bytecode over a managed heap. It serves two roles:
//!
//! 1. **Correctness oracle**: the bytecode-to-C compiler's output is
//!    cross-checked against this interpreter on random inputs (the C IR has
//!    its own executor in `s2fa-hlsir`).
//! 2. **JVM baseline**: execution accumulates nanoseconds from
//!    [`JvmCostModel`], producing the single-threaded Spark-executor time
//!    that Fig. 4 speedups are computed against.
//!
//! ## Numeric semantics
//!
//! `Int` arithmetic wraps at 32 bits; `Long` at 64 bits; `Float` rounds
//! through `f32`; bitwise operators act on the 64-bit two's-complement
//! representation. The HLS IR executor mirrors these semantics exactly so
//! functional equivalence is well-defined.

use crate::bytecode::{MathFn, NumKind, Op};
use crate::class::ClassTable;
use crate::cost::JvmCostModel;
use crate::host::HostValue;
use crate::method::{MethodId, MethodTable};
use crate::ty::JType;
use crate::SjvmError;

/// A runtime value on the operand stack or in a local slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integral (boolean/byte/char/short/int/long).
    I(i64),
    /// Floating (float/double).
    F(f64),
    /// Heap reference.
    Ref(usize),
    /// The null reference.
    Null,
}

impl Value {
    fn as_i(self) -> Result<i64, SjvmError> {
        match self {
            Value::I(v) => Ok(v),
            other => Err(SjvmError::Runtime(format!("expected int, got {other:?}"))),
        }
    }

    fn as_f(self) -> Result<f64, SjvmError> {
        match self {
            Value::F(v) => Ok(v),
            Value::I(v) => Ok(v as f64),
            other => Err(SjvmError::Runtime(format!("expected float, got {other:?}"))),
        }
    }

    fn as_ref(self) -> Result<usize, SjvmError> {
        match self {
            Value::Ref(r) => Ok(r),
            Value::Null => Err(SjvmError::Runtime("null pointer dereference".into())),
            other => Err(SjvmError::Runtime(format!("expected ref, got {other:?}"))),
        }
    }
}

/// A heap cell: an object with fields or an array of values.
#[derive(Debug, Clone)]
enum HeapCell {
    Obj { fields: Vec<Value> },
    Arr { elems: Vec<Value> },
}

/// Execution statistics accumulated during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Modelled JVM time in nanoseconds.
    pub ns: f64,
    /// Objects and arrays allocated.
    pub allocations: u64,
    /// Peak operand-stack + frame depth (number of nested calls).
    pub max_call_depth: u32,
}

impl ExecStats {
    /// Merges another run's statistics into `self`.
    pub fn merge(&mut self, other: &ExecStats) {
        self.instructions += other.instructions;
        self.ns += other.ns;
        self.allocations += other.allocations;
        self.max_call_depth = self.max_call_depth.max(other.max_call_depth);
    }
}

/// The interpreter. Borrows the program (classes + methods) and owns the
/// heap of the current run.
pub struct Interp<'p> {
    classes: &'p ClassTable,
    methods: &'p MethodTable,
    cost: JvmCostModel,
    heap: Vec<HeapCell>,
    stats: ExecStats,
    fuel: u64,
    depth: u32,
}

/// Default instruction budget per [`Interp::run`] call.
pub const DEFAULT_FUEL: u64 = 500_000_000;

impl<'p> Interp<'p> {
    /// Creates an interpreter with the default cost model and fuel.
    pub fn new(classes: &'p ClassTable, methods: &'p MethodTable) -> Self {
        Interp {
            classes,
            methods,
            cost: JvmCostModel::default(),
            heap: Vec::new(),
            stats: ExecStats::default(),
            fuel: DEFAULT_FUEL,
            depth: 0,
        }
    }

    /// Replaces the cost model.
    pub fn with_cost_model(mut self, cost: JvmCostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replaces the instruction budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Runs `method` with host arguments, returning the host result and the
    /// statistics of this call (heap and stats reset per call).
    ///
    /// # Errors
    ///
    /// Returns [`SjvmError::Runtime`] on dynamic faults (type confusion,
    /// out-of-bounds, null dereference, division by zero) and
    /// [`SjvmError::OutOfFuel`] if the instruction budget is exhausted.
    pub fn run(
        &mut self,
        method: MethodId,
        args: &[HostValue],
    ) -> Result<(HostValue, ExecStats), SjvmError> {
        self.heap.clear();
        self.stats = ExecStats::default();
        self.depth = 0;
        let m = self.methods.get(method);
        if args.len() != m.params.len() {
            return Err(SjvmError::Runtime(format!(
                "method `{}` takes {} arguments, got {}",
                m.name,
                m.params.len(),
                args.len()
            )));
        }
        let mut vals = Vec::with_capacity(args.len());
        // Pre-compute to avoid borrowing self.methods mutably later.
        let param_tys: Vec<JType> = m.params.clone();
        let ret_ty = m.ret.clone();
        for (a, ty) in args.iter().zip(&param_tys) {
            let v = self.host_to_value(a, ty)?;
            vals.push(v);
        }
        let result = self.call(method, &vals)?;
        let host = match (&result, &ret_ty) {
            (Some(v), Some(ty)) => self.value_to_host(*v, ty)?,
            (None, None) => HostValue::Tuple(vec![]),
            _ => {
                return Err(SjvmError::Runtime(
                    "return arity does not match signature".into(),
                ))
            }
        };
        Ok((host, self.stats))
    }

    /// Executes a method call with already-converted argument values.
    fn call(&mut self, method: MethodId, args: &[Value]) -> Result<Option<Value>, SjvmError> {
        self.depth += 1;
        self.stats.max_call_depth = self.stats.max_call_depth.max(self.depth);
        if self.depth > 256 {
            return Err(SjvmError::Runtime("call stack overflow".into()));
        }
        let m = self.methods.get(method);
        let code = m.code.clone(); // clone keeps borrowck simple; methods are small
        let has_ret = m.ret.is_some();
        let mut locals = vec![Value::I(0); m.n_locals as usize];
        locals[..args.len()].copy_from_slice(args);
        let mut stack: Vec<Value> = Vec::with_capacity(16);
        let mut pc = 0usize;
        loop {
            if self.stats.instructions >= self.fuel {
                return Err(SjvmError::OutOfFuel);
            }
            self.stats.instructions += 1;
            let op = &code[pc];
            self.stats.ns += self.cost.op_cost(op);
            macro_rules! pop {
                () => {
                    stack
                        .pop()
                        .ok_or_else(|| SjvmError::Runtime("operand stack underflow".into()))?
                };
            }
            match op {
                Op::ConstI(v) => stack.push(Value::I(*v)),
                Op::ConstF(v) => stack.push(Value::F(*v)),
                Op::ConstNull => stack.push(Value::Null),
                Op::Load(n) => stack.push(locals[*n as usize]),
                Op::Store(n) => {
                    let v = pop!();
                    locals[*n as usize] = v;
                }
                Op::NewArray { len, .. } => {
                    self.stats.allocations += 1;
                    self.stats.ns += self.cost.ns_alloc_per_slot * *len as f64;
                    let r = self.heap.len();
                    self.heap.push(HeapCell::Arr {
                        elems: vec![Value::I(0); *len as usize],
                    });
                    stack.push(Value::Ref(r));
                }
                Op::ALoad => {
                    let idx = pop!().as_i()?;
                    let arr = pop!().as_ref()?;
                    let v = match &self.heap[arr] {
                        HeapCell::Arr { elems } => *elems.get(idx as usize).ok_or_else(|| {
                            SjvmError::Runtime(format!(
                                "array index {idx} out of bounds ({})",
                                elems.len()
                            ))
                        })?,
                        _ => return Err(SjvmError::Runtime("aload on non-array".into())),
                    };
                    stack.push(v);
                }
                Op::AStore => {
                    let val = pop!();
                    let idx = pop!().as_i()?;
                    let arr = pop!().as_ref()?;
                    match &mut self.heap[arr] {
                        HeapCell::Arr { elems } => {
                            let len = elems.len();
                            *elems.get_mut(idx as usize).ok_or_else(|| {
                                SjvmError::Runtime(format!(
                                    "array index {idx} out of bounds ({len})"
                                ))
                            })? = val;
                        }
                        _ => return Err(SjvmError::Runtime("astore on non-array".into())),
                    }
                }
                Op::ArrayLen => {
                    let arr = pop!().as_ref()?;
                    let n = match &self.heap[arr] {
                        HeapCell::Arr { elems } => elems.len(),
                        _ => return Err(SjvmError::Runtime("arraylength on non-array".into())),
                    };
                    stack.push(Value::I(n as i64));
                }
                Op::New(class) => {
                    let n = self.classes.get(*class).fields.len();
                    self.stats.allocations += 1;
                    self.stats.ns += self.cost.ns_alloc_per_slot * n as f64;
                    let r = self.heap.len();
                    self.heap.push(HeapCell::Obj {
                        fields: vec![Value::I(0); n],
                    });
                    stack.push(Value::Ref(r));
                }
                Op::GetField(_, idx) => {
                    let obj = pop!().as_ref()?;
                    let v = match &self.heap[obj] {
                        HeapCell::Obj { fields } => fields[*idx as usize],
                        _ => return Err(SjvmError::Runtime("getfield on non-object".into())),
                    };
                    stack.push(v);
                }
                Op::PutField(_, idx) => {
                    let val = pop!();
                    let obj = pop!().as_ref()?;
                    match &mut self.heap[obj] {
                        HeapCell::Obj { fields } => fields[*idx as usize] = val,
                        _ => return Err(SjvmError::Runtime("putfield on non-object".into())),
                    }
                }
                Op::InvokeVirtual { method, .. } | Op::InvokeStatic { method } => {
                    let callee = self.methods.get(*method);
                    let n = callee.params.len();
                    let callee_ret = callee.ret.is_some();
                    if stack.len() < n {
                        return Err(SjvmError::Runtime("call with too few operands".into()));
                    }
                    let args: Vec<Value> = stack.split_off(stack.len() - n);
                    let r = self.call(*method, &args)?;
                    if callee_ret {
                        stack.push(r.ok_or_else(|| {
                            SjvmError::Runtime("callee returned no value".into())
                        })?);
                    }
                }
                Op::Add(k) => binary_arith(&mut stack, *k, |a, b| a.wrapping_add(b), |a, b| a + b)?,
                Op::Sub(k) => binary_arith(&mut stack, *k, |a, b| a.wrapping_sub(b), |a, b| a - b)?,
                Op::Mul(k) => binary_arith(&mut stack, *k, |a, b| a.wrapping_mul(b), |a, b| a * b)?,
                Op::Div(k) => {
                    if !k.is_float() {
                        // detect /0 before the closure
                        let b = stack
                            .last()
                            .copied()
                            .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
                        if b.as_i()? == 0 {
                            return Err(SjvmError::Runtime("integer division by zero".into()));
                        }
                    }
                    binary_arith(&mut stack, *k, |a, b| a.wrapping_div(b), |a, b| a / b)?;
                }
                Op::Rem(k) => {
                    if !k.is_float() {
                        let b = stack
                            .last()
                            .copied()
                            .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
                        if b.as_i()? == 0 {
                            return Err(SjvmError::Runtime("integer remainder by zero".into()));
                        }
                    }
                    binary_arith(&mut stack, *k, |a, b| a.wrapping_rem(b), |a, b| a % b)?;
                }
                Op::Neg(k) => {
                    let v = pop!();
                    stack.push(if k.is_float() {
                        Value::F(round_kind(-v.as_f()?, *k))
                    } else {
                        Value::I(wrap_kind(v.as_i()?.wrapping_neg(), *k))
                    });
                }
                Op::Shl => int_binop(&mut stack, |a, b| a.wrapping_shl((b & 63) as u32))?,
                Op::Shr => int_binop(&mut stack, |a, b| a.wrapping_shr((b & 63) as u32))?,
                Op::UShr => int_binop(&mut stack, |a, b| {
                    ((a as u64).wrapping_shr((b & 63) as u32)) as i64
                })?,
                Op::And => int_binop(&mut stack, |a, b| a & b)?,
                Op::Or => int_binop(&mut stack, |a, b| a | b)?,
                Op::Xor => int_binop(&mut stack, |a, b| a ^ b)?,
                Op::Math(f, k) => {
                    let v = match f {
                        MathFn::Exp => Value::F(pop!().as_f()?.exp()),
                        MathFn::Log => Value::F(pop!().as_f()?.ln()),
                        MathFn::Sqrt => Value::F(pop!().as_f()?.sqrt()),
                        MathFn::Abs => {
                            let a = pop!();
                            if k.is_float() {
                                Value::F(a.as_f()?.abs())
                            } else {
                                Value::I(a.as_i()?.wrapping_abs())
                            }
                        }
                        MathFn::Min | MathFn::Max => {
                            let b = pop!();
                            let a = pop!();
                            let take_min = matches!(f, MathFn::Min);
                            if k.is_float() {
                                let (x, y) = (a.as_f()?, b.as_f()?);
                                Value::F(if take_min { x.min(y) } else { x.max(y) })
                            } else {
                                let (x, y) = (a.as_i()?, b.as_i()?);
                                Value::I(if take_min { x.min(y) } else { x.max(y) })
                            }
                        }
                    };
                    stack.push(v);
                }
                Op::Cast { from, to } => {
                    let v = pop!();
                    stack.push(cast_value(v, *from, *to)?);
                }
                Op::Cmp(k) => {
                    let b = pop!();
                    let a = pop!();
                    let s = signum_cmp(a, b, *k)?;
                    stack.push(Value::I(s as i64));
                }
                Op::IfCmp { kind, cond, target } => {
                    let b = pop!();
                    let a = pop!();
                    let s = signum_cmp(a, b, *kind)?;
                    if cond.holds(s) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::IfZero { cond, target } => {
                    let v = pop!().as_i()?;
                    let s = v.signum() as i32;
                    if cond.holds(s) {
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Goto(target) => {
                    pc = *target as usize;
                    continue;
                }
                Op::Return => {
                    self.depth -= 1;
                    return Ok(if has_ret { Some(pop!()) } else { None });
                }
                Op::Pop => {
                    pop!();
                }
                Op::Dup => {
                    let v = *stack
                        .last()
                        .ok_or_else(|| SjvmError::Runtime("dup on empty stack".into()))?;
                    stack.push(v);
                }
            }
            pc += 1;
        }
    }

    /// Materializes a host value on the heap according to the declared type.
    fn host_to_value(&mut self, v: &HostValue, ty: &JType) -> Result<Value, SjvmError> {
        Ok(match (v, ty) {
            (HostValue::I(x), t) if t.is_integral() => Value::I(*x),
            (HostValue::F(x), t) if t.is_float() => Value::F(*x),
            (HostValue::I(x), t) if t.is_float() => Value::F(*x as f64),
            (HostValue::Str(s), JType::Array(elem)) if elem.is_integral() => {
                let elems: Vec<Value> = s.bytes().map(|b| Value::I(b as i64)).collect();
                let r = self.heap.len();
                self.heap.push(HeapCell::Arr { elems });
                Value::Ref(r)
            }
            (HostValue::Arr(items), JType::Array(elem)) => {
                let mut elems = Vec::with_capacity(items.len());
                for it in items {
                    elems.push(self.host_to_value(it, elem)?);
                }
                let r = self.heap.len();
                self.heap.push(HeapCell::Arr { elems });
                Value::Ref(r)
            }
            (HostValue::Tuple(items) | HostValue::Obj(_, items), JType::Ref(class)) => {
                let def = self.classes.get(*class).clone();
                if items.len() != def.fields.len() {
                    return Err(SjvmError::Runtime(format!(
                        "value arity {} does not match class `{}` ({} fields)",
                        items.len(),
                        def.name,
                        def.fields.len()
                    )));
                }
                let mut fields = Vec::with_capacity(items.len());
                for (it, f) in items.iter().zip(&def.fields) {
                    fields.push(self.host_to_value(it, &f.ty)?);
                }
                let r = self.heap.len();
                self.heap.push(HeapCell::Obj { fields });
                Value::Ref(r)
            }
            (v, ty) => {
                return Err(SjvmError::Runtime(format!(
                    "cannot pass host value {v} as `{ty}`"
                )))
            }
        })
    }

    /// Converts a runtime value back to a host value, guided by the type.
    fn value_to_host(&self, v: Value, ty: &JType) -> Result<HostValue, SjvmError> {
        Ok(match (v, ty) {
            (Value::I(x), t) if t.is_integral() => HostValue::I(x),
            (Value::F(x), _) => HostValue::F(x),
            (Value::I(x), t) if t.is_float() => HostValue::F(x as f64),
            (Value::Null, _) => HostValue::Tuple(vec![]),
            (Value::Ref(r), JType::Array(elem)) => match &self.heap[r] {
                HeapCell::Arr { elems } => {
                    let mut out = Vec::with_capacity(elems.len());
                    for e in elems {
                        out.push(self.value_to_host(*e, elem)?);
                    }
                    HostValue::Arr(out)
                }
                _ => return Err(SjvmError::Runtime("expected array on heap".into())),
            },
            (Value::Ref(r), JType::Ref(class)) => {
                let def = self.classes.get(*class);
                match &self.heap[r] {
                    HeapCell::Obj { fields } => {
                        let mut out = Vec::with_capacity(fields.len());
                        for (f, fd) in fields.iter().zip(&def.fields) {
                            out.push(self.value_to_host(*f, &fd.ty)?);
                        }
                        if def.name.starts_with("scala.Tuple") {
                            HostValue::Tuple(out)
                        } else {
                            HostValue::Obj(def.name.clone(), out)
                        }
                    }
                    _ => return Err(SjvmError::Runtime("expected object on heap".into())),
                }
            }
            (v, ty) => {
                return Err(SjvmError::Runtime(format!(
                    "cannot convert {v:?} to host `{ty}`"
                )))
            }
        })
    }
}

/// Wraps an integral result to the width of its kind (JVM `int` wraps at 32
/// bits, `long` at 64).
fn wrap_kind(v: i64, k: NumKind) -> i64 {
    match k {
        NumKind::Int => v as i32 as i64,
        _ => v,
    }
}

/// Rounds a floating result through `f32` for `Float` kind.
fn round_kind(v: f64, k: NumKind) -> f64 {
    match k {
        NumKind::Float => v as f32 as f64,
        _ => v,
    }
}

fn binary_arith(
    stack: &mut Vec<Value>,
    k: NumKind,
    int_op: impl Fn(i64, i64) -> i64,
    float_op: impl Fn(f64, f64) -> f64,
) -> Result<(), SjvmError> {
    let b = stack
        .pop()
        .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
    let a = stack
        .pop()
        .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
    let v = if k.is_float() {
        let (x, y) = (round_kind(a.as_f()?, k), round_kind(b.as_f()?, k));
        Value::F(round_kind(float_op(x, y), k))
    } else {
        Value::I(wrap_kind(int_op(a.as_i()?, b.as_i()?), k))
    };
    stack.push(v);
    Ok(())
}

fn int_binop(stack: &mut Vec<Value>, op: impl Fn(i64, i64) -> i64) -> Result<(), SjvmError> {
    let b = stack
        .pop()
        .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
    let a = stack
        .pop()
        .ok_or_else(|| SjvmError::Runtime("stack underflow".into()))?;
    stack.push(Value::I(op(a.as_i()?, b.as_i()?)));
    Ok(())
}

fn cast_value(v: Value, from: NumKind, to: NumKind) -> Result<Value, SjvmError> {
    Ok(match (from.is_float(), to.is_float()) {
        (false, false) => Value::I(wrap_kind(v.as_i()?, to)),
        (false, true) => Value::F(round_kind(v.as_i()? as f64, to)),
        (true, false) => {
            let f = v.as_f()?;
            // JVM d2i saturates on overflow and maps NaN to 0.
            let i = if f.is_nan() {
                0
            } else {
                f as i64 // `as` saturates in Rust, matching JVM semantics
            };
            Value::I(wrap_kind(i, to))
        }
        (true, true) => Value::F(round_kind(v.as_f()?, to)),
    })
}

fn signum_cmp(a: Value, b: Value, k: NumKind) -> Result<i32, SjvmError> {
    if k.is_float() {
        let (x, y) = (a.as_f()?, b.as_f()?);
        Ok(if x < y {
            -1
        } else if x > y {
            1
        } else {
            0
        })
    } else {
        Ok(a.as_i()?.cmp(&b.as_i()?) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{Expr, FnBuilder};
    use crate::class::ClassTable;
    use crate::method::MethodTable;

    fn run_simple<F: FnOnce(&mut FnBuilder)>(
        params: &[(&str, JType)],
        ret: Option<JType>,
        args: &[HostValue],
        f: F,
    ) -> HostValue {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", params, ret);
        f(&mut b);
        let id = b.finish(&mut classes, &mut methods).unwrap();
        crate::verify::verify_method(methods.get(id), &methods).unwrap();
        let mut interp = Interp::new(&classes, &methods);
        interp.run(id, args).unwrap().0
    }

    #[test]
    fn arithmetic_loop() {
        // sum of 0..n
        let out = run_simple(
            &[("n", JType::Int)],
            Some(JType::Int),
            &[HostValue::I(10)],
            |f| {
                let n = f.param(0);
                let s = f.local("s", JType::Int);
                let i = f.local("i", JType::Int);
                f.set(s, Expr::const_i(0));
                f.for_loop(i, Expr::const_i(0), Expr::local(n), |f| {
                    f.set(s, Expr::local(s).add(Expr::local(i)));
                });
                f.ret(Expr::local(s));
            },
        );
        assert_eq!(out, HostValue::I(45));
    }

    #[test]
    fn int_wraps_at_32_bits() {
        let out = run_simple(&[], Some(JType::Int), &[], |f| {
            f.ret(Expr::const_i(i32::MAX as i64).add(Expr::const_i(1)));
        });
        assert_eq!(out, HostValue::I(i32::MIN as i64));
    }

    #[test]
    fn float_rounds_through_f32() {
        let out = run_simple(&[], Some(JType::Float), &[], |f| {
            f.ret(Expr::const_f32(0.1).add(Expr::const_f32(0.2)));
        });
        let v = out.as_f64().unwrap();
        assert_eq!(v, (0.1f32 + 0.2f32) as f64);
    }

    #[test]
    fn tuple_roundtrip() {
        let mut classes = ClassTable::new();
        let pair = classes.define_tuple2(JType::Int, JType::Int);
        let mut methods = MethodTable::new();
        // swap: (a, b) -> (b, a)
        let mut b = FnBuilder::new("swap", &[("in", JType::Ref(pair))], Some(JType::Ref(pair)));
        let input = b.param(0);
        b.ret(Expr::NewObj(
            pair,
            vec![
                Expr::local(input).field("_2"),
                Expr::local(input).field("_1"),
            ],
        ));
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let mut interp = Interp::new(&classes, &methods);
        let (out, stats) = interp
            .run(id, &[HostValue::pair(HostValue::I(1), HostValue::I(2))])
            .unwrap();
        assert_eq!(out, HostValue::pair(HostValue::I(2), HostValue::I(1)));
        assert!(stats.allocations >= 1);
        assert!(stats.ns > 0.0);
    }

    #[test]
    fn arrays_and_strings() {
        // count bytes equal to 'a' in a string passed as byte[]
        let out = run_simple(
            &[("s", JType::array(JType::Byte))],
            Some(JType::Int),
            &[HostValue::Str("banana".into())],
            |f| {
                let s = f.param(0);
                let c = f.local("c", JType::Int);
                let i = f.local("i", JType::Int);
                f.set(c, Expr::const_i(0));
                f.for_loop(i, Expr::const_i(0), Expr::local(s).len(), |f| {
                    f.if_then(
                        Expr::local(s)
                            .index(Expr::local(i))
                            .eq(Expr::const_i(b'a' as i64)),
                        |f| {
                            f.set(c, Expr::local(c).add(Expr::const_i(1)));
                        },
                    );
                });
                f.ret(Expr::local(c));
            },
        );
        assert_eq!(out, HostValue::I(3));
    }

    #[test]
    fn division_by_zero_is_a_runtime_error() {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("f", &[], Some(JType::Int));
        b.ret(Expr::const_i(1).div(Expr::const_i(0)));
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let mut interp = Interp::new(&classes, &methods);
        assert!(matches!(interp.run(id, &[]), Err(SjvmError::Runtime(_))));
    }

    #[test]
    fn fuel_limits_runaway_loops() {
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("f", &[], None);
        b.while_loop(Expr::const_i(1).eq(Expr::const_i(1)), |_| {});
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let mut interp = Interp::new(&classes, &methods).with_fuel(1000);
        assert_eq!(interp.run(id, &[]), Err(SjvmError::OutOfFuel));
    }

    #[test]
    fn virtual_dispatch() {
        let mut classes = ClassTable::new();
        let point = classes
            .define(
                "Point",
                vec![
                    crate::class::FieldDef {
                        name: "x".into(),
                        ty: JType::Double,
                    },
                    crate::class::FieldDef {
                        name: "y".into(),
                        ty: JType::Double,
                    },
                ],
            )
            .unwrap();
        let mut methods = MethodTable::new();
        // def norm2(this: Point): Double = x*x + y*y
        let mut mb = FnBuilder::method("norm2", point, &[], Some(JType::Double));
        let this = mb.param(0);
        mb.ret(
            Expr::local(this)
                .field("x")
                .mul(Expr::local(this).field("x"))
                .add(
                    Expr::local(this)
                        .field("y")
                        .mul(Expr::local(this).field("y")),
                ),
        );
        let norm2 = mb.finish(&mut classes, &mut methods).unwrap();
        classes.add_method(point, "norm2", norm2);

        let mut b = FnBuilder::new("call", &[("p", JType::Ref(point))], Some(JType::Double));
        let p = b.param(0);
        b.ret(Expr::local(p).invoke("norm2", vec![]));
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let mut interp = Interp::new(&classes, &methods);
        let (out, _) = interp
            .run(
                id,
                &[HostValue::Obj(
                    "Point".into(),
                    vec![HostValue::F(3.0), HostValue::F(4.0)],
                )],
            )
            .unwrap();
        assert_eq!(out.as_f64(), Some(25.0));
    }
}
