//! Structured kernel builder — the `scalac` stand-in.
//!
//! S2FA's users write Scala lambdas; the Scala compiler lowers them to JVM
//! bytecode, which is S2FA's real input. This module plays the role of the
//! Scala compiler: workloads are written against a small structured AST
//! ([`Expr`] / statement methods on [`FnBuilder`]) and lowered to stack
//! bytecode with the same canonical shapes `scalac`/`javac` produce
//! (condition-inverted `if` branches, bottom-tested loops rendered as
//! top-tested with a back-edge `goto`).
//!
//! The bytecode-to-C compiler downstream never sees this builder — only the
//! resulting [`Method`] bytecode — so the "semantic gap" the paper describes
//! (tuples, constructors, virtual getters in bytecode) is faithfully posed.
//!
//! ```
//! use s2fa_sjvm::builder::{Expr, FnBuilder};
//! use s2fa_sjvm::{ClassTable, JType, MethodTable};
//!
//! // def call(x: Int): Int = { var s = 0; for (i <- 0 until x) s += i; s }
//! let mut f = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
//! let x = f.param(0);
//! let s = f.local("s", JType::Int);
//! let i = f.local("i", JType::Int);
//! f.set(s, Expr::const_i(0));
//! f.for_loop(i, Expr::const_i(0), Expr::local(x), |f| {
//!     f.set(s, Expr::local(s).add(Expr::local(i)));
//! });
//! f.ret(Expr::local(s));
//!
//! let mut classes = ClassTable::new();
//! let mut methods = MethodTable::new();
//! let method = f.finish(&mut classes, &mut methods)?;
//! # Ok::<(), s2fa_sjvm::SjvmError>(())
//! ```

use crate::bytecode::{Cond, MathFn, NumKind, Op};
use crate::class::{ClassId, ClassTable};
use crate::method::{Method, MethodId, MethodTable};
use crate::ty::JType;
use crate::SjvmError;

/// Identifier of a local variable slot inside a [`FnBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub u16);

/// A builder-level expression tree.
///
/// Construct leaves with [`Expr::const_i`], [`Expr::const_f`],
/// [`Expr::local`], then combine with the method combinators
/// ([`Expr::add`], [`Expr::index`], [`Expr::field`], ...).
#[derive(Debug, Clone)]
pub enum Expr {
    /// Integer literal (`Int` unless built via [`Expr::const_l`]).
    ConstI(i64, NumKind),
    /// Float literal (`Double` unless built via [`Expr::const_f32`]).
    ConstF(f64, NumKind),
    /// The `null` reference.
    Null,
    /// A local variable.
    Local(LocalId),
    /// Binary arithmetic.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Intrinsic math call.
    Math(MathFn, Vec<Expr>),
    /// Numeric conversion.
    Cast(Box<Expr>, NumKind),
    /// Array element read: `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Array length.
    Len(Box<Expr>),
    /// Field read: `obj.name` (a virtual getter like Scala's `_1`).
    Field(Box<Expr>, String),
    /// Allocation of a constant-length array.
    NewArray(JType, u32),
    /// `new C(args...)` — a constructor call assigning fields positionally.
    NewObj(ClassId, Vec<Expr>),
    /// Virtual call `obj.name(args...)`.
    Invoke(Box<Expr>, String, Vec<Expr>),
    /// Static call into the method table.
    InvokeStatic(MethodId, Vec<Expr>),
    /// Comparison producing a boolean (valid as `if`/`while` condition and
    /// inside [`Expr::select`]).
    Cmp(Cond, Box<Expr>, Box<Expr>),
    /// Ternary select `cond ? a : b`; lowered to a branch.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Binary arithmetic operators available on [`Expr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
}

// The combinator names deliberately mirror the JVM instruction mnemonics
// (`add`, `div`, `neg`, ...) so kernels read like the bytecode they lower
// to; the equivalent `std::ops` operators are also implemented below.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `Int` literal.
    pub fn const_i(v: i64) -> Expr {
        Expr::ConstI(v, NumKind::Int)
    }

    /// `Long` literal.
    pub fn const_l(v: i64) -> Expr {
        Expr::ConstI(v, NumKind::Long)
    }

    /// `Double` literal.
    pub fn const_f(v: f64) -> Expr {
        Expr::ConstF(v, NumKind::Double)
    }

    /// `Float` literal.
    pub fn const_f32(v: f64) -> Expr {
        Expr::ConstF(v, NumKind::Float)
    }

    /// Local variable reference.
    pub fn local(id: LocalId) -> Expr {
        Expr::Local(id)
    }

    fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Add, rhs)
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Sub, rhs)
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Mul, rhs)
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Div, rhs)
    }

    /// `self % rhs`.
    pub fn rem(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Rem, rhs)
    }

    /// `self << rhs` (integral only).
    pub fn shl(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shl, rhs)
    }

    /// `self >> rhs` (integral only).
    pub fn shr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Shr, rhs)
    }

    /// `self >>> rhs` (integral only).
    pub fn ushr(self, rhs: Expr) -> Expr {
        self.bin(BinOp::UShr, rhs)
    }

    /// Bitwise `self & rhs` (integral only).
    pub fn bitand(self, rhs: Expr) -> Expr {
        self.bin(BinOp::And, rhs)
    }

    /// Bitwise `self | rhs` (integral only).
    pub fn bitor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Or, rhs)
    }

    /// Bitwise `self ^ rhs` (integral only).
    pub fn bitxor(self, rhs: Expr) -> Expr {
        self.bin(BinOp::Xor, rhs)
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// `Math.exp(self)`.
    pub fn exp(self) -> Expr {
        Expr::Math(MathFn::Exp, vec![self])
    }

    /// `Math.log(self)`.
    pub fn log(self) -> Expr {
        Expr::Math(MathFn::Log, vec![self])
    }

    /// `Math.sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::Math(MathFn::Sqrt, vec![self])
    }

    /// `Math.abs(self)`.
    pub fn abs(self) -> Expr {
        Expr::Math(MathFn::Abs, vec![self])
    }

    /// `Math.min(self, rhs)`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::Math(MathFn::Min, vec![self, rhs])
    }

    /// `Math.max(self, rhs)`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::Math(MathFn::Max, vec![self, rhs])
    }

    /// Numeric conversion to `kind`.
    pub fn cast(self, kind: NumKind) -> Expr {
        Expr::Cast(Box::new(self), kind)
    }

    /// Array element read `self[idx]`.
    pub fn index(self, idx: Expr) -> Expr {
        Expr::Index(Box::new(self), Box::new(idx))
    }

    /// Array length `self.length`.
    pub fn len(self) -> Expr {
        Expr::Len(Box::new(self))
    }

    /// Field read `self.name` (e.g. `._1` on a tuple).
    pub fn field(self, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(self), name.into())
    }

    /// Virtual call `self.name(args)`.
    pub fn invoke(self, name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Invoke(Box::new(self), name.into(), args)
    }

    /// `self == rhs`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Eq, Box::new(self), Box::new(rhs))
    }

    /// `self != rhs`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Ne, Box::new(self), Box::new(rhs))
    }

    /// `self < rhs`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Lt, Box::new(self), Box::new(rhs))
    }

    /// `self <= rhs`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Le, Box::new(self), Box::new(rhs))
    }

    /// `self > rhs`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Gt, Box::new(self), Box::new(rhs))
    }

    /// `self >= rhs`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::Cmp(Cond::Ge, Box::new(self), Box::new(rhs))
    }

    /// `cond ? self : other` — `self` is the condition; prefer the
    /// free-standing form [`Expr::select`].
    pub fn select(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(then), Box::new(otherwise))
    }
}

// Operator sugar: `a + b` is equivalent to `a.add(b)`, and so on. Only the
// arithmetic operators are provided — comparisons stay methods because
// `PartialOrd` must return `bool`, not an expression tree.
impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::div(self, rhs)
    }
}

impl std::ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::rem(self, rhs)
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::neg(self)
    }
}

/// Structured statements collected by the builder before lowering.
#[derive(Debug, Clone)]
enum BStmt {
    Set(LocalId, Expr),
    SetIndex {
        arr: Expr,
        idx: Expr,
        val: Expr,
    },
    SetField {
        obj: Expr,
        field: String,
        val: Expr,
    },
    If {
        cond: Expr,
        then: Vec<BStmt>,
        els: Vec<BStmt>,
    },
    While {
        cond: Expr,
        body: Vec<BStmt>,
    },
    Ret(Option<Expr>),
}

/// Builds one method: declare locals, emit structured statements, then
/// [`FnBuilder::finish`] lowers everything to verified-shape bytecode.
///
/// See the [module documentation](self) for an end-to-end example.
#[derive(Debug)]
pub struct FnBuilder {
    name: String,
    params: Vec<JType>,
    ret: Option<JType>,
    local_names: Vec<String>,
    local_types: Vec<JType>,
    /// Stack of open statement frames; frame 0 is the method body.
    frames: Vec<Vec<BStmt>>,
}

impl FnBuilder {
    /// Starts building a static method / lambda with the given signature.
    pub fn new(name: impl Into<String>, params: &[(&str, JType)], ret: Option<JType>) -> Self {
        FnBuilder {
            name: name.into(),
            params: params.iter().map(|(_, t)| t.clone()).collect(),
            ret,
            local_names: params.iter().map(|(n, _)| (*n).to_string()).collect(),
            local_types: params.iter().map(|(_, t)| t.clone()).collect(),
            frames: vec![Vec::new()],
        }
    }

    /// Starts building a virtual method: local slot 0 is the receiver
    /// (`this`) of class `class`.
    pub fn method(
        name: impl Into<String>,
        class: ClassId,
        params: &[(&str, JType)],
        ret: Option<JType>,
    ) -> Self {
        let mut all = vec![("this", JType::Ref(class))];
        all.extend(params.iter().map(|(n, t)| (*n, t.clone())));
        let refs: Vec<(&str, JType)> = all;
        FnBuilder::new(name, &refs, ret)
    }

    /// The `i`-th parameter's local slot (for virtual methods, slot 0 is
    /// `this` and the first declared parameter is `param(1)`).
    pub fn param(&self, i: u16) -> LocalId {
        assert!(
            (i as usize) < self.params.len(),
            "parameter index {i} out of range"
        );
        LocalId(i)
    }

    /// Declares a new local variable and returns its slot.
    pub fn local(&mut self, name: impl Into<String>, ty: JType) -> LocalId {
        let id = LocalId(self.local_names.len() as u16);
        self.local_names.push(name.into());
        self.local_types.push(ty);
        id
    }

    fn push(&mut self, s: BStmt) {
        self.frames
            .last_mut()
            .expect("builder frame stack is never empty")
            .push(s);
    }

    /// `local = value`.
    pub fn set(&mut self, local: LocalId, value: Expr) {
        self.push(BStmt::Set(local, value));
    }

    /// `arr[idx] = value`.
    pub fn set_index(&mut self, arr: Expr, idx: Expr, value: Expr) {
        self.push(BStmt::SetIndex {
            arr,
            idx,
            val: value,
        });
    }

    /// `obj.field = value`.
    pub fn set_field(&mut self, obj: Expr, field: impl Into<String>, value: Expr) {
        self.push(BStmt::SetField {
            obj,
            field: field.into(),
            val: value,
        });
    }

    /// `if (cond) { body(this) }`.
    pub fn if_then(&mut self, cond: Expr, body: impl FnOnce(&mut Self)) {
        self.frames.push(Vec::new());
        body(self);
        let then = self.frames.pop().expect("frame pushed above");
        self.push(BStmt::If {
            cond,
            then,
            els: Vec::new(),
        });
    }

    /// `if (cond) { then(this) } else { otherwise(this) }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut Self),
        otherwise: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then(self);
        let t = self.frames.pop().expect("frame pushed above");
        self.frames.push(Vec::new());
        otherwise(self);
        let e = self.frames.pop().expect("frame pushed above");
        self.push(BStmt::If {
            cond,
            then: t,
            els: e,
        });
    }

    /// `while (cond) { body(this) }`.
    pub fn while_loop(&mut self, cond: Expr, body: impl FnOnce(&mut Self)) {
        self.frames.push(Vec::new());
        body(self);
        let b = self.frames.pop().expect("frame pushed above");
        self.push(BStmt::While { cond, body: b });
    }

    /// `for (var <- start until end) { body(this) }` — the canonical
    /// counted loop that `scalac` desugars to a while.
    pub fn for_loop(&mut self, var: LocalId, start: Expr, end: Expr, body: impl FnOnce(&mut Self)) {
        self.set(var, start);
        self.frames.push(Vec::new());
        body(self);
        let mut b = self.frames.pop().expect("frame pushed above");
        b.push(BStmt::Set(var, Expr::local(var).add(Expr::const_i(1))));
        self.push(BStmt::While {
            cond: Expr::local(var).lt(end),
            body: b,
        });
    }

    /// `return value`.
    pub fn ret(&mut self, value: Expr) {
        self.push(BStmt::Ret(Some(value)));
    }

    /// `return` (void).
    pub fn ret_void(&mut self) {
        self.push(BStmt::Ret(None));
    }

    /// Lowers the structured body to bytecode and registers the method.
    ///
    /// # Errors
    ///
    /// Returns [`SjvmError::Build`] on type mismatches, unknown fields, or
    /// unresolvable virtual calls.
    pub fn finish(
        self,
        classes: &mut ClassTable,
        methods: &mut MethodTable,
    ) -> Result<MethodId, SjvmError> {
        let FnBuilder {
            name,
            params,
            ret,
            local_names,
            local_types,
            mut frames,
        } = self;
        let body = frames.pop().expect("frame stack is never empty");
        debug_assert!(frames.is_empty(), "unbalanced builder frames");
        let mut lower = Lowerer {
            classes,
            methods,
            local_types: local_types.clone(),
            local_names: local_names.clone(),
            code: Vec::new(),
        };
        lower.stmts(&body)?;
        // Implicit void return at the end (javac does the same).
        if ret.is_none() && !matches!(lower.code.last(), Some(Op::Return)) {
            lower.code.push(Op::Return);
        }
        let method = Method {
            name,
            params,
            ret,
            n_locals: lower.local_types.len() as u16,
            local_names: lower.local_names,
            local_types: lower.local_types,
            code: lower.code,
        };
        Ok(methods.add(method))
    }
}

/// Lowering context: walks the structured tree and emits bytecode.
struct Lowerer<'a> {
    classes: &'a mut ClassTable,
    methods: &'a MethodTable,
    local_types: Vec<JType>,
    local_names: Vec<String>,
    code: Vec<Op>,
}

impl Lowerer<'_> {
    fn err(msg: impl Into<String>) -> SjvmError {
        SjvmError::Build(msg.into())
    }

    fn fresh_temp(&mut self, ty: JType) -> LocalId {
        let id = LocalId(self.local_types.len() as u16);
        self.local_names.push(format!("$t{}", id.0));
        self.local_types.push(ty);
        id
    }

    fn stmts(&mut self, list: &[BStmt]) -> Result<(), SjvmError> {
        for s in list {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &BStmt) -> Result<(), SjvmError> {
        match s {
            BStmt::Set(local, e) => {
                self.expr(e)?;
                self.code.push(Op::Store(local.0));
            }
            BStmt::SetIndex { arr, idx, val } => {
                self.expr(arr)?;
                self.expr(idx)?;
                self.expr(val)?;
                self.code.push(Op::AStore);
            }
            BStmt::SetField { obj, field, val } => {
                let obj_ty = self.infer(obj)?;
                let class = match obj_ty {
                    JType::Ref(c) => c,
                    other => return Err(Self::err(format!("field store on non-object `{other}`"))),
                };
                let idx = self
                    .classes
                    .get(class)
                    .field_index(field)
                    .ok_or_else(|| Self::err(format!("unknown field `{field}`")))?;
                self.expr(obj)?;
                self.expr(val)?;
                self.code.push(Op::PutField(class, idx));
            }
            BStmt::If { cond, then, els } => {
                // javac shape: branch over `then` when the condition fails.
                let else_jump = self.emit_branch_if_false(cond)?;
                self.stmts(then)?;
                if els.is_empty() {
                    let end = self.code.len() as u32;
                    self.patch(else_jump, end);
                } else {
                    let end_jump = self.code.len();
                    self.code.push(Op::Goto(u32::MAX));
                    let else_start = self.code.len() as u32;
                    self.patch(else_jump, else_start);
                    self.stmts(els)?;
                    let end = self.code.len() as u32;
                    self.patch(end_jump, end);
                }
            }
            BStmt::While { cond, body } => {
                let head = self.code.len() as u32;
                let exit_jump = self.emit_branch_if_false(cond)?;
                self.stmts(body)?;
                self.code.push(Op::Goto(head));
                let end = self.code.len() as u32;
                self.patch(exit_jump, end);
            }
            BStmt::Ret(Some(e)) => {
                self.expr(e)?;
                self.code.push(Op::Return);
            }
            BStmt::Ret(None) => self.code.push(Op::Return),
        }
        Ok(())
    }

    /// Emits `cond` so that control *branches away* when it is false;
    /// returns the index of the branch to patch.
    fn emit_branch_if_false(&mut self, cond: &Expr) -> Result<usize, SjvmError> {
        match cond {
            Expr::Cmp(c, a, b) => {
                let ka = self.num_kind(a)?;
                let kb = self.num_kind(b)?;
                if ka != kb {
                    return Err(Self::err(format!(
                        "comparison operand kinds differ: {ka:?} vs {kb:?}"
                    )));
                }
                self.expr(a)?;
                self.expr(b)?;
                let at = self.code.len();
                self.code.push(Op::IfCmp {
                    kind: ka,
                    cond: c.negate(),
                    target: u32::MAX,
                });
                Ok(at)
            }
            other => {
                // Treat as a boolean int: branch away when zero.
                self.expr(other)?;
                let at = self.code.len();
                self.code.push(Op::IfZero {
                    cond: Cond::Eq,
                    target: u32::MAX,
                });
                Ok(at)
            }
        }
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Op::IfCmp { target: t, .. } | Op::IfZero { target: t, .. } | Op::Goto(t) => {
                *t = target;
            }
            other => unreachable!("patching non-branch {other:?}"),
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(), SjvmError> {
        match e {
            Expr::ConstI(v, k) => {
                self.code.push(Op::ConstI(*v));
                if *k == NumKind::Long {
                    // Literal kind is tracked only for type inference; the
                    // interpreter stores all integers as i64.
                }
            }
            Expr::ConstF(v, _) => self.code.push(Op::ConstF(*v)),
            Expr::Null => self.code.push(Op::ConstNull),
            Expr::Local(id) => self.code.push(Op::Load(id.0)),
            Expr::Bin(op, a, b) => {
                let ka = self.num_kind(a)?;
                let kb = self.num_kind(b)?;
                if ka != kb {
                    return Err(Self::err(format!(
                        "binary operand kinds differ: {ka:?} vs {kb:?}"
                    )));
                }
                self.expr(a)?;
                self.expr(b)?;
                let op = match op {
                    BinOp::Add => Op::Add(ka),
                    BinOp::Sub => Op::Sub(ka),
                    BinOp::Mul => Op::Mul(ka),
                    BinOp::Div => Op::Div(ka),
                    BinOp::Rem => Op::Rem(ka),
                    BinOp::Shl => Op::Shl,
                    BinOp::Shr => Op::Shr,
                    BinOp::UShr => Op::UShr,
                    BinOp::And => Op::And,
                    BinOp::Or => Op::Or,
                    BinOp::Xor => Op::Xor,
                };
                if matches!(
                    op,
                    Op::Shl | Op::Shr | Op::UShr | Op::And | Op::Or | Op::Xor
                ) && ka.is_float()
                {
                    return Err(Self::err("bitwise operator on floating-point operands"));
                }
                self.code.push(op);
            }
            Expr::Neg(a) => {
                let k = self.num_kind(a)?;
                self.expr(a)?;
                self.code.push(Op::Neg(k));
            }
            Expr::Math(f, args) => {
                if args.len() != f.arity() {
                    return Err(Self::err(format!(
                        "Math.{} expects {} arguments, got {}",
                        f.name(),
                        f.arity(),
                        args.len()
                    )));
                }
                let k = self.num_kind(&args[0])?;
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::Math(*f, k));
            }
            Expr::Cast(a, to) => {
                let from = self.num_kind(a)?;
                self.expr(a)?;
                if from != *to {
                    self.code.push(Op::Cast { from, to: *to });
                }
            }
            Expr::Index(base, idx) => {
                self.expr(base)?;
                self.expr(idx)?;
                self.code.push(Op::ALoad);
            }
            Expr::Len(base) => {
                self.expr(base)?;
                self.code.push(Op::ArrayLen);
            }
            Expr::Field(obj, name) => {
                let class = self.class_of(obj)?;
                let idx = self
                    .classes
                    .get(class)
                    .field_index(name)
                    .ok_or_else(|| Self::err(format!("unknown field `{name}`")))?;
                self.expr(obj)?;
                self.code.push(Op::GetField(class, idx));
            }
            Expr::NewArray(elem, len) => {
                self.code.push(Op::NewArray {
                    elem: elem.clone(),
                    len: *len,
                });
            }
            Expr::NewObj(class, args) => {
                let n_fields = self.classes.get(*class).fields.len();
                if args.len() != n_fields {
                    return Err(Self::err(format!(
                        "constructor of {} expects {} arguments, got {}",
                        self.classes.get(*class).name,
                        n_fields,
                        args.len()
                    )));
                }
                self.code.push(Op::New(*class));
                for (i, a) in args.iter().enumerate() {
                    self.code.push(Op::Dup);
                    self.expr(a)?;
                    self.code.push(Op::PutField(*class, i as u16));
                }
            }
            Expr::Invoke(obj, name, args) => {
                let class = self.class_of(obj)?;
                let method = *self
                    .classes
                    .get(class)
                    .methods
                    .get(name)
                    .ok_or_else(|| Self::err(format!("unknown virtual method `{name}`")))?;
                self.expr(obj)?;
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::InvokeVirtual { class, method });
            }
            Expr::InvokeStatic(id, args) => {
                for a in args {
                    self.expr(a)?;
                }
                self.code.push(Op::InvokeStatic { method: *id });
            }
            Expr::Cmp(c, a, b) => {
                // Materialize the boolean: javac emits a branch diamond.
                let k = self.num_kind(a)?;
                self.expr(a)?;
                self.expr(b)?;
                let br = self.code.len();
                self.code.push(Op::IfCmp {
                    kind: k,
                    cond: *c,
                    target: u32::MAX,
                });
                self.code.push(Op::ConstI(0));
                let over = self.code.len();
                self.code.push(Op::Goto(u32::MAX));
                let t = self.code.len() as u32;
                self.patch(br, t);
                self.code.push(Op::ConstI(1));
                let end = self.code.len() as u32;
                self.patch(over, end);
            }
            Expr::Select(cond, a, b) => {
                let ty = self.infer(a)?;
                let tmp = self.fresh_temp(ty);
                let else_jump = self.emit_branch_if_false(cond)?;
                self.expr(a)?;
                self.code.push(Op::Store(tmp.0));
                let end_jump = self.code.len();
                self.code.push(Op::Goto(u32::MAX));
                let else_start = self.code.len() as u32;
                self.patch(else_jump, else_start);
                self.expr(b)?;
                self.code.push(Op::Store(tmp.0));
                let end = self.code.len() as u32;
                self.patch(end_jump, end);
                self.code.push(Op::Load(tmp.0));
            }
        }
        Ok(())
    }

    fn class_of(&mut self, obj: &Expr) -> Result<ClassId, SjvmError> {
        match self.infer(obj)? {
            JType::Ref(c) => Ok(c),
            other => Err(Self::err(format!(
                "member access on non-object value of type `{other}`"
            ))),
        }
    }

    /// Numeric kind of an expression (errors on refs/arrays).
    fn num_kind(&mut self, e: &Expr) -> Result<NumKind, SjvmError> {
        match self.infer(e)? {
            JType::Boolean | JType::Byte | JType::Char | JType::Short | JType::Int => {
                Ok(NumKind::Int)
            }
            JType::Long => Ok(NumKind::Long),
            JType::Float => Ok(NumKind::Float),
            JType::Double => Ok(NumKind::Double),
            other => Err(Self::err(format!(
                "arithmetic on non-numeric value of type `{other}`"
            ))),
        }
    }

    /// Infers the [`JType`] of an expression from local declarations and the
    /// class table.
    fn infer(&mut self, e: &Expr) -> Result<JType, SjvmError> {
        Ok(match e {
            Expr::ConstI(_, k) | Expr::ConstF(_, k) => k.jtype(),
            Expr::Null => {
                return Err(Self::err("cannot infer the class of a bare null"));
            }
            Expr::Local(id) => self
                .local_types
                .get(id.0 as usize)
                .cloned()
                .ok_or_else(|| Self::err(format!("unknown local slot {}", id.0)))?,
            Expr::Bin(op, a, _) => {
                let t = self.infer(a)?;
                match op {
                    BinOp::Shl | BinOp::Shr | BinOp::UShr | BinOp::And | BinOp::Or | BinOp::Xor => {
                        t
                    }
                    _ => t,
                }
            }
            Expr::Neg(a) => self.infer(a)?,
            Expr::Math(f, args) => match f {
                MathFn::Min | MathFn::Max | MathFn::Abs => self.infer(&args[0])?,
                _ => JType::Double,
            },
            Expr::Cast(_, to) => to.jtype(),
            Expr::Index(base, _) => match self.infer(base)? {
                JType::Array(e) => (*e).clone(),
                other => {
                    return Err(Self::err(format!(
                        "indexing non-array value of type `{other}`"
                    )))
                }
            },
            Expr::Len(_) => JType::Int,
            Expr::Field(obj, name) => {
                let class = self.class_of(obj)?;
                let def = self.classes.get(class);
                def.fields
                    .iter()
                    .find(|f| &f.name == name)
                    .map(|f| f.ty.clone())
                    .ok_or_else(|| Self::err(format!("unknown field `{name}`")))?
            }
            Expr::NewArray(elem, _) => JType::array(elem.clone()),
            Expr::NewObj(class, _) => JType::Ref(*class),
            Expr::Invoke(obj, name, _) => {
                let class = self.class_of(obj)?;
                let method = *self
                    .classes
                    .get(class)
                    .methods
                    .get(name)
                    .ok_or_else(|| Self::err(format!("unknown virtual method `{name}`")))?;
                self.methods
                    .get(method)
                    .ret
                    .clone()
                    .ok_or_else(|| Self::err(format!("virtual method `{name}` returns void")))?
            }
            Expr::InvokeStatic(id, _) => self
                .methods
                .get(*id)
                .ret
                .clone()
                .ok_or_else(|| Self::err("static call to a void method used as a value"))?,
            Expr::Cmp(..) => JType::Boolean,
            Expr::Select(_, a, _) => self.infer(a)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassTable;
    use crate::method::MethodTable;

    fn build<F: FnOnce(&mut FnBuilder)>(
        params: &[(&str, JType)],
        ret: Option<JType>,
        f: F,
    ) -> Method {
        let mut b = FnBuilder::new("call", params, ret);
        f(&mut b);
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        let id = b.finish(&mut classes, &mut methods).unwrap();
        methods.get(id).clone()
    }

    #[test]
    fn straight_line_lowering() {
        let m = build(&[("x", JType::Int)], Some(JType::Int), |f| {
            let x = f.param(0);
            f.ret(Expr::local(x).add(Expr::const_i(1)));
        });
        assert_eq!(
            m.code,
            vec![
                Op::Load(0),
                Op::ConstI(1),
                Op::Add(NumKind::Int),
                Op::Return
            ]
        );
    }

    #[test]
    fn if_shape_matches_javac() {
        // if (x < 0) y = 1;  — javac: IfCmp(Ge) over the then-block.
        let m = build(&[("x", JType::Int)], None, |f| {
            let x = f.param(0);
            let y = f.local("y", JType::Int);
            f.if_then(Expr::local(x).lt(Expr::const_i(0)), |f| {
                f.set(y, Expr::const_i(1));
            });
        });
        assert!(matches!(
            m.code[2],
            Op::IfCmp {
                cond: Cond::Ge,
                target: 5,
                ..
            }
        ));
    }

    #[test]
    fn while_has_single_backedge() {
        let m = build(&[("n", JType::Int)], Some(JType::Int), |f| {
            let n = f.param(0);
            let i = f.local("i", JType::Int);
            f.set(i, Expr::const_i(0));
            f.while_loop(Expr::local(i).lt(Expr::local(n)), |f| {
                f.set(i, Expr::local(i).add(Expr::const_i(1)));
            });
            f.ret(Expr::local(i));
        });
        let backedges: Vec<_> = m
            .code
            .iter()
            .enumerate()
            .filter(|(pc, op)| op.branch_target().is_some_and(|t| (t as usize) <= *pc))
            .collect();
        assert_eq!(backedges.len(), 1, "{}", m.disassemble());
    }

    #[test]
    fn for_loop_desugars_to_while() {
        let m = build(&[("n", JType::Int)], None, |f| {
            let n = f.param(0);
            let i = f.local("i", JType::Int);
            f.for_loop(i, Expr::const_i(0), Expr::local(n), |_| {});
        });
        // init + cond + incr + goto
        assert!(m.code.iter().any(|o| matches!(o, Op::Goto(_))));
    }

    #[test]
    fn kind_mismatch_is_a_build_error() {
        let mut b = FnBuilder::new("f", &[("x", JType::Int)], Some(JType::Int));
        let x = b.param(0);
        b.ret(Expr::local(x).add(Expr::const_f(1.0)));
        let mut classes = ClassTable::new();
        let mut methods = MethodTable::new();
        assert!(matches!(
            b.finish(&mut classes, &mut methods),
            Err(SjvmError::Build(_))
        ));
    }

    #[test]
    fn constructor_emits_new_dup_putfield() {
        let mut classes = ClassTable::new();
        let pair = classes.define_tuple2(JType::Int, JType::Int);
        let mut b = FnBuilder::new("f", &[], Some(JType::Ref(pair)));
        b.ret(Expr::NewObj(pair, vec![Expr::const_i(1), Expr::const_i(2)]));
        let mut methods = MethodTable::new();
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let code = &methods.get(id).code;
        assert!(matches!(code[0], Op::New(_)));
        assert!(matches!(code[1], Op::Dup));
        assert!(matches!(code[3], Op::PutField(_, 0)));
        assert!(matches!(code[6], Op::PutField(_, 1)));
    }

    #[test]
    fn field_access_emits_getfield() {
        let mut classes = ClassTable::new();
        let pair = classes.define_tuple2(JType::Double, JType::Double);
        let mut b = FnBuilder::new("f", &[("p", JType::Ref(pair))], Some(JType::Double));
        let p = b.param(0);
        b.ret(Expr::local(p).field("_1").add(Expr::local(p).field("_2")));
        let mut methods = MethodTable::new();
        let id = b.finish(&mut classes, &mut methods).unwrap();
        let n_get = methods
            .get(id)
            .code
            .iter()
            .filter(|o| matches!(o, Op::GetField(..)))
            .count();
        assert_eq!(n_get, 2);
    }

    #[test]
    fn select_lowering_materializes_both_arms() {
        let m = build(&[("x", JType::Int)], Some(JType::Int), |f| {
            let x = f.param(0);
            f.ret(Expr::select(
                Expr::local(x).gt(Expr::const_i(0)),
                Expr::const_i(1),
                Expr::const_i(-1),
            ));
        });
        assert!(m.code.iter().any(|o| matches!(o, Op::ConstI(1))));
        assert!(m.code.iter().any(|o| matches!(o, Op::ConstI(-1))));
        // select introduces a hidden temp local
        assert!(m.n_locals >= 2);
    }
}
