//! Error type for the JVM substrate.

use std::fmt;

/// Errors raised while building, verifying, or executing bytecode.
#[derive(Debug, Clone, PartialEq)]
pub enum SjvmError {
    /// A class with this name already exists in the class table.
    DuplicateClass(String),
    /// Bytecode verification failed at the given instruction index.
    Verify {
        /// Instruction index of the violation.
        pc: usize,
        /// What went wrong.
        reason: String,
    },
    /// The interpreter hit a runtime fault (type confusion, OOB, ...).
    Runtime(String),
    /// A builder misuse (e.g. unknown local, type mismatch in DSL).
    Build(String),
    /// Interpreter executed more instructions than the configured fuel.
    OutOfFuel,
}

impl fmt::Display for SjvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SjvmError::DuplicateClass(n) => write!(f, "class `{n}` is already defined"),
            SjvmError::Verify { pc, reason } => {
                write!(f, "bytecode verification failed at pc {pc}: {reason}")
            }
            SjvmError::Runtime(m) => write!(f, "runtime fault: {m}"),
            SjvmError::Build(m) => write!(f, "kernel builder error: {m}"),
            SjvmError::OutOfFuel => write!(f, "interpreter exceeded its instruction budget"),
        }
    }
}

impl std::error::Error for SjvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SjvmError::DuplicateClass("A".into());
        assert_eq!(e.to_string(), "class `A` is already defined");
        let e = SjvmError::Verify {
            pc: 3,
            reason: "stack underflow".into(),
        };
        assert!(e.to_string().contains("pc 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SjvmError>();
    }
}
