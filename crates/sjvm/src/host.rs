//! Host-side dynamic values.
//!
//! [`HostValue`] is the representation of Spark records on the host (driver)
//! side — the analogue of JVM objects seen through Java reflection. The
//! Blaze substrate serializes these into the flat buffers the accelerator
//! interface expects, and the interpreter materializes them onto its heap
//! when a lambda runs on the "JVM" path.
//!
//! Typing is structural at this boundary: a [`HostValue::Tuple`] matches any
//! monomorphized tuple class with the same arity, and a [`HostValue::Str`]
//! matches a `char[]`/`byte[]` parameter, mirroring how Blaze's reflection
//! bridge reorganizes objects to fit the accelerator interface.

use std::fmt;

/// A dynamically-typed host value (a JVM object seen via reflection).
#[derive(Debug, Clone, PartialEq)]
pub enum HostValue {
    /// Any integral primitive (boolean/byte/char/short/int/long).
    I(i64),
    /// Any floating primitive (float/double).
    F(f64),
    /// An array.
    Arr(Vec<HostValue>),
    /// A tuple object (`scala.TupleN`); fields in order.
    Tuple(Vec<HostValue>),
    /// A named object with positional fields.
    Obj(String, Vec<HostValue>),
    /// A `java.lang.String`, handed to kernels as a char array.
    Str(String),
}

impl HostValue {
    /// Builds a `Tuple2`.
    pub fn pair(a: HostValue, b: HostValue) -> HostValue {
        HostValue::Tuple(vec![a, b])
    }

    /// Builds an array of `f64` values.
    pub fn f64_array(values: &[f64]) -> HostValue {
        HostValue::Arr(values.iter().map(|&v| HostValue::F(v)).collect())
    }

    /// Builds an array of `i64` values.
    pub fn i64_array(values: &[i64]) -> HostValue {
        HostValue::Arr(values.iter().map(|&v| HostValue::I(v)).collect())
    }

    /// The integer payload, if this is an integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            HostValue::I(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a floating value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            HostValue::F(v) => Some(*v),
            HostValue::I(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The elements, if this is an array or tuple.
    pub fn elements(&self) -> Option<&[HostValue]> {
        match self {
            HostValue::Arr(v) | HostValue::Tuple(v) | HostValue::Obj(_, v) => Some(v),
            _ => None,
        }
    }

    /// Total number of primitive leaves in this value (useful for sizing
    /// serialized buffers).
    pub fn leaf_count(&self) -> usize {
        match self {
            HostValue::I(_) | HostValue::F(_) => 1,
            HostValue::Str(s) => s.len(),
            HostValue::Arr(v) | HostValue::Tuple(v) | HostValue::Obj(_, v) => {
                v.iter().map(HostValue::leaf_count).sum()
            }
        }
    }
}

impl From<i64> for HostValue {
    fn from(v: i64) -> Self {
        HostValue::I(v)
    }
}

impl From<i32> for HostValue {
    fn from(v: i32) -> Self {
        HostValue::I(v as i64)
    }
}

impl From<f64> for HostValue {
    fn from(v: f64) -> Self {
        HostValue::F(v)
    }
}

impl From<&str> for HostValue {
    fn from(v: &str) -> Self {
        HostValue::Str(v.to_string())
    }
}

impl fmt::Display for HostValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostValue::I(v) => write!(f, "{v}"),
            HostValue::F(v) => write!(f, "{v}"),
            HostValue::Str(s) => write!(f, "{s:?}"),
            HostValue::Arr(v) => {
                write!(f, "[")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "]")
            }
            HostValue::Tuple(v) => {
                write!(f, "(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            HostValue::Obj(name, v) => {
                write!(f, "{name}(")?;
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let v = HostValue::pair(HostValue::I(1), HostValue::f64_array(&[1.0, 2.0]));
        assert_eq!(v.elements().unwrap().len(), 2);
        assert_eq!(v.elements().unwrap()[0].as_i64(), Some(1));
        assert_eq!(v.leaf_count(), 3);
    }

    #[test]
    fn from_impls() {
        assert_eq!(HostValue::from(3i32), HostValue::I(3));
        assert_eq!(HostValue::from(2.5), HostValue::F(2.5));
        assert_eq!(HostValue::from("ab"), HostValue::Str("ab".into()));
    }

    #[test]
    fn string_leaves_count_chars() {
        assert_eq!(HostValue::Str("abcd".into()).leaf_count(), 4);
    }

    #[test]
    fn display_round_trips_structure() {
        let v = HostValue::pair(HostValue::I(1), HostValue::Str("x".into()));
        assert_eq!(v.to_string(), "(1, \"x\")");
        assert_eq!(HostValue::i64_array(&[1, 2]).to_string(), "[1, 2]");
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(HostValue::I(3).as_f64(), Some(3.0));
        assert_eq!(HostValue::Str("x".into()).as_f64(), None);
    }
}
