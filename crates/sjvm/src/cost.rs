//! Per-opcode JVM execution cost model.
//!
//! Fig. 4 of the paper normalizes accelerator performance against a
//! *single-threaded Spark executor on the JVM*. We reproduce that baseline
//! by charging each interpreted bytecode instruction a calibrated cost in
//! nanoseconds. The defaults approximate a warmed-up JVM running
//! JIT-compiled but object-heavy Spark lambda code on a ~2.7 GHz Xeon
//! (the f1.2xlarge host): ALU operations are near-free, while object
//! allocation, pointer chasing (field access), virtual dispatch, and
//! transcendental math dominate — exactly the overheads that make the JVM
//! baseline slow relative to a dataflow accelerator.

use crate::bytecode::{MathFn, NumKind, Op};

/// Cost model mapping bytecode operations to nanoseconds.
///
/// All fields are public so experiments can recalibrate; [`Default`] gives
/// the values used throughout the reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct JvmCostModel {
    /// Constant push / stack shuffle.
    pub ns_const: f64,
    /// Local variable load/store.
    pub ns_local: f64,
    /// Integer ALU op (add/sub/logic/shift/compare).
    pub ns_int_alu: f64,
    /// Integer multiply.
    pub ns_int_mul: f64,
    /// Integer divide / remainder.
    pub ns_int_div: f64,
    /// Floating add/sub/mul.
    pub ns_float_alu: f64,
    /// Floating divide.
    pub ns_float_div: f64,
    /// `Math.sqrt`.
    pub ns_sqrt: f64,
    /// `Math.exp` / `Math.log` (transcendental).
    pub ns_transcendental: f64,
    /// Array element access (bounds + header indirection).
    pub ns_array_access: f64,
    /// Field read/write (pointer chase).
    pub ns_field_access: f64,
    /// Object or array allocation (TLAB bump + header + zeroing base).
    pub ns_alloc: f64,
    /// Additional allocation cost per field/element zeroed.
    pub ns_alloc_per_slot: f64,
    /// Virtual method invocation (dispatch + frame setup).
    pub ns_invoke: f64,
    /// Taken or not-taken branch.
    pub ns_branch: f64,
}

impl Default for JvmCostModel {
    fn default() -> Self {
        JvmCostModel {
            ns_const: 0.3,
            ns_local: 0.4,
            ns_int_alu: 0.4,
            ns_int_mul: 1.2,
            ns_int_div: 8.0,
            ns_float_alu: 0.8,
            ns_float_div: 6.0,
            ns_sqrt: 7.0,
            ns_transcendental: 24.0,
            ns_array_access: 1.6,
            ns_field_access: 2.2,
            ns_alloc: 28.0,
            ns_alloc_per_slot: 0.8,
            ns_invoke: 12.0,
            ns_branch: 0.9,
        }
    }
}

impl JvmCostModel {
    /// Creates the default calibrated model (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost in nanoseconds of executing `op` once.
    ///
    /// Allocation instructions additionally charge
    /// [`ns_alloc_per_slot`](Self::ns_alloc_per_slot) per slot; the caller
    /// (the interpreter) passes the slot count via [`Self::alloc_cost`]
    /// instead for those.
    pub fn op_cost(&self, op: &Op) -> f64 {
        match op {
            Op::ConstI(_) | Op::ConstF(_) | Op::ConstNull | Op::Pop | Op::Dup => self.ns_const,
            Op::Load(_) | Op::Store(_) => self.ns_local,
            Op::ALoad | Op::AStore | Op::ArrayLen => self.ns_array_access,
            Op::GetField(..) | Op::PutField(..) => self.ns_field_access,
            Op::New(_) | Op::NewArray { .. } => self.ns_alloc,
            Op::InvokeVirtual { .. } | Op::InvokeStatic { .. } => self.ns_invoke,
            Op::Add(k) | Op::Sub(k) | Op::Neg(k) => {
                if k.is_float() {
                    self.ns_float_alu
                } else {
                    self.ns_int_alu
                }
            }
            Op::Mul(k) => {
                if k.is_float() {
                    self.ns_float_alu
                } else {
                    self.ns_int_mul
                }
            }
            Op::Div(k) | Op::Rem(k) => {
                if k.is_float() {
                    self.ns_float_div
                } else {
                    self.ns_int_div
                }
            }
            Op::Shl | Op::Shr | Op::UShr | Op::And | Op::Or | Op::Xor => self.ns_int_alu,
            Op::Math(f, _) => match f {
                MathFn::Exp | MathFn::Log => self.ns_transcendental,
                MathFn::Sqrt => self.ns_sqrt,
                MathFn::Abs | MathFn::Min | MathFn::Max => self.ns_int_alu,
            },
            Op::Cast { from, to } => {
                if from.is_float() || to.is_float() {
                    self.ns_float_alu
                } else {
                    self.ns_int_alu
                }
            }
            Op::Cmp(_) => self.ns_int_alu,
            Op::IfCmp { .. } | Op::IfZero { .. } | Op::Goto(_) => self.ns_branch,
            Op::Return => self.ns_branch,
        }
    }

    /// Cost of an allocation of `slots` fields/elements.
    pub fn alloc_cost(&self, slots: usize) -> f64 {
        self.ns_alloc + self.ns_alloc_per_slot * slots as f64
    }

    /// Convenience: cost of a floating op of kind `k`.
    pub fn float_or_int(&self, k: NumKind) -> f64 {
        if k.is_float() {
            self.ns_float_alu
        } else {
            self.ns_int_alu
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_dominates_alu() {
        let m = JvmCostModel::default();
        assert!(m.alloc_cost(2) > 20.0 * m.ns_int_alu);
    }

    #[test]
    fn transcendental_is_expensive() {
        let m = JvmCostModel::default();
        assert!(
            m.op_cost(&Op::Math(MathFn::Exp, NumKind::Double))
                > m.op_cost(&Op::Mul(NumKind::Double)) * 10.0
        );
    }

    #[test]
    fn float_div_costs_more_than_mul() {
        let m = JvmCostModel::default();
        assert!(m.op_cost(&Op::Div(NumKind::Float)) > m.op_cost(&Op::Mul(NumKind::Float)));
    }

    #[test]
    fn per_slot_alloc_scales() {
        let m = JvmCostModel::default();
        assert!(m.alloc_cost(100) > m.alloc_cost(1));
    }
}
