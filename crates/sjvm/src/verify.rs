//! Bytecode verifier.
//!
//! A lightweight structural verifier in the spirit of the JVM's: it checks
//! that every branch target is in range, that the operand stack never
//! underflows, that stack depths agree at control-flow joins, and that
//! local-variable indices are in bounds. The S2FA compiler runs it before
//! attempting bytecode-to-C translation so the decompiler can assume a
//! well-formed method.

use crate::bytecode::Op;
use crate::method::{Method, MethodTable};
use crate::SjvmError;

/// Verifies a method's bytecode.
///
/// # Errors
///
/// Returns [`SjvmError::Verify`] describing the first violation found.
///
/// ```
/// use s2fa_sjvm::{verify, JType, Method, MethodTable, Op};
///
/// let m = Method {
///     name: "id".into(),
///     params: vec![JType::Int],
///     ret: Some(JType::Int),
///     n_locals: 1,
///     local_names: vec!["x".into()],
///     local_types: vec![JType::Int],
///     code: vec![Op::Load(0), Op::Return],
/// };
/// let table = MethodTable::new();
/// verify::verify_method(&m, &table)?;
/// # Ok::<(), s2fa_sjvm::SjvmError>(())
/// ```
pub fn verify_method(method: &Method, methods: &MethodTable) -> Result<(), SjvmError> {
    let code = &method.code;
    if code.is_empty() {
        return Err(SjvmError::Verify {
            pc: 0,
            reason: "empty method body".into(),
        });
    }
    // depth[pc] = Some(stack depth on entry), propagated by worklist.
    let mut depth: Vec<Option<i32>> = vec![None; code.len()];
    depth[0] = Some(0);
    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let d_in = depth[pc].expect("only scheduled with a known depth");
        let op = &code[pc];
        let (pops, pushes) =
            stack_effect(op, methods).map_err(|reason| SjvmError::Verify { pc, reason })?;
        let d_out = d_in - pops + pushes;
        if d_in - pops < 0 {
            return Err(SjvmError::Verify {
                pc,
                reason: format!("stack underflow: depth {d_in}, pops {pops}"),
            });
        }
        if let Op::Load(n) | Op::Store(n) = op {
            if *n >= method.n_locals {
                return Err(SjvmError::Verify {
                    pc,
                    reason: format!("local slot {n} out of range ({})", method.n_locals),
                });
            }
        }
        if let Op::Return = op {
            let want = if method.ret.is_some() { 1 } else { 0 };
            if d_in != want {
                return Err(SjvmError::Verify {
                    pc,
                    reason: format!("return with stack depth {d_in}, expected {want}"),
                });
            }
            continue;
        }
        let mut succs: Vec<usize> = Vec::with_capacity(2);
        if let Some(t) = op.branch_target() {
            if t as usize >= code.len() {
                return Err(SjvmError::Verify {
                    pc,
                    reason: format!("branch target {t} out of range"),
                });
            }
            succs.push(t as usize);
        }
        if !op.is_terminator() {
            if pc + 1 >= code.len() {
                return Err(SjvmError::Verify {
                    pc,
                    reason: "control falls off the end of the method".into(),
                });
            }
            succs.push(pc + 1);
        }
        for s in succs {
            match depth[s] {
                None => {
                    depth[s] = Some(d_out);
                    work.push(s);
                }
                Some(prev) if prev != d_out => {
                    return Err(SjvmError::Verify {
                        pc,
                        reason: format!(
                            "inconsistent stack depth at join pc {s}: {prev} vs {d_out}"
                        ),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// `(pops, pushes)` of an instruction.
fn stack_effect(op: &Op, methods: &MethodTable) -> Result<(i32, i32), String> {
    Ok(match op {
        Op::ConstI(_) | Op::ConstF(_) | Op::ConstNull => (0, 1),
        Op::Load(_) => (0, 1),
        Op::Store(_) => (1, 0),
        Op::NewArray { .. } => (0, 1),
        Op::ALoad => (2, 1),
        Op::AStore => (3, 0),
        Op::ArrayLen => (1, 1),
        Op::New(_) => (0, 1),
        Op::GetField(..) => (1, 1),
        Op::PutField(..) => (2, 0),
        Op::InvokeVirtual { method, .. } => {
            let m = methods.get(*method);
            // receiver + declared params (slot 0 of the callee is `this`).
            let pops = m.params.len() as i32;
            (pops, if m.ret.is_some() { 1 } else { 0 })
        }
        Op::InvokeStatic { method } => {
            let m = methods.get(*method);
            (m.params.len() as i32, if m.ret.is_some() { 1 } else { 0 })
        }
        Op::Add(_) | Op::Sub(_) | Op::Mul(_) | Op::Div(_) | Op::Rem(_) => (2, 1),
        Op::Neg(_) => (1, 1),
        Op::Shl | Op::Shr | Op::UShr | Op::And | Op::Or | Op::Xor => (2, 1),
        Op::Math(f, _) => (f.arity() as i32, 1),
        Op::Cast { .. } => (1, 1),
        Op::Cmp(_) => (2, 1),
        Op::IfCmp { .. } => (2, 0),
        Op::IfZero { .. } => (1, 0),
        Op::Goto(_) => (0, 0),
        Op::Return => (0, 0), // handled specially
        Op::Pop => (1, 0),
        Op::Dup => (1, 2),
    })
}

/// Maximum operand-stack depth reached by a verified method.
///
/// # Panics
///
/// Panics if the method does not verify; call [`verify_method`] first.
pub fn max_stack(method: &Method, methods: &MethodTable) -> u32 {
    let code = &method.code;
    let mut depth: Vec<Option<i32>> = vec![None; code.len()];
    depth[0] = Some(0);
    let mut work = vec![0usize];
    let mut max = 0i32;
    while let Some(pc) = work.pop() {
        let d_in = depth[pc].unwrap();
        let op = &code[pc];
        let (pops, pushes) = stack_effect(op, methods).expect("method must verify");
        let d_out = d_in - pops + pushes;
        max = max.max(d_in).max(d_out);
        if matches!(op, Op::Return) {
            continue;
        }
        let mut succs = Vec::new();
        if let Some(t) = op.branch_target() {
            succs.push(t as usize);
        }
        if !op.is_terminator() {
            succs.push(pc + 1);
        }
        for s in succs {
            if depth[s].is_none() {
                depth[s] = Some(d_out);
                work.push(s);
            }
        }
    }
    max as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{Cond, NumKind};
    use crate::ty::JType;

    fn method(code: Vec<Op>, n_locals: u16, ret: Option<JType>) -> Method {
        Method {
            name: "t".into(),
            params: vec![],
            ret,
            n_locals,
            local_names: (0..n_locals).map(|i| format!("l{i}")).collect(),
            local_types: (0..n_locals).map(|_| JType::Int).collect(),
            code,
        }
    }

    #[test]
    fn accepts_simple_method() {
        let m = method(
            vec![
                Op::ConstI(1),
                Op::ConstI(2),
                Op::Add(NumKind::Int),
                Op::Return,
            ],
            0,
            Some(JType::Int),
        );
        verify_method(&m, &MethodTable::new()).unwrap();
        assert_eq!(max_stack(&m, &MethodTable::new()), 2);
    }

    #[test]
    fn rejects_underflow() {
        let m = method(vec![Op::Pop, Op::Return], 0, None);
        let e = verify_method(&m, &MethodTable::new()).unwrap_err();
        assert!(e.to_string().contains("underflow"));
    }

    #[test]
    fn rejects_bad_branch_target() {
        let m = method(vec![Op::Goto(99)], 0, None);
        assert!(verify_method(&m, &MethodTable::new()).is_err());
    }

    #[test]
    fn rejects_inconsistent_join_depth() {
        // path A pushes 1 value, path B pushes 2, both join at pc 5.
        let m = method(
            vec![
                Op::ConstI(0),
                Op::IfZero {
                    cond: Cond::Eq,
                    target: 4,
                },
                Op::ConstI(1),
                Op::Goto(6),
                Op::ConstI(1),
                Op::ConstI(2),
                Op::Return,
            ],
            0,
            Some(JType::Int),
        );
        assert!(verify_method(&m, &MethodTable::new()).is_err());
    }

    #[test]
    fn rejects_out_of_range_local() {
        let m = method(vec![Op::Load(5), Op::Return], 1, Some(JType::Int));
        let e = verify_method(&m, &MethodTable::new()).unwrap_err();
        assert!(e.to_string().contains("slot 5"));
    }

    #[test]
    fn rejects_fallthrough_off_the_end() {
        let m = method(vec![Op::ConstI(1), Op::Pop], 0, None);
        assert!(verify_method(&m, &MethodTable::new()).is_err());
    }

    #[test]
    fn rejects_return_with_wrong_depth() {
        let m = method(vec![Op::Return], 0, Some(JType::Int));
        assert!(verify_method(&m, &MethodTable::new()).is_err());
        let m = method(vec![Op::ConstI(1), Op::Return], 0, None);
        assert!(verify_method(&m, &MethodTable::new()).is_err());
    }

    #[test]
    fn rejects_empty_body() {
        let m = method(vec![], 0, None);
        assert!(verify_method(&m, &MethodTable::new()).is_err());
    }
}
