//! Methods and the method table.

use crate::bytecode::Op;
use crate::ty::JType;
use std::fmt;

/// Identifier of a method in a [`MethodTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "method#{}", self.0)
    }
}

/// A compiled method: signature, local-variable layout, and bytecode.
///
/// Parameters occupy the first `params.len()` local slots (slot 0 is the
/// receiver for virtual methods — the builder handles this), followed by
/// declared locals.
#[derive(Debug, Clone)]
pub struct Method {
    /// Method name (e.g. `call` for an RDD lambda).
    pub name: String,
    /// Parameter types, in local-slot order.
    pub params: Vec<JType>,
    /// Return type; `None` for void.
    pub ret: Option<JType>,
    /// Total number of local slots (params + declared locals).
    pub n_locals: u16,
    /// Debug names for local slots, parallel to slot indices.
    pub local_names: Vec<String>,
    /// Declared types for local slots, parallel to slot indices.
    pub local_types: Vec<JType>,
    /// The bytecode.
    pub code: Vec<Op>,
}

impl Method {
    /// Renders a human-readable disassembly, one instruction per line.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "method {}({}) -> {}",
            self.name,
            self.params
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", "),
            self.ret
                .as_ref()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "void".into())
        );
        for (pc, op) in self.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:4}: {op:?}");
        }
        out
    }
}

/// Registry of methods shared by a program (kernel lambdas plus any class
/// methods they invoke).
#[derive(Debug, Clone, Default)]
pub struct MethodTable {
    methods: Vec<Method>,
}

impl MethodTable {
    /// Creates an empty method table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a method and returns its id.
    pub fn add(&mut self, method: Method) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        self.methods.push(method);
        id
    }

    /// Looks a method up by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// Number of methods registered.
    pub fn len(&self) -> usize {
        self.methods.len()
    }

    /// True if no method is registered.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Iterates over `(id, method)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MethodId, &Method)> {
        self.methods
            .iter()
            .enumerate()
            .map(|(i, m)| (MethodId(i as u32), m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Op;

    fn trivial() -> Method {
        Method {
            name: "f".into(),
            params: vec![JType::Int],
            ret: Some(JType::Int),
            n_locals: 1,
            local_names: vec!["x".into()],
            local_types: vec![JType::Int],
            code: vec![Op::Load(0), Op::Return],
        }
    }

    #[test]
    fn add_and_get() {
        let mut t = MethodTable::new();
        let id = t.add(trivial());
        assert_eq!(t.get(id).name, "f");
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn disassembly_mentions_signature_and_pcs() {
        let d = trivial().disassemble();
        assert!(d.contains("f(int) -> int"));
        assert!(d.contains("0: Load(0)"));
        assert!(d.contains("1: Return"));
    }
}
