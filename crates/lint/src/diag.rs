//! Diagnostics: stable codes, severities, spans, reports, and rendering.

use s2fa_hlsir::LoopId;
use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// `S2FA-Wxxx`: suspicious or repairable — the pipeline proceeds
    /// (normalization repairs the directive or the estimator prices the
    /// damage), but the point is wasteful or the code smells.
    Warning,
    /// `S2FA-Exxx`: statically guaranteed failure — an ill-formed kernel,
    /// or a design point that cannot synthesize.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A stable lint rule, e.g. `S2FA-E201`. The full catalog lives in
/// [`codes`]; DESIGN.md §10 documents where each rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LintCode {
    /// The stable code string (`S2FA-Exxx` / `S2FA-Wxxx`).
    pub code: &'static str,
    /// Severity class the numbering encodes (E = error, W = warning).
    pub severity: Severity,
    /// One-line rule title.
    pub title: &'static str,
}

/// The rule catalog. `E1xx`/`W1xx` are IR well-formedness rules (fire on
/// the generated `CFunction`, pre- and post-transform); `E2xx`/`W2xx` are
/// design-point legality rules (fire on a `DesignConfig` against a
/// `KernelSummary`).
pub mod codes {
    use super::{LintCode, Severity};

    /// E101: an expression or assignment uses a variable or buffer that no
    /// parameter, declaration, or enclosing loop defines.
    pub const USE_BEFORE_DEF: LintCode = LintCode {
        code: "S2FA-E101",
        severity: Severity::Error,
        title: "use of an undefined variable or buffer",
    };
    /// E102: a constant array index is negative or outside the declared
    /// length of a local array.
    pub const OOB_INDEX: LintCode = LintCode {
        code: "S2FA-E102",
        severity: Severity::Error,
        title: "constant array index out of bounds",
    };
    /// E103: two loops share a `LoopId` (directives would be ambiguous).
    pub const DUP_LOOP_ID: LintCode = LintCode {
        code: "S2FA-E103",
        severity: Severity::Error,
        title: "duplicate loop id",
    };
    /// E104: the kernel writes a read-only input buffer.
    pub const WRITE_TO_INPUT: LintCode = LintCode {
        code: "S2FA-E104",
        severity: Severity::Error,
        title: "write to a read-only input buffer",
    };
    /// E105: an intrinsic call has the wrong number of arguments.
    pub const BAD_ARITY: LintCode = LintCode {
        code: "S2FA-E105",
        severity: Severity::Error,
        title: "intrinsic arity mismatch",
    };
    /// W110: an assignment narrows its right-hand side without an explicit
    /// cast (silent truncation in the generated C).
    pub const TRUNCATING_ASSIGN: LintCode = LintCode {
        code: "S2FA-W110",
        severity: Severity::Warning,
        title: "implicit width-truncating assignment",
    };
    /// W111: a loop has a zero trip count or an empty body.
    pub const DEAD_LOOP: LintCode = LintCode {
        code: "S2FA-W111",
        severity: Severity::Warning,
        title: "zero-trip or dead loop",
    };

    /// E201: the design's resource floor already exceeds the device
    /// utilization cap — synthesis is guaranteed to fail.
    pub const RESOURCE_CAP: LintCode = LintCode {
        code: "S2FA-E201",
        severity: Severity::Error,
        title: "resource floor exceeds the utilization cap",
    };
    /// E202: the replication product exceeds the routing sanity bound.
    pub const UNROUTABLE: LintCode = LintCode {
        code: "S2FA-E202",
        severity: Severity::Error,
        title: "replication product unroutable",
    };
    /// W210: `pipeline` on a loop with an irreducible carried dependence
    /// (the II is bound to the recurrence chain; the directive buys little).
    pub const PIPELINE_IRREDUCIBLE: LintCode = LintCode {
        code: "S2FA-W210",
        severity: Severity::Warning,
        title: "pipeline on an irreducible carried dependence",
    };
    /// W211: `flatten` on a loop whose descendants still carry live
    /// factors (normalization zeroes them; they are dead weight).
    pub const FLATTEN_LIVE_SUBLOOPS: LintCode = LintCode {
        code: "S2FA-W211",
        severity: Severity::Warning,
        title: "flatten with live sub-loop factors",
    };
    /// W212: a tile/unroll factor does not divide the trip count (the
    /// structural transform rejects it).
    pub const NON_DIVIDING_FACTOR: LintCode = LintCode {
        code: "S2FA-W212",
        severity: Severity::Warning,
        title: "factor does not divide the trip count",
    };
    /// W213: a tile/unroll factor outside the legal range for its loop
    /// (normalization clamps or drops it).
    pub const FACTOR_OUT_OF_RANGE: LintCode = LintCode {
        code: "S2FA-W213",
        severity: Severity::Warning,
        title: "factor outside the legal range",
    };
    /// W214: `parallel > 1` on a loop with a non-reducible recurrence
    /// (normalization resets it to 1).
    pub const PARALLEL_IRREDUCIBLE: LintCode = LintCode {
        code: "S2FA-W214",
        severity: Severity::Warning,
        title: "parallel on a non-reducible recurrence",
    };
    /// W215: an interface port width below the buffer's element width
    /// (every access straddles words).
    pub const NARROW_PORT: LintCode = LintCode {
        code: "S2FA-W215",
        severity: Severity::Warning,
        title: "port width below the element width",
    };
    /// W216: `tree_reduce` without a reducible recurrence to reduce.
    pub const USELESS_TREE_REDUCE: LintCode = LintCode {
        code: "S2FA-W216",
        severity: Severity::Warning,
        title: "tree reduction without a reducible recurrence",
    };

    /// E301: a read of a local scalar or buffer element whose every
    /// statically reaching definition is the uninitialized declaration —
    /// the kernel computes with garbage (well, with the executor's zero
    /// default; real HLS gives undefined BRAM contents).
    pub const UNINIT_READ: LintCode = LintCode {
        code: "S2FA-E301",
        severity: Severity::Error,
        title: "read of provably uninitialized storage",
    };
    /// E302: an affine (non-constant) index whose value range, computed
    /// from the enclosing loop bounds, provably exceeds the declared
    /// length of a local array. Constant indices are E102's domain.
    pub const AFFINE_OOB: LintCode = LintCode {
        code: "S2FA-E302",
        severity: Severity::Error,
        title: "affine index provably out of bounds",
    };
    /// E303: two iterations of a loop provably write the same buffer
    /// element — replicating or fully parallelizing the loop (what the
    /// design space does to it) yields a nondeterministic design.
    pub const REPLICATION_RACE: LintCode = LintCode {
        code: "S2FA-E303",
        severity: Severity::Error,
        title: "cross-iteration write-write race under replication",
    };
    /// W310: a definition no later statement can observe (dead store).
    pub const DEAD_STORE: LintCode = LintCode {
        code: "S2FA-W310",
        severity: Severity::Warning,
        title: "dead store",
    };
}

/// Where a diagnostic points: a loop path from the outermost enclosing
/// loop to the site, plus the buffer/variable under discussion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Span {
    /// Enclosing loops, outermost first (e.g. `L0 > L2`).
    pub loop_path: Vec<LoopId>,
    /// Buffer or variable the finding is about, if any.
    pub subject: Option<String>,
    /// Pre-order statement index within the kernel body (the same
    /// numbering `hlsir::dataflow` assigns), rendered as `#7`.
    pub stmt: Option<u32>,
}

impl Span {
    /// A span with no location (kernel-level findings).
    pub fn kernel() -> Self {
        Span::default()
    }

    /// A span pointing at one loop.
    pub fn at_loop(id: LoopId) -> Self {
        Span {
            loop_path: vec![id],
            ..Span::default()
        }
    }

    /// A span pointing at a named buffer or variable.
    pub fn subject(name: impl Into<String>) -> Self {
        Span {
            subject: Some(name.into()),
            ..Span::default()
        }
    }

    /// Adds/replaces the subject on any span.
    pub fn with_subject(mut self, name: impl Into<String>) -> Self {
        self.subject = Some(name.into());
        self
    }

    /// Adds/replaces the statement index on any span.
    pub fn with_stmt(mut self, stmt: u32) -> Self {
        self.stmt = Some(stmt);
        self
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut wrote = false;
        for (i, id) in self.loop_path.iter().enumerate() {
            if i > 0 {
                f.write_str(" > ")?;
            }
            write!(f, "{id}")?;
            wrote = true;
        }
        if let Some(i) = self.stmt {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "#{i}")?;
            wrote = true;
        }
        if let Some(s) = &self.subject {
            if wrote {
                f.write_str(" ")?;
            }
            write!(f, "`{s}`")?;
            wrote = true;
        }
        if !wrote {
            f.write_str("<kernel>")?;
        }
        Ok(())
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: LintCode,
    /// Where it fired.
    pub span: Span,
    /// Specific message (what value, which bound).
    pub message: String,
}

impl fmt::Display for Diagnostic {
    /// One-line form: `error[S2FA-E102]: constant index 9 outside
    /// `acc[4]` (at L0 `acc`)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (at {})",
            self.code.severity, self.code.code, self.message, self.span
        )
    }
}

impl Diagnostic {
    /// Rustc-style multi-line rendering for `subject` (the kernel name).
    pub fn render(&self, subject: &str) -> String {
        format!(
            "{}[{}]: {}\n  --> {}: {}\n  = note: {}\n",
            self.code.severity, self.code.code, self.code.title, subject, self.span, self.message
        )
    }
}

/// The findings of one analysis pass over one subject.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LintReport {
    /// What was analyzed (the kernel name).
    pub subject: String,
    /// Findings in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records one finding.
    pub fn push(&mut self, code: LintCode, span: Span, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            span,
            message: message.into(),
        });
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.code.severity == Severity::Error)
    }

    /// True if any error-severity finding was recorded.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// `(errors, warnings)` counts.
    pub fn counts(&self) -> (usize, usize) {
        let e = self.errors().count();
        (e, self.diagnostics.len() - e)
    }

    /// Appends another report's findings (same subject assumed).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Rustc-style rendering of every finding plus a summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render(&self.subject));
        }
        let (e, w) = self.counts();
        if e == 0 && w == 0 {
            out.push_str(&format!("{}: clean\n", self.subject));
        } else {
            out.push_str(&format!("{}: {e} error(s), {w} warning(s)\n", self.subject));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_render() {
        assert_eq!(Span::kernel().to_string(), "<kernel>");
        assert_eq!(Span::at_loop(LoopId(2)).to_string(), "L2");
        assert_eq!(
            Span {
                loop_path: vec![LoopId(0), LoopId(2)],
                subject: Some("acc".into()),
                stmt: None,
            }
            .to_string(),
            "L0 > L2 `acc`"
        );
        assert_eq!(
            Span::at_loop(LoopId(1))
                .with_stmt(7)
                .with_subject("a")
                .to_string(),
            "L1 #7 `a`"
        );
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = LintReport::new("dot");
        assert!(!r.has_errors());
        assert!(r.render().contains("dot: clean"));
        r.push(
            codes::OOB_INDEX,
            Span::subject("acc"),
            "constant index 9 outside `acc[4]`",
        );
        r.push(
            codes::DEAD_LOOP,
            Span::at_loop(LoopId(1)),
            "trip count is 0",
        );
        assert!(r.has_errors());
        assert_eq!(r.counts(), (1, 1));
        let text = r.render();
        assert!(text.contains("error[S2FA-E102]"));
        assert!(text.contains("warning[S2FA-W111]"));
        assert!(text.contains("--> dot:"));
        assert!(text.contains("dot: 1 error(s), 1 warning(s)"));
        assert_eq!(
            r.diagnostics[0].to_string(),
            "error[S2FA-E102]: constant index 9 outside `acc[4]` (at `acc`)"
        );
    }
}
