//! IR well-formedness verification over the generated [`CFunction`] AST.
//!
//! [`verify_function`] runs after bytecode→C codegen; [`new_errors`] is the
//! differential form run after every `merlin::apply_structural` rewrite so
//! a structural transform can never silently corrupt the kernel.

use crate::diag::{codes, LintReport, Span};
use s2fa_hlsir::{CFunction, CNumKind, CType, Expr, LValue, LoopId, ParamKind, Stmt};
use std::collections::BTreeSet;

/// What a name is bound to at a use site.
#[derive(Debug, Clone, Copy)]
enum Binding {
    /// A scalar variable of the given type.
    Scalar(CType),
    /// An array; `len` is known for constant-size locals only (interface
    /// buffers span the whole batch), `writable` is false for inputs.
    Array {
        ty: CType,
        len: Option<u32>,
        writable: bool,
    },
}

/// The verifier's walking state: a block-scoped environment plus
/// already-reported names (one E101 per name, not per use).
struct Verifier {
    env: Vec<(String, Binding)>,
    loop_path: Vec<LoopId>,
    seen_loops: BTreeSet<u32>,
    reported_undefined: BTreeSet<String>,
    report: LintReport,
    /// Next pre-order statement index — the same numbering
    /// `hlsir::dataflow` assigns (compound statements before their
    /// children), so spans line up across rule families.
    next_stmt: u32,
    /// Index of the statement currently being checked.
    cur_stmt: Option<u32>,
}

/// Verifies the static well-formedness of a generated kernel: every name
/// is defined before use (E101), constant indices stay inside local array
/// bounds (E102), loop ids are unique (E103), input buffers are never
/// written (E104), intrinsic arities match (E105), assignments do not
/// silently narrow (W110), and no loop is dead (W111).
pub fn verify_function(f: &CFunction) -> LintReport {
    let mut v = Verifier {
        env: Vec::new(),
        loop_path: Vec::new(),
        seen_loops: BTreeSet::new(),
        reported_undefined: BTreeSet::new(),
        report: LintReport::new(&f.name),
        next_stmt: 0,
        cur_stmt: None,
    };
    for p in &f.params {
        let binding = match p.kind {
            ParamKind::ScalarIn => Binding::Scalar(p.ty),
            ParamKind::BufIn => Binding::Array {
                ty: p.ty,
                len: None,
                writable: false,
            },
            ParamKind::BufOut => Binding::Array {
                ty: p.ty,
                len: None,
                writable: true,
            },
        };
        v.env.push((p.name.clone(), binding));
    }
    v.walk(&f.body);
    v.report
}

/// Error-severity findings present in `after` but not in `baseline` — the
/// differential check run on the output of a structural rewrite. Fresh
/// loop ids may shift spans of pre-existing findings; for the generated
/// kernels the baseline is clean, so anything here is transform damage.
pub fn new_errors(baseline: &LintReport, after: &LintReport) -> Vec<crate::diag::Diagnostic> {
    after
        .errors()
        .filter(|d| !baseline.diagnostics.contains(d))
        .cloned()
        .collect()
}

impl Verifier {
    fn lookup(&self, name: &str) -> Option<Binding> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| *b)
    }

    fn span(&self) -> Span {
        Span {
            loop_path: self.loop_path.clone(),
            subject: None,
            stmt: self.cur_stmt,
        }
    }

    fn undefined(&mut self, name: &str) {
        if self.reported_undefined.insert(name.to_string()) {
            let span = self.span().with_subject(name);
            self.report.push(
                codes::USE_BEFORE_DEF,
                span,
                format!("`{name}` is used but never declared in scope"),
            );
        }
    }

    /// Checks all uses inside an rvalue: definedness, constant index
    /// bounds, intrinsic arity.
    fn check_expr(&mut self, e: &Expr) {
        match e {
            Expr::ConstI(_) | Expr::ConstF(_) => {}
            Expr::Var(n) => {
                if self.lookup(n).is_none() {
                    self.undefined(n);
                }
            }
            Expr::Index(base, idx) => {
                self.check_index(base, idx);
                self.check_expr(idx);
            }
            Expr::Bin(_, _, a, b) => {
                self.check_expr(a);
                self.check_expr(b);
            }
            Expr::Neg(_, a) | Expr::Cast(_, _, a) => self.check_expr(a),
            Expr::Call(f, _, args) => {
                if args.len() != f.arity() {
                    let span = self.span().with_subject(f.c_name());
                    self.report.push(
                        codes::BAD_ARITY,
                        span,
                        format!(
                            "`{}` takes {} argument(s), got {}",
                            f.c_name(),
                            f.arity(),
                            args.len()
                        ),
                    );
                }
                for a in args {
                    self.check_expr(a);
                }
            }
            Expr::Select(c, a, b) => {
                self.check_expr(c);
                self.check_expr(a);
                self.check_expr(b);
            }
        }
    }

    /// Definedness + constant-bounds check for one `base[idx]` site.
    fn check_index(&mut self, base: &str, idx: &Expr) {
        match self.lookup(base) {
            None => self.undefined(base),
            Some(Binding::Scalar(_)) => {
                let span = self.span().with_subject(base);
                self.report.push(
                    codes::USE_BEFORE_DEF,
                    span,
                    format!("`{base}` is a scalar but is indexed like an array"),
                );
            }
            Some(Binding::Array { len, .. }) => {
                if let Expr::ConstI(v) = idx {
                    let oob = *v < 0 || len.is_some_and(|l| *v >= l as i64);
                    if oob {
                        let bound = len.map_or("<runtime>".to_string(), |l| l.to_string());
                        let span = self.span().with_subject(base);
                        self.report.push(
                            codes::OOB_INDEX,
                            span,
                            format!("constant index {v} is outside `{base}[{bound}]`"),
                        );
                    }
                }
            }
        }
    }

    /// The numeric kind an expression evaluates to, when derivable.
    /// Literals return `None` (they adapt to their context).
    fn result_kind(&self, e: &Expr) -> Option<CNumKind> {
        match e {
            Expr::ConstI(_) | Expr::ConstF(_) => None,
            Expr::Var(n) => match self.lookup(n)? {
                Binding::Scalar(t) => Some(t.num_kind()),
                Binding::Array { .. } => None,
            },
            Expr::Index(base, _) => match self.lookup(base)? {
                Binding::Array { ty, .. } => Some(ty.num_kind()),
                Binding::Scalar(_) => None,
            },
            Expr::Bin(op, k, _, _) => Some(if op.is_cmp() { CNumKind::I32 } else { *k }),
            Expr::Neg(k, _) | Expr::Call(_, k, _) => Some(*k),
            Expr::Cast(_, to, _) => Some(*to),
            Expr::Select(_, a, b) => self.result_kind(a).or_else(|| self.result_kind(b)),
        }
    }

    /// W110: an implicit store that loses width or floatness.
    fn check_store_width(&mut self, target: &str, target_ty: CType, rhs: &Expr) {
        let Some(k) = self.result_kind(rhs) else {
            return;
        };
        let narrows = k.bits() > target_ty.bits() || (k.is_float() && !target_ty.is_float());
        if narrows {
            let span = self.span().with_subject(target);
            self.report.push(
                codes::TRUNCATING_ASSIGN,
                span,
                format!(
                    "a {}-bit {} value is stored into `{target}: {}` without a cast",
                    k.bits(),
                    if k.is_float() { "float" } else { "integer" },
                    target_ty
                ),
            );
        }
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        let scope = self.env.len();
        for s in stmts {
            let sid = self.next_stmt;
            self.next_stmt += 1;
            self.cur_stmt = Some(sid);
            match s {
                Stmt::DeclArr { name, ty, len } => {
                    self.env.push((
                        name.clone(),
                        Binding::Array {
                            ty: *ty,
                            len: Some(*len),
                            writable: true,
                        },
                    ));
                }
                Stmt::Decl { name, ty, init } => {
                    if let Some(e) = init {
                        self.check_expr(e);
                        // bind after checking: `int x = x;` is use-before-def
                        self.env.push((name.clone(), Binding::Scalar(*ty)));
                        self.check_store_width(name, *ty, e);
                    } else {
                        self.env.push((name.clone(), Binding::Scalar(*ty)));
                    }
                }
                Stmt::Assign { lhs, rhs } => {
                    self.check_expr(rhs);
                    match lhs {
                        LValue::Var(n) => match self.lookup(n) {
                            None => self.undefined(n),
                            Some(Binding::Scalar(t)) => self.check_store_width(n, t, rhs),
                            Some(Binding::Array { .. }) => {
                                let span = self.span().with_subject(n.as_str());
                                self.report.push(
                                    codes::USE_BEFORE_DEF,
                                    span,
                                    format!("`{n}` is an array but is assigned like a scalar"),
                                );
                            }
                        },
                        LValue::Index(base, idx) => {
                            self.check_index(base, idx);
                            self.check_expr(idx);
                            if let Some(Binding::Array { ty, writable, .. }) = self.lookup(base) {
                                if !writable {
                                    let span = self.span().with_subject(base.as_str());
                                    self.report.push(
                                        codes::WRITE_TO_INPUT,
                                        span,
                                        format!("`{base}` is a read-only input buffer"),
                                    );
                                }
                                self.check_store_width(base, ty, rhs);
                            }
                        }
                    }
                }
                Stmt::For {
                    id,
                    var,
                    bound,
                    trip_count,
                    body,
                    ..
                } => {
                    if !self.seen_loops.insert(id.0) {
                        self.report.push(
                            codes::DUP_LOOP_ID,
                            Span::at_loop(*id).with_stmt(sid),
                            format!("loop id {id} appears more than once"),
                        );
                    }
                    if *trip_count == Some(0) || body.is_empty() {
                        self.report.push(
                            codes::DEAD_LOOP,
                            Span::at_loop(*id).with_stmt(sid),
                            if body.is_empty() {
                                format!("loop {id} has an empty body")
                            } else {
                                format!("loop {id} has a zero trip count")
                            },
                        );
                    }
                    self.check_expr(bound);
                    self.loop_path.push(*id);
                    let inner = self.env.len();
                    self.env
                        .push((var.clone(), Binding::Scalar(CType::Int(32))));
                    self.walk(body);
                    self.env.truncate(inner);
                    self.loop_path.pop();
                }
                Stmt::If { cond, then, els } => {
                    self.check_expr(cond);
                    self.walk(then);
                    self.walk(els);
                }
            }
        }
        self.env.truncate(scope);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{CBinOp, CIntrinsic, Param};

    /// A minimal well-formed kernel: `for t in 0..N { acc[0] = in_1[t] }`.
    fn kernel() -> CFunction {
        CFunction {
            name: "k".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "in_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![
                Stmt::DeclArr {
                    name: "acc".into(),
                    ty: CType::Float,
                    len: 4,
                },
                Stmt::counted_for(
                    LoopId(0),
                    "t",
                    16,
                    vec![Stmt::Assign {
                        lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(0))),
                        rhs: Expr::index("in_1", Expr::var("t")),
                    }],
                ),
                Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::index("acc", Expr::ConstI(0)),
                },
            ],
        }
    }

    #[test]
    fn clean_kernel_passes() {
        let r = verify_function(&kernel());
        assert!(r.diagnostics.is_empty(), "{}", r.render());
    }

    #[test]
    fn undefined_variable_is_e101() {
        let mut f = kernel();
        f.body.push(Stmt::Assign {
            lhs: LValue::Var("ghost".into()),
            rhs: Expr::var("phantom"),
        });
        let r = verify_function(&f);
        let codes: Vec<_> = r.errors().map(|d| d.code.code).collect();
        assert_eq!(codes, vec!["S2FA-E101", "S2FA-E101"]);
        assert!(r.render().contains("`phantom`"));
    }

    #[test]
    fn loop_scope_ends_with_the_loop() {
        let mut f = kernel();
        // the induction variable of L0 is dead here
        f.body.push(Stmt::Assign {
            lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(1))),
            rhs: Expr::var("t"),
        });
        let r = verify_function(&f);
        assert!(r.errors().any(|d| d.code == codes::USE_BEFORE_DEF));
    }

    #[test]
    fn constant_oob_index_is_e102() {
        let mut f = kernel();
        f.body.push(Stmt::Assign {
            lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(9))),
            rhs: Expr::ConstF(0.0),
        });
        f.body.push(Stmt::Assign {
            lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(-1))),
            rhs: Expr::ConstF(0.0),
        });
        let r = verify_function(&f);
        assert_eq!(r.errors().filter(|d| d.code == codes::OOB_INDEX).count(), 2);
        assert!(r.render().contains("outside `acc[4]`"));
    }

    #[test]
    fn duplicate_loop_id_is_e103() {
        let mut f = kernel();
        f.body.push(Stmt::counted_for(LoopId(0), "u", 4, vec![]));
        let r = verify_function(&f);
        assert!(r.errors().any(|d| d.code == codes::DUP_LOOP_ID));
        // the empty body also fires W111
        assert!(r.diagnostics.iter().any(|d| d.code == codes::DEAD_LOOP));
    }

    #[test]
    fn write_to_input_is_e104() {
        let mut f = kernel();
        f.body.push(Stmt::Assign {
            lhs: LValue::Index("in_1".into(), Box::new(Expr::var("n"))),
            rhs: Expr::ConstF(1.0),
        });
        let r = verify_function(&f);
        assert!(r.errors().any(|d| d.code == codes::WRITE_TO_INPUT));
    }

    #[test]
    fn intrinsic_arity_is_e105() {
        let mut f = kernel();
        f.body.push(Stmt::Decl {
            name: "m".into(),
            ty: CType::Float,
            init: Some(Expr::Call(
                CIntrinsic::Min,
                CNumKind::F32,
                vec![Expr::ConstF(1.0)],
            )),
        });
        let r = verify_function(&f);
        assert!(r.errors().any(|d| d.code == codes::BAD_ARITY));
    }

    #[test]
    fn implicit_truncation_is_w110() {
        let mut f = kernel();
        f.body.push(Stmt::Decl {
            name: "narrow".into(),
            ty: CType::Int(32),
            init: Some(Expr::bin(
                CBinOp::Add,
                CNumKind::F64,
                Expr::ConstF(1.0),
                Expr::ConstF(2.0),
            )),
        });
        let r = verify_function(&f);
        assert!(!r.has_errors());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.code == codes::TRUNCATING_ASSIGN));
        // an explicit cast silences it
        let mut g = kernel();
        g.body.push(Stmt::Decl {
            name: "narrow".into(),
            ty: CType::Int(32),
            init: Some(Expr::Cast(
                CNumKind::F64,
                CNumKind::I32,
                Box::new(Expr::ConstF(1.0)),
            )),
        });
        assert!(verify_function(&g).diagnostics.is_empty());
    }

    #[test]
    fn zero_trip_loop_is_w111() {
        let mut f = kernel();
        f.body.push(Stmt::counted_for(
            LoopId(7),
            "z",
            0,
            vec![Stmt::Assign {
                lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::ConstF(0.0),
            }],
        ));
        let r = verify_function(&f);
        assert!(r.diagnostics.iter().any(|d| d.code == codes::DEAD_LOOP));
        assert!(!r.has_errors());
    }

    #[test]
    fn differential_reports_only_fresh_errors() {
        let base = verify_function(&kernel());
        let mut f = kernel();
        f.body.push(Stmt::Assign {
            lhs: LValue::Var("ghost".into()),
            rhs: Expr::ConstI(0),
        });
        let after = verify_function(&f);
        let fresh = new_errors(&base, &after);
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].code, codes::USE_BEFORE_DEF);
        assert!(new_errors(&base, &base).is_empty());
    }
}
