//! Design-point legality pre-screen over `(KernelSummary, DesignConfig)`.
//!
//! Two layers with very different contracts:
//!
//! * **Warnings (`W21x`)** flag directives the Merlin normalization will
//!   repair or the estimator will price as waste — pipeline on an
//!   irreducible recurrence, factors the structural transform rejects,
//!   narrow ports. These never prune anything: the pipeline is defined to
//!   survive them.
//! * **Errors (`E201`/`E202`)** are the [`Legality::prescreen`]: a design
//!   point is marked statically dead **iff** a full
//!   [`Estimator::evaluate`] would report it infeasible. The screen calls
//!   [`Estimator::resource_screen_with`] — the exact resource accounting
//!   the estimator's own feasibility verdict reads — so there can be no
//!   false positives by construction (property-tested across workloads).

use crate::diag::{codes, Diagnostic, LintReport, Span};
use s2fa_hlsir::{CFunction, KernelSummary, LoopId, PipelineMode};
use s2fa_hlssim::{Estimate, Estimator, Feasibility, KernelInvariants, ResourceScreen};
use s2fa_merlin::{check_factors, DesignConfig, TransformError};

/// Why the pre-screen rejected a point. The first two variants mirror the
/// estimator's only two infeasibility conditions, in check order; the
/// third is a *correctness* verdict from the dependence facts and only
/// exists when `KernelSummary::dataflow` is attached (the
/// `--dataflow-prescreen` path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneRule {
    /// `S2FA-E201`: the resource floor exceeds the utilization cap.
    ResourceCap,
    /// `S2FA-E202`: the replication product exceeds the routing bound.
    Unroutable,
    /// `S2FA-E303`: the point replicates a loop with a proven
    /// cross-iteration write-write race — the design is nondeterministic.
    WriteRace,
}

impl PruneRule {
    /// All rules, in stable reporting order.
    pub const ALL: [PruneRule; 3] = [
        PruneRule::ResourceCap,
        PruneRule::Unroutable,
        PruneRule::WriteRace,
    ];

    /// The lint code this rule reports under.
    pub fn code(self) -> crate::diag::LintCode {
        match self {
            PruneRule::ResourceCap => codes::RESOURCE_CAP,
            PruneRule::Unroutable => codes::UNROUTABLE,
            PruneRule::WriteRace => codes::REPLICATION_RACE,
        }
    }

    /// Dense index into per-rule counter arrays.
    pub fn index(self) -> usize {
        match self {
            PruneRule::ResourceCap => 0,
            PruneRule::Unroutable => 1,
            PruneRule::WriteRace => 2,
        }
    }
}

/// One pre-screen rejection: the rule, the estimator's reason string, and
/// the resource screen that proved it.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneHit {
    /// Which rule fired.
    pub rule: PruneRule,
    /// The reason a full evaluation would have reported.
    pub reason: String,
    /// The resource accounting behind the verdict.
    pub screen: ResourceScreen,
}

/// The design-point legality oracle for one kernel.
///
/// Build once per kernel (it precomputes the estimator invariants) and
/// query many configurations. All methods are pure: the oracle keeps no
/// counters and emits no events, so diagnostic sampling (e.g. a
/// partition's statically-dead fraction) can never perturb a search.
#[derive(Debug, Clone)]
pub struct Legality {
    summary: KernelSummary,
    estimator: Estimator,
    invariants: KernelInvariants,
}

impl Legality {
    /// An oracle for `summary` under `estimator`'s device and cost model.
    pub fn new(summary: &KernelSummary, estimator: &Estimator) -> Self {
        Legality {
            invariants: estimator.invariants(summary),
            summary: summary.clone(),
            estimator: estimator.clone(),
        }
    }

    /// The kernel this oracle screens.
    pub fn summary(&self) -> &KernelSummary {
        &self.summary
    }

    /// The pre-screen: `Some` iff the estimator would report `config`
    /// infeasible (after normalization, like every evaluation). The rule
    /// order matches the estimator's verdict order: utilization cap first,
    /// routing bound second.
    ///
    /// When dependence facts are attached to the summary
    /// (`KernelSummary::dataflow`, the `--dataflow-prescreen` path), a
    /// third rule runs first: a point that *replicates* a loop with a
    /// proven cross-iteration write-write race is pruned as
    /// nondeterministic (`E303`) even when it would synthesize — the
    /// estimator prices performance, not correctness. Without attached
    /// facts the verdict is exactly the estimator's, bit for bit.
    pub fn prescreen(&self, config: &DesignConfig) -> Option<PruneHit> {
        let screen = self
            .estimator
            .resource_screen_with(&self.summary, &self.invariants, config);
        if let Some((id, reason)) = self.replicated_race(config) {
            return Some(PruneHit {
                rule: PruneRule::WriteRace,
                reason: format!("replicating {id} is nondeterministic: {reason}"),
                screen,
            });
        }
        match screen.feasibility(self.estimator.device()) {
            Feasibility::Feasible => None,
            Feasibility::Infeasible(reason) => {
                let util = screen.resources.max_utilization(self.estimator.device());
                let rule = if util > self.estimator.device().max_util {
                    PruneRule::ResourceCap
                } else {
                    PruneRule::Unroutable
                };
                Some(PruneHit {
                    rule,
                    reason: reason.as_ref().to_owned(),
                    screen,
                })
            }
        }
    }

    /// True iff [`prescreen`](Self::prescreen) rejects the point.
    pub fn is_statically_dead(&self, config: &DesignConfig) -> bool {
        self.prescreen(config).is_some()
    }

    /// `Some((loop, why))` when `config`, after normalization, replicates
    /// a loop carrying a proven write-write race: a parallel factor above
    /// one on the racy loop itself, or `flatten` on a strict ancestor
    /// (which fully unrolls it). Requires attached dependence facts;
    /// returns `None` otherwise, keeping the default prescreen bit-
    /// identical to the estimator's verdict.
    fn replicated_race(&self, config: &DesignConfig) -> Option<(LoopId, String)> {
        let df = self.summary.dataflow.as_ref()?;
        let mut norm = config.clone();
        norm.normalize(&self.summary);
        for (&id, facts) in &df.loops {
            let Some(race) = &facts.write_race else {
                continue;
            };
            let replicated =
                norm.loop_directive(id).parallel_factor() > 1 || self.flattened_ancestor(&norm, id);
            if replicated {
                return Some((
                    id,
                    format!(
                        "two iterations provably write the same element of `{}` \
                         (statements #{} and #{})",
                        race.array, race.stmt_a, race.stmt_b
                    ),
                ));
            }
        }
        None
    }

    /// True when a strict ancestor of `id` is flattened in `config`.
    fn flattened_ancestor(&self, config: &DesignConfig, id: LoopId) -> bool {
        let mut cur = self.summary.loop_info(id).and_then(|l| l.parent);
        while let Some(p) = cur {
            if config.loop_directive(p).pipeline == PipelineMode::Flatten {
                return true;
            }
            cur = self.summary.loop_info(p).and_then(|l| l.parent);
        }
        false
    }

    /// The synthetic estimate the evaluation engine returns for a pruned
    /// point: infeasible (objective `+inf`, exactly what the estimator
    /// would report) with **zero virtual HLS minutes** — static analysis
    /// is free, which is the entire value of pruning.
    pub fn pruned_estimate(&self, hit: &PruneHit) -> Estimate {
        Estimate {
            compute_cycles: 0,
            transfer_cycles: 0,
            total_cycles: 0,
            ii_critical: 0.0,
            freq_mhz: 0.0,
            time_ms: f64::INFINITY,
            batch_tasks: self.summary.tasks_hint,
            resources: hit.screen.resources,
            feasibility: Feasibility::Infeasible(
                format!("pruned by {}: {}", hit.rule.code().code, hit.reason).into(),
            ),
            hls_minutes: 0.0,
        }
    }

    /// Full diagnostic check of one (raw) design point: `W21x` warnings
    /// for directives normalization will repair or the estimator will
    /// price as waste, plus the `E20x` pre-screen verdict.
    pub fn check(&self, config: &DesignConfig) -> LintReport {
        let mut report = LintReport::new(&self.summary.name);
        self.warn_directives(config, &mut report);
        if let Some(hit) = self.prescreen(config) {
            report.push(hit.rule.code(), Span::kernel(), hit.reason);
        }
        report
    }

    fn warn_directives(&self, config: &DesignConfig, report: &mut LintReport) {
        for (&id, d) in &config.loops {
            let Some(l) = self.summary.loop_info(id) else {
                continue;
            };
            let tc = l.trip_count;
            if let Some(t) = d.tile {
                if t <= 1 || t >= tc {
                    report.push(
                        codes::FACTOR_OUT_OF_RANGE,
                        Span::at_loop(id),
                        format!("tile factor {t} is outside (1, {tc}); normalization drops it"),
                    );
                } else if tc % t != 0 {
                    report.push(
                        codes::NON_DIVIDING_FACTOR,
                        Span::at_loop(id),
                        format!("tile factor {t} does not divide trip count {tc}"),
                    );
                }
            }
            let u = d.parallel_factor();
            if u > tc {
                report.push(
                    codes::FACTOR_OUT_OF_RANGE,
                    Span::at_loop(id),
                    format!("parallel factor {u} exceeds trip count {tc}; normalization clamps it"),
                );
            } else if u > 1 && tc % u != 0 {
                report.push(
                    codes::NON_DIVIDING_FACTOR,
                    Span::at_loop(id),
                    format!("parallel factor {u} does not divide trip count {tc}"),
                );
            }
            let irreducible = l.carried.as_ref().is_some_and(|c| !c.reducible);
            let reducible = l.carried.as_ref().is_some_and(|c| c.reducible);
            if d.pipeline == PipelineMode::On && irreducible {
                report.push(
                    codes::PIPELINE_IRREDUCIBLE,
                    Span::at_loop(id),
                    format!("loop {id} carries an irreducible recurrence; the II stays chained"),
                );
            }
            if u > 1 && irreducible {
                report.push(
                    codes::PARALLEL_IRREDUCIBLE,
                    Span::at_loop(id),
                    format!(
                        "parallel {u} on the non-reducible recurrence of {id}; \
                         normalization resets it to 1"
                    ),
                );
            }
            if d.tree_reduce && !reducible {
                report.push(
                    codes::USELESS_TREE_REDUCE,
                    Span::at_loop(id),
                    format!("loop {id} has no reducible recurrence to tree-reduce"),
                );
            }
            if d.pipeline == PipelineMode::Flatten {
                let live: Vec<_> = self
                    .summary
                    .descendants(id)
                    .into_iter()
                    .filter(|sub| {
                        config.loops.get(sub).is_some_and(|sd| {
                            sd.tile.is_some()
                                || sd.parallel_factor() > 1
                                || sd.pipeline != PipelineMode::Off
                                || sd.tree_reduce
                        })
                    })
                    .collect();
                if !live.is_empty() {
                    let subs = live
                        .iter()
                        .map(|s| s.to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    report.push(
                        codes::FLATTEN_LIVE_SUBLOOPS,
                        Span::at_loop(id),
                        format!(
                            "flatten on {id} fully unrolls {subs}, whose own factors \
                             are dead; normalization zeroes them"
                        ),
                    );
                }
            }
        }
        for (name, &bits) in &config.buffer_bits {
            if let Some(b) = self.summary.buffer(name) {
                if bits < b.elem_bits {
                    report.push(
                        codes::NARROW_PORT,
                        Span::subject(name.as_str()),
                        format!(
                            "port width {bits} is below the {}-bit element of `{name}`; \
                             every access straddles words",
                            b.elem_bits
                        ),
                    );
                }
            }
        }
    }
}

/// Maps the [`TransformError`]s of [`check_factors`] against the real AST
/// into `W212`/`W213` diagnostics — the structural-transform view of the
/// factor rules, used by `s2fa_cli lint` where the generated `CFunction`
/// is at hand.
pub fn factor_diagnostics(f: &CFunction, config: &DesignConfig) -> Vec<Diagnostic> {
    check_factors(f, config)
        .into_iter()
        .map(|e| {
            let (code, span) = match &e {
                TransformError::NonDividingFactor { id, .. } => {
                    (codes::NON_DIVIDING_FACTOR, Span::at_loop(*id))
                }
                TransformError::BadFactor { id, .. } => {
                    (codes::FACTOR_OUT_OF_RANGE, Span::at_loop(*id))
                }
                TransformError::NoSuchLoop(id) | TransformError::DynamicBound(id) => {
                    (codes::FACTOR_OUT_OF_RANGE, Span::at_loop(*id))
                }
            };
            Diagnostic {
                code,
                span,
                message: e.to_string(),
            }
        })
        .collect()
}
