#![warn(missing_docs)]

//! # s2fa-lint — static legality & well-formedness analysis
//!
//! S2FA's DSE burns multi-minute virtual HLS evaluations; spending them on
//! design points that are *statically* doomed — or on kernels a transform
//! has silently corrupted — is pure waste. This crate lifts those checks
//! into a rule-based analyzer with stable `S2FA-Exxx` / `S2FA-Wxxx` codes
//! (rustc-style rendering, loop-path/buffer spans), in two families:
//!
//! * [`wellformed::verify_function`] — IR well-formedness over the
//!   generated [`CFunction`](s2fa_hlsir::CFunction) AST: use-before-def,
//!   constant out-of-bounds indices, duplicate loop ids, writes to input
//!   buffers, intrinsic arity, silent truncation, dead loops. Runs after
//!   bytecode→C codegen, and differentially ([`wellformed::new_errors`])
//!   after every `merlin::apply_structural` rewrite.
//! * [`legality::Legality`] — a design-point pre-screen over
//!   `(KernelSummary, DesignConfig)`. Warnings flag directives the Merlin
//!   normalization repairs (they are never pruned); the `E201`/`E202`
//!   errors mark a point statically dead **iff** the estimator would
//!   report it infeasible — the screen shares the estimator's own
//!   resource accounting ([`s2fa_hlssim::ResourceScreen`]), so it has no
//!   false positives by construction.
//! * [`dataflow_rules::dataflow_checks`] — dataflow-backed rules
//!   (`E3xx`/`W310`) over the CFG, reaching-definitions/liveness facts,
//!   and the affine dependence engine of `hlsir::dataflow`: provably
//!   uninitialized reads, provably out-of-bounds affine indices,
//!   cross-iteration replication write-races, dead stores. The `E3xx`
//!   verdicts are validated dynamically against the IR interpreter
//!   (`tests/dataflow_prop.rs`).
//!
//! The evaluation engine consults the oracle ahead of its memo cache
//! (`pruned_illegal` on `CacheStats`, `Event::Prune` in the trace stream),
//! the DSE reports each partition's statically-dead fraction, and
//! `s2fa_cli lint` prints the per-kernel reports. The severity split is
//! load-bearing: only verdicts that provably match the dynamic pipeline
//! (`E`) may prune; everything heuristic stays `W`.

pub mod dataflow_rules;
pub mod diag;
pub mod legality;
pub mod wellformed;

pub use dataflow_rules::{dataflow_checks, new_dataflow_errors};
pub use diag::{codes, Diagnostic, LintCode, LintReport, Severity, Span};
pub use legality::{factor_diagnostics, Legality, PruneHit, PruneRule};
pub use wellformed::{new_errors, verify_function};

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{
        Access, BufferDir, BufferInfo, CarriedDep, KernelSummary, LoopId, LoopInfo, OpCounts,
        PipelineMode, Stride,
    };
    use s2fa_hlssim::Estimator;
    use s2fa_merlin::DesignConfig;

    /// The dot-product fixture shared with the hlssim/engine test suites:
    /// task loop (1024) over a reducible reduction loop (64).
    fn summary() -> KernelSummary {
        let mut inner_ops = OpCounts::new();
        inner_ops.fadd = 1;
        inner_ops.fmul = 1;
        inner_ops.mem_read = 2;
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        let mut outer_ops = OpCounts::new();
        outer_ops.mem_write = 1;
        KernelSummary {
            name: "dot".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: outer_ops,
                    accesses: vec![Access {
                        buffer: "out_1".into(),
                        write: true,
                        stride: Stride::Unit,
                    }],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 64,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: inner_ops,
                    accesses: vec![
                        Access {
                            buffer: "in_1".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                        Access {
                            buffer: "w".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                    ],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "w".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "out_1".into(),
                    elem_bits: 32,
                    len: 1,
                    dir: BufferDir::Out,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn prescreen_matches_the_estimator_verdict() {
        let s = summary();
        let est = Estimator::new();
        let oracle = Legality::new(&s, &est);
        let mut cfgs = vec![DesignConfig::area_seed(&s), DesignConfig::perf_seed(&s)];
        let mut huge = DesignConfig::perf_seed(&s);
        huge.loop_directive_mut(LoopId(0)).parallel = 512;
        huge.loop_directive_mut(LoopId(1)).parallel = 64;
        cfgs.push(huge);
        for cfg in &cfgs {
            let dead = oracle.prescreen(cfg);
            let eval = est.evaluate(&s, cfg);
            assert_eq!(dead.is_some(), !eval.is_feasible(), "{cfg:?}");
            if let Some(hit) = dead {
                let est = oracle.pruned_estimate(&hit);
                assert_eq!(est.objective(), eval.objective());
                assert_eq!(est.hls_minutes, 0.0, "pruning must be free");
            }
        }
    }

    #[test]
    fn seed_verdicts_match_the_estimator() {
        let s = summary();
        let est = Estimator::new();
        let oracle = Legality::new(&s, &est);
        // The conservative area seed is always clean; the aggressive perf
        // seed may legitimately blow the cap — either way the E-verdict
        // must equal the estimator's.
        let area = oracle.check(&DesignConfig::area_seed(&s));
        assert!(!area.has_errors(), "{}", area.render());
        for cfg in [DesignConfig::area_seed(&s), DesignConfig::perf_seed(&s)] {
            let r = oracle.check(&cfg);
            assert_eq!(r.has_errors(), !est.evaluate(&s, &cfg).is_feasible());
        }
    }

    #[test]
    fn racy_replication_is_pruned_only_with_facts() {
        use s2fa_hlsir::dataflow::{KernelDataflow, LoopDataflow, RaceFinding};
        let mut s = summary();
        let est = Estimator::new();
        let mut par = DesignConfig::area_seed(&s);
        par.loop_directive_mut(LoopId(1)).parallel = 4;
        // Without attached facts the verdict is the estimator's: feasible.
        assert!(Legality::new(&s, &est).prescreen(&par).is_none());
        // Attach a proven race on L1.
        let mut loops = std::collections::BTreeMap::new();
        loops.insert(
            LoopId(1),
            LoopDataflow {
                write_race: Some(RaceFinding {
                    loop_id: LoopId(1),
                    array: "acc".into(),
                    stmt_a: 3,
                    stmt_b: 3,
                }),
                replication_safe: false,
                extra_carried: None,
                carried_distance: None,
            },
        );
        s.dataflow = Some(KernelDataflow { loops });
        let oracle = Legality::new(&s, &est);
        // Sequential execution of a racy loop stays legal...
        assert!(oracle.prescreen(&DesignConfig::area_seed(&s)).is_none());
        // ...but replicating it is pruned as nondeterministic.
        let hit = oracle.prescreen(&par).expect("replicated race");
        assert_eq!(hit.rule, PruneRule::WriteRace);
        assert_eq!(hit.rule.code().code, "S2FA-E303");
        assert!(!oracle.pruned_estimate(&hit).is_feasible());
        // Flatten on the parent fully unrolls the racy child: pruned too.
        let mut flat = DesignConfig::area_seed(&s);
        flat.loop_directive_mut(LoopId(0)).pipeline = PipelineMode::Flatten;
        assert_eq!(
            oracle.prescreen(&flat).expect("flattened race").rule,
            PruneRule::WriteRace
        );
        // The full check reports it under E303.
        assert!(oracle
            .check(&par)
            .diagnostics
            .iter()
            .any(|d| d.code.code == "S2FA-E303"));
    }

    #[test]
    fn directive_smells_produce_w_codes() {
        let s = summary();
        let oracle = Legality::new(&s, &Estimator::new());
        let mut cfg = DesignConfig::area_seed(&s);
        {
            let d = cfg.loop_directive_mut(LoopId(1));
            d.tile = Some(48); // 48 does not divide 64
            d.parallel = 9999; // clamps
            d.tree_reduce = false;
        }
        cfg.loop_directive_mut(LoopId(0)).pipeline = PipelineMode::Flatten;
        cfg.loop_directive_mut(LoopId(0)).tree_reduce = true;
        cfg.buffer_bits.insert("in_1".into(), 16);
        let r = oracle.check(&cfg);
        let fired: Vec<_> = r.diagnostics.iter().map(|d| d.code.code).collect();
        for expect in [
            "S2FA-W211", // flatten over a live sub-loop
            "S2FA-W212", // non-dividing tile
            "S2FA-W213", // clamped parallel
            "S2FA-W216", // tree_reduce without a recurrence on L0
            "S2FA-W215", // 16-bit port under a 32-bit element
        ] {
            assert!(fired.contains(&expect), "missing {expect} in {fired:?}");
        }
    }
}
