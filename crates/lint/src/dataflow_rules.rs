//! Dataflow-backed lint rules (`S2FA-E3xx` / `S2FA-W310`).
//!
//! These rules run the `hlsir::dataflow` analyses (CFG + reaching
//! definitions + liveness + the affine dependence engine) over a generated
//! [`CFunction`] and report findings with the same statement numbering the
//! analyses use, so a rule and a CFG fact about one statement agree on its
//! id by construction.
//!
//! The severity contract of the crate holds here with a *dynamic* twist:
//! every `E3xx` finding is validated against the `hlsir::exec` interpreter
//! as an oracle (property-tested in `tests/dataflow_prop.rs`) — an
//! E301-flagged kernel must actually read uninitialized storage when run,
//! and a kernel the race detector *clears* must produce bit-identical
//! outputs under any iteration interleaving. Anything the static analysis
//! cannot prove stays silent or warns; it never errors.
//!
//! * **E301** — a read whose every statically reaching definition is an
//!   uninitialized declaration, at a statement that provably executes.
//!   Reads with *no* reaching definition are E101's domain (undeclared
//!   variables); reads with a mix of initialized and uninitialized
//!   reaching defs may be fine at runtime and are not errors.
//! * **E302** — an affine, non-constant index whose value range over the
//!   enclosing loop bounds provably leaves a local array. Constant
//!   indices are E102's domain.
//! * **E303** — two iterations of a loop provably write the same element
//!   of a shared array: replicating the loop (what `parallel`/`flatten`
//!   directives do) is nondeterministic. Read-modify-write accumulations
//!   and arrays private to the loop body are excluded.
//! * **W310** — a store no later statement can observe.

use crate::diag::{codes, Diagnostic, LintReport, Span};
use s2fa_hlsir::dataflow::{
    affine_form, collect_sites, depend::const_value, find_write_race, AccessSite, Cfg, Liveness,
    ReachingDefs, StmtId,
};
use s2fa_hlsir::{CFunction, Stmt};
use std::collections::BTreeSet;

/// Runs every dataflow-backed rule over one kernel function.
///
/// `tasks_hint` is the batch size assumed for the runtime-bounded task
/// loop (its trip count is not static; the dependence engine needs *some*
/// domain). The function is self-contained — it builds the CFG and the
/// analyses itself — so it can run differentially after a Merlin transform
/// without a `KernelSummary` at hand.
pub fn dataflow_checks(f: &CFunction, tasks_hint: u32) -> LintReport {
    let mut report = LintReport::new(format!("{} (dataflow)", f.name));
    let cfg = Cfg::build(f);
    let rd = ReachingDefs::compute(&cfg);
    let lv = Liveness::compute(&cfg);
    let sites = collect_sites(&f.body);

    uninit_reads(&cfg, &rd, &mut report);
    dead_stores(&cfg, &lv, &mut report);
    affine_oob(&cfg, &sites, &mut report);
    write_races(f, &sites, tasks_hint, &mut report);

    report
}

/// Error-severity findings of `after` with no counterpart in `baseline`,
/// for differential checking around a structural transform: a rewrite must
/// not *introduce* an `E3xx` the pre-image did not have. Matching is by
/// (code, subject) rather than the exact-diagnostic equality of
/// [`crate::wellformed::new_errors`]: transforms renumber statements and
/// introduce loops, so a surviving pre-existing finding moves spans, but
/// its rule and its array/variable do not.
pub fn new_dataflow_errors(baseline: &LintReport, after: &LintReport) -> Vec<Diagnostic> {
    after
        .errors()
        .filter(|d| {
            !baseline
                .errors()
                .any(|b| b.code.code == d.code.code && b.span.subject == d.span.subject)
        })
        .cloned()
        .collect()
}

/// E301: reads whose every reaching definition is uninitialized.
fn uninit_reads(cfg: &Cfg, rd: &ReachingDefs, report: &mut LintReport) {
    for (i, info) in cfg.stmts.iter().enumerate() {
        let sid = StmtId(i as u32);
        let mut seen = Vec::new();
        for &v in &info.uses {
            if seen.contains(&v) {
                continue;
            }
            seen.push(v);
            let reaching = rd.reaching(sid, v);
            // Empty = undeclared (E101's domain); a mix of initialized and
            // uninitialized defs is a may-uninit read, not a proven one.
            if reaching.is_empty() || reaching.iter().any(|d| !d.uninit) {
                continue;
            }
            if !cfg.provably_executes(sid) {
                continue;
            }
            let name = cfg.vars.name(v);
            report.push(
                codes::UNINIT_READ,
                Span {
                    loop_path: info.loop_path.clone(),
                    subject: Some(name.to_string()),
                    stmt: Some(i as u32),
                },
                format!(
                    "`{name}` is read here, but every definition reaching this \
                     statement is an uninitialized declaration"
                ),
            );
        }
    }
}

/// W310: must-def stores whose value no later statement can observe.
fn dead_stores(cfg: &Cfg, lv: &Liveness, report: &mut LintReport) {
    use s2fa_hlsir::dataflow::StmtKind;
    for (i, info) in cfg.stmts.iter().enumerate() {
        if info.kind != StmtKind::Assign || info.defs.is_empty() {
            continue;
        }
        let sid = StmtId(i as u32);
        // May-defs (whole-array writes) are never provably dead; must-defs
        // are dead when nothing is live after on any path.
        if info.defs.iter().any(|&v| lv.live_after(sid, v)) {
            continue;
        }
        let name = cfg.vars.name(info.defs[0]);
        report.push(
            codes::DEAD_STORE,
            Span {
                loop_path: info.loop_path.clone(),
                subject: Some(name.to_string()),
                stmt: Some(i as u32),
            },
            format!("value stored to `{name}` is never read"),
        );
    }
}

/// E302: affine non-constant indices provably outside a local array.
fn affine_oob(cfg: &Cfg, sites: &[AccessSite], report: &mut LintReport) {
    let mut reported: BTreeSet<(u32, &str)> = BTreeSet::new();
    for site in sites {
        let Some(&len) = cfg.local_lens.get(&site.array) else {
            continue; // interface buffers have no static per-task extent here
        };
        if const_value(&site.index).is_some() {
            continue; // constant indices are E102's domain
        }
        let Some(form) = affine_form(&site.index) else {
            continue;
        };
        // Range of the index over the full iteration domain. An affine
        // function over a box attains its extremes at corners, and counted
        // loops run their full range, so a bound violation is attained by
        // a real iteration — provided the access itself always runs.
        if site.in_branch || site.loops.iter().any(|fr| fr.trip.is_some_and(|t| t == 0)) {
            continue;
        }
        let (mut lo, mut hi) = (form.offset, form.offset);
        let mut bounded = true;
        for (var, &c) in &form.terms {
            // Innermost binding wins under shadowing.
            match site.loops.iter().rev().find(|fr| &fr.var == var) {
                Some(fr) => match fr.trip {
                    Some(t) if t >= 1 => {
                        let top = c * (t as i64 - 1);
                        if c >= 0 {
                            hi += top;
                        } else {
                            lo += top;
                        }
                    }
                    // Runtime-bounded loop: the index is unbounded above.
                    _ => bounded = false,
                },
                // A runtime scalar: no static range.
                None => bounded = false,
            }
        }
        if !bounded || (lo >= 0 && hi < len as i64) {
            continue;
        }
        if !reported.insert((site.stmt, site.array.as_str())) {
            continue;
        }
        report.push(
            codes::AFFINE_OOB,
            Span {
                loop_path: site.loops.iter().map(|fr| fr.id).collect(),
                subject: Some(site.array.clone()),
                stmt: Some(site.stmt),
            },
            format!(
                "index ranges over [{lo}, {hi}] but `{}` has {len} element(s)",
                site.array
            ),
        );
    }
}

/// E303: proven cross-iteration write-write races, per loop.
fn write_races(f: &CFunction, sites: &[AccessSite], tasks_hint: u32, report: &mut LintReport) {
    let mut findings = Vec::new();
    f.visit_loops(|s| {
        let Stmt::For { id, body, .. } = s else {
            return;
        };
        if let Some(r) = find_write_race(sites, body, *id, tasks_hint) {
            findings.push(r);
        }
    });
    for r in findings {
        let pair = if r.stmt_a == r.stmt_b {
            format!("statement #{}", r.stmt_a)
        } else {
            format!("statements #{} and #{}", r.stmt_a, r.stmt_b)
        };
        report.push(
            codes::REPLICATION_RACE,
            Span::at_loop(r.loop_id)
                .with_stmt(r.stmt_a)
                .with_subject(r.array.clone()),
            format!(
                "two iterations of {} provably write the same element of \
                 `{}` ({pair}); replicating the loop is nondeterministic",
                r.loop_id, r.array
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{CBinOp, CNumKind, CType, Expr, LValue, LoopAttrs, LoopId, Param, ParamKind};

    fn out_param(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: CType::Float,
            kind: ParamKind::BufOut,
            elems_per_task: Some(1),
            broadcast: false,
        }
    }

    fn func(body: Vec<Stmt>) -> CFunction {
        CFunction {
            name: "k".into(),
            params: vec![out_param("out")],
            body,
        }
    }

    fn counted(id: u32, var: &str, trip: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            id: LoopId(id),
            var: var.into(),
            bound: Expr::ConstI(trip as i64),
            trip_count: Some(trip),
            attrs: LoopAttrs::none(),
            body,
        }
    }

    fn codes_of(r: &LintReport) -> Vec<&'static str> {
        r.diagnostics.iter().map(|d| d.code.code).collect()
    }

    #[test]
    fn uninit_scalar_read_is_e301() {
        // float x; out[0] = x
        let f = func(vec![
            Stmt::Decl {
                name: "x".into(),
                ty: CType::Float,
                init: None,
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::var("x"),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert_eq!(codes_of(&r), vec!["S2FA-E301"]);
        let d = &r.diagnostics[0];
        assert_eq!(d.span.stmt, Some(1));
        assert_eq!(d.span.subject.as_deref(), Some("x"));
    }

    #[test]
    fn branch_initialized_read_is_not_an_error() {
        // float x; if (out[0]) { x = 1 }; out[0] = x — may-uninit, silent.
        let f = func(vec![
            Stmt::Decl {
                name: "x".into(),
                ty: CType::Float,
                init: None,
            },
            Stmt::If {
                cond: Expr::index("out", Expr::ConstI(0)),
                then: vec![Stmt::Assign {
                    lhs: LValue::Var("x".into()),
                    rhs: Expr::ConstF(1.0),
                }],
                els: vec![],
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::var("x"),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert!(
            !codes_of(&r).contains(&"S2FA-E301"),
            "may-uninit must not error: {}",
            r.render()
        );
    }

    #[test]
    fn uninit_array_element_read_is_e301() {
        // float a[4]; a[0] = 1; out[0] = a[0] + a[1] — a[1] never written.
        let f = func(vec![
            Stmt::DeclArr {
                name: "a".into(),
                ty: CType::Float,
                len: 4,
            },
            Stmt::Assign {
                lhs: LValue::Index("a".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::ConstF(1.0),
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::bin(
                    CBinOp::Add,
                    CNumKind::F32,
                    Expr::index("a", Expr::ConstI(0)),
                    Expr::index("a", Expr::ConstI(1)),
                ),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert_eq!(codes_of(&r), vec!["S2FA-E301"]);
        assert_eq!(r.diagnostics[0].span.subject.as_deref(), Some("a[1]"));
    }

    #[test]
    fn dead_store_is_w310_and_final_store_is_not() {
        // float t = 1; t = 2; out[0] = t — s1's store of 1 is dead... but
        // W310 only covers Assign, so the decl stays silent; the t = 2
        // store is live.
        let f = func(vec![
            Stmt::Decl {
                name: "t".into(),
                ty: CType::Float,
                init: Some(Expr::ConstF(1.0)),
            },
            Stmt::Assign {
                lhs: LValue::Var("t".into()),
                rhs: Expr::ConstF(2.0),
            },
            Stmt::Assign {
                lhs: LValue::Var("u".into()),
                rhs: Expr::var("t"),
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::var("t"),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert_eq!(codes_of(&r), vec!["S2FA-W310"]);
        assert_eq!(r.diagnostics[0].span.subject.as_deref(), Some("u"));
    }

    #[test]
    fn affine_oob_is_e302() {
        // float a[8]; for i in 0..16 { a[i] = i } — i reaches 15.
        let f = func(vec![
            Stmt::DeclArr {
                name: "a".into(),
                ty: CType::Float,
                len: 8,
            },
            counted(
                0,
                "i",
                16,
                vec![Stmt::Assign {
                    lhs: LValue::Index("a".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::var("i"),
                }],
            ),
        ]);
        let r = dataflow_checks(&f, 16);
        assert!(codes_of(&r).contains(&"S2FA-E302"), "{}", r.render());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code.code == "S2FA-E302")
            .unwrap();
        assert!(d.message.contains("[0, 15]"), "{}", d.message);
        assert_eq!(d.span.loop_path, vec![LoopId(0)]);
    }

    #[test]
    fn in_bounds_and_conditional_indices_stay_silent() {
        // a[i] over 0..8 into a[8] is fine; an OOB write under an `if`
        // cannot be proven to execute.
        let f = func(vec![
            Stmt::DeclArr {
                name: "a".into(),
                ty: CType::Float,
                len: 8,
            },
            counted(
                0,
                "i",
                8,
                vec![Stmt::Assign {
                    lhs: LValue::Index("a".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::var("i"),
                }],
            ),
            counted(
                1,
                "j",
                16,
                vec![Stmt::If {
                    cond: Expr::index("a", Expr::ConstI(0)),
                    then: vec![Stmt::Assign {
                        lhs: LValue::Index("a".into(), Box::new(Expr::var("j"))),
                        rhs: Expr::var("j"),
                    }],
                    els: vec![],
                }],
            ),
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::index("a", Expr::ConstI(0)),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert!(!codes_of(&r).contains(&"S2FA-E302"), "{}", r.render());
    }

    #[test]
    fn replication_race_is_e303_and_private_arrays_are_not() {
        // Shared acc: every iteration of L0 writes acc[0] — a race. The
        // kernel also has a private scratch inside L1 doing the same
        // thing, which replication privatizes — no finding for it.
        let f = func(vec![
            Stmt::DeclArr {
                name: "acc".into(),
                ty: CType::Float,
                len: 4,
            },
            counted(
                0,
                "i",
                8,
                vec![Stmt::Assign {
                    lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::var("i"),
                }],
            ),
            counted(
                1,
                "j",
                8,
                vec![
                    Stmt::DeclArr {
                        name: "scratch".into(),
                        ty: CType::Float,
                        len: 2,
                    },
                    Stmt::Assign {
                        lhs: LValue::Index("scratch".into(), Box::new(Expr::ConstI(0))),
                        rhs: Expr::var("j"),
                    },
                    Stmt::Assign {
                        lhs: LValue::Index("out".into(), Box::new(Expr::var("j"))),
                        rhs: Expr::index("scratch", Expr::ConstI(0)),
                    },
                ],
            ),
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::index("acc", Expr::ConstI(0)),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        let races: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code.code == "S2FA-E303")
            .collect();
        assert_eq!(races.len(), 1, "{}", r.render());
        assert_eq!(races[0].span.loop_path, vec![LoopId(0)]);
        assert_eq!(races[0].span.subject.as_deref(), Some("acc"));
    }

    #[test]
    fn clean_reduction_kernel_is_clean() {
        // float s = 0; for i { s = s + out[0] }; out[0] = s — initialized,
        // live, in bounds, races excluded (scalar recurrence is not E303).
        let f = func(vec![
            Stmt::Decl {
                name: "s".into(),
                ty: CType::Float,
                init: Some(Expr::ConstF(0.0)),
            },
            counted(
                0,
                "i",
                8,
                vec![Stmt::Assign {
                    lhs: LValue::Var("s".into()),
                    rhs: Expr::bin(
                        CBinOp::Add,
                        CNumKind::F32,
                        Expr::var("s"),
                        Expr::index("out", Expr::ConstI(0)),
                    ),
                }],
            ),
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::var("s"),
            },
        ]);
        let r = dataflow_checks(&f, 16);
        assert!(r.diagnostics.is_empty(), "{}", r.render());
    }
}
