//! Property tests for the HLS model: determinism, conservation laws, and
//! the qualitative monotonicities the DSE relies on.

use proptest::prelude::*;
use s2fa_hlsir::{
    Access, BufferDir, BufferInfo, CarriedDep, KernelSummary, LoopId, LoopInfo, OpCounts,
    PipelineMode, Stride,
};
use s2fa_hlssim::{Device, Estimator};
use s2fa_merlin::DesignConfig;

/// A parameterized two-level kernel summary (task loop over a reduction).
fn summary(inner_tc: u32, fadds: u32, reads: u32) -> KernelSummary {
    let mut inner_ops = OpCounts::new();
    inner_ops.fadd = fadds;
    inner_ops.fmul = fadds;
    inner_ops.mem_read = reads;
    let mut chain = OpCounts::new();
    chain.fadd = 1;
    let mut outer_ops = OpCounts::new();
    outer_ops.mem_write = 1;
    KernelSummary {
        name: "p".into(),
        loops: vec![
            LoopInfo {
                id: LoopId(0),
                var: "t".into(),
                trip_count: 1024,
                depth: 0,
                parent: None,
                children: vec![LoopId(1)],
                body_ops: outer_ops,
                accesses: vec![Access {
                    buffer: "out_1".into(),
                    write: true,
                    stride: Stride::Unit,
                }],
                carried: None,
            },
            LoopInfo {
                id: LoopId(1),
                var: "j".into(),
                trip_count: inner_tc,
                depth: 1,
                parent: Some(LoopId(0)),
                children: vec![],
                body_ops: inner_ops,
                accesses: vec![Access {
                    buffer: "in_1".into(),
                    write: false,
                    stride: Stride::Unit,
                }],
                carried: Some(CarriedDep {
                    via: "s".into(),
                    chain,
                    reducible: true,
                }),
            },
        ],
        buffers: vec![
            BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: inner_tc,
                dir: BufferDir::In,
                broadcast: false,
            },
            BufferInfo {
                name: "out_1".into(),
                elem_bits: 32,
                len: 1,
                dir: BufferDir::Out,
                broadcast: false,
            },
        ],
        task_loop: LoopId(0),
        tasks_hint: 1024,
        dataflow: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn estimator_is_deterministic(
        tc_pow in 3u32..8,
        fadds in 1u32..4,
        reads in 1u32..4,
        par_idx in 0u32..5,
        pipe in 0u8..3,
    ) {
        let s = summary(1 << tc_pow, fadds, reads);
        let mut cfg = DesignConfig::area_seed(&s);
        {
            let d = cfg.loop_directive_mut(LoopId(1));
            d.parallel = 1 << par_idx;
            d.pipeline = match pipe {
                0 => PipelineMode::Off,
                1 => PipelineMode::On,
                _ => PipelineMode::Flatten,
            };
        }
        let est = Estimator::new();
        prop_assert_eq!(est.evaluate(&s, &cfg), est.evaluate(&s, &cfg));
    }

    #[test]
    fn estimates_are_physical(
        tc_pow in 3u32..8,
        fadds in 1u32..4,
        reads in 1u32..4,
        par_idx in 0u32..6,
    ) {
        let s = summary(1 << tc_pow, fadds, reads);
        let mut cfg = DesignConfig::perf_seed(&s);
        cfg.loop_directive_mut(LoopId(0)).parallel = 1 << par_idx;
        let e = Estimator::new().evaluate(&s, &cfg);
        prop_assert!(e.freq_mhz >= 60.0 && e.freq_mhz <= 250.0);
        prop_assert!(e.hls_minutes > 0.0 && e.hls_minutes <= 45.0);
        prop_assert!(e.total_cycles >= e.compute_cycles.min(e.transfer_cycles));
        prop_assert!(e.resources.lut > 0.0 && e.resources.ff > 0.0);
        prop_assert!(e.ii_critical >= 1.0);
        if e.is_feasible() {
            let util = e.resources.max_utilization(Estimator::new().device());
            prop_assert!(util <= Device::vu9p().max_util + 1e-9);
            prop_assert!(e.objective().is_finite());
        } else {
            prop_assert!(e.objective().is_infinite());
        }
    }

    #[test]
    fn pipelining_never_hurts_compute(
        tc_pow in 4u32..8,
        fadds in 1u32..4,
        reads in 1u32..3,
    ) {
        let s = summary(1 << tc_pow, fadds, reads);
        let est = Estimator::new();
        let off = DesignConfig::area_seed(&s);
        let mut on = off.clone();
        on.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        let e_off = est.evaluate(&s, &off);
        let e_on = est.evaluate(&s, &on);
        prop_assert!(
            e_on.compute_cycles <= e_off.compute_cycles,
            "pipelined {} vs sequential {}",
            e_on.compute_cycles,
            e_off.compute_cycles
        );
    }

    #[test]
    fn wider_ports_never_slow_the_transfer(
        tc_pow in 3u32..8,
        fadds in 1u32..4,
    ) {
        let s = summary(1 << tc_pow, fadds, 2);
        let est = Estimator::new();
        let mut narrow = DesignConfig::area_seed(&s);
        narrow.buffer_bits.insert("in_1".into(), 16);
        narrow.buffer_bits.insert("out_1".into(), 16);
        let mut wide = narrow.clone();
        wide.buffer_bits.insert("in_1".into(), 512);
        wide.buffer_bits.insert("out_1".into(), 512);
        let en = est.evaluate(&s, &narrow);
        let ew = est.evaluate(&s, &wide);
        prop_assert!(ew.transfer_cycles <= en.transfer_cycles);
    }

    #[test]
    fn batch_scaling_is_linear(tc_pow in 3u32..7, n in 1u64..1_000_000) {
        let s = summary(1 << tc_pow, 2, 2);
        let e = Estimator::new().evaluate(&s, &DesignConfig::area_seed(&s));
        let t1 = e.time_ms_for_tasks(n);
        let t2 = e.time_ms_for_tasks(2 * n);
        prop_assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
