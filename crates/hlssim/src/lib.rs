#![warn(missing_docs)]

//! # s2fa-hlssim — the Xilinx SDx substitute
//!
//! S2FA evaluates every design point by running high-level synthesis:
//! "we use the Xilinx SDx to perform HLS for resource and cycle estimation
//! instead of building an analytical model. However, HLS takes several
//! minutes to evaluate one design point" (§4.2, Impediment 1).
//!
//! Without the vendor toolchain, this crate provides an analytical HLS +
//! place-&-route model of the paper's device (a Virtex UltraScale+ VU9P on
//! an AWS F1 `f1.2xlarge`). The DSE layers above observe only what the real
//! flow reports — `(cycles, resources, frequency, feasible?, minutes)` —
//! and the model reproduces the landscape features the paper's results
//! depend on:
//!
//! * initiation intervals bounded by recurrence chains and by memory-port
//!   contention (buffer bit-width × unroll factor);
//! * resource usage scaling with parallelism and flattening, with the 75 %
//!   utilization feasibility cap (footnote 5);
//! * clock-frequency degradation under heavy replication/congestion;
//! * compute- vs memory-bound behaviour (transfer vs compute overlap);
//! * multi-minute evaluation cost per design point, charged to a virtual
//!   clock so DSE experiments measure "hours" deterministically.

pub mod cost;
pub mod device;
pub mod estimate;
pub mod invariants;
pub mod model;
pub mod report;
pub mod resource;
pub mod subtree;

pub use cost::HlsCosts;
pub use device::Device;
pub use estimate::{Estimate, Estimator, Feasibility, ResourceScreen, MAX_REPLICATION};
pub use invariants::KernelInvariants;
pub use resource::ResourceUsage;
pub use subtree::{Res, SubFnv, SubtreeCost, SubtreeKey, SubtreeStore};
