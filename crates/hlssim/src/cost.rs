//! Per-operation HLS scheduling latencies and resource footprints.
//!
//! These constants approximate Vivado HLS characterization of floating and
//! integer operators on an UltraScale+ part at a 250 MHz target. Absolute
//! accuracy is not the goal (the paper itself reports only relative
//! trends); what matters is the *ordering* — transcendentals ≫ divides ≫
//! multiplies ≫ adds — and the DSP/LUT split that drives Table 2's
//! utilization profile.

use s2fa_hlsir::OpCounts;

/// One operator class's scheduling latency (cycles) and per-instance
/// resource footprint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Pipeline latency in cycles at the target clock.
    pub latency: u32,
    /// DSP48 slices per functional unit.
    pub dsp: f64,
    /// LUTs per functional unit.
    pub lut: f64,
    /// Flip-flops per functional unit.
    pub ff: f64,
}

/// The full operator characterization table.
#[derive(Debug, Clone, PartialEq)]
pub struct HlsCosts {
    /// Integer add/sub/logic/shift/compare.
    pub int_alu: OpProfile,
    /// Integer multiply.
    pub int_mul: OpProfile,
    /// Integer divide/remainder.
    pub int_div: OpProfile,
    /// Floating add/sub.
    pub fadd: OpProfile,
    /// Floating multiply.
    pub fmul: OpProfile,
    /// Floating divide.
    pub fdiv: OpProfile,
    /// Floating compare/select.
    pub fcmp: OpProfile,
    /// Square root.
    pub fsqrt: OpProfile,
    /// Transcendentals (`exp`, `log`).
    pub ftrans: OpProfile,
    /// On-chip memory access (BRAM read/write port).
    pub mem: OpProfile,
}

impl Default for HlsCosts {
    fn default() -> Self {
        HlsCosts {
            int_alu: OpProfile {
                latency: 1,
                dsp: 0.0,
                lut: 40.0,
                ff: 40.0,
            },
            int_mul: OpProfile {
                latency: 3,
                dsp: 3.0,
                lut: 60.0,
                ff: 120.0,
            },
            int_div: OpProfile {
                latency: 18,
                dsp: 0.0,
                lut: 1400.0,
                ff: 1800.0,
            },
            fadd: OpProfile {
                latency: 7,
                dsp: 2.0,
                lut: 220.0,
                ff: 330.0,
            },
            fmul: OpProfile {
                latency: 5,
                dsp: 3.0,
                lut: 130.0,
                ff: 260.0,
            },
            fdiv: OpProfile {
                latency: 14,
                dsp: 0.0,
                lut: 800.0,
                ff: 1500.0,
            },
            fcmp: OpProfile {
                latency: 2,
                dsp: 0.0,
                lut: 70.0,
                ff: 90.0,
            },
            fsqrt: OpProfile {
                latency: 14,
                dsp: 0.0,
                lut: 750.0,
                ff: 1400.0,
            },
            ftrans: OpProfile {
                latency: 20,
                dsp: 7.0,
                lut: 2200.0,
                ff: 3200.0,
            },
            mem: OpProfile {
                latency: 2,
                dsp: 0.0,
                lut: 12.0,
                ff: 12.0,
            },
        }
    }
}

impl HlsCosts {
    /// Creates the default characterization (same as [`Default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Iterates `(count, profile)` pairs for every non-zero class in `ops`.
    pub fn classes<'a>(&'a self, ops: &OpCounts) -> Vec<(u32, &'a OpProfile)> {
        let pairs = [
            (ops.int_alu, &self.int_alu),
            (ops.int_mul, &self.int_mul),
            (ops.int_div, &self.int_div),
            (ops.fadd, &self.fadd),
            (ops.fmul, &self.fmul),
            (ops.fdiv, &self.fdiv),
            (ops.fcmp, &self.fcmp),
            (ops.fsqrt, &self.fsqrt),
            (ops.ftrans, &self.ftrans),
            (ops.mem_read + ops.mem_write, &self.mem),
        ];
        pairs.into_iter().filter(|(c, _)| *c > 0).collect()
    }

    /// Total scheduled work in cycle-weighted operations (used for the
    /// resource-constrained throughput bound).
    pub fn work_cycles(&self, ops: &OpCounts) -> u64 {
        self.classes(ops)
            .iter()
            .map(|(c, p)| *c as u64 * p.latency as u64)
            .sum()
    }

    /// Approximate dataflow critical path of one body iteration: the
    /// longest single-operator latency plus a logarithmic combination term.
    pub fn critical_path(&self, ops: &OpCounts) -> u64 {
        let max_lat = self
            .classes(ops)
            .iter()
            .map(|(_, p)| p.latency as u64)
            .max()
            .unwrap_or(1);
        let n = ops.total_arith() + ops.total_mem();
        max_lat + (64 - u64::from(n).leading_zeros()) as u64
    }

    /// Latency in cycles of a recurrence chain described by `chain`.
    pub fn chain_latency(&self, chain: &OpCounts) -> u64 {
        self.work_cycles(chain).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_latencies() {
        let c = HlsCosts::default();
        assert!(c.ftrans.latency > c.fdiv.latency);
        assert!(c.fdiv.latency > c.fmul.latency);
        assert!(c.fadd.latency > c.fmul.latency); // fadd chains dominate reductions
        assert!(c.fmul.latency > c.int_alu.latency);
    }

    #[test]
    fn work_and_chain() {
        let c = HlsCosts::default();
        let mut ops = OpCounts::new();
        ops.fadd = 1;
        ops.fmul = 2;
        assert_eq!(c.work_cycles(&ops), 7 + 10);
        assert_eq!(c.chain_latency(&ops), 17);
        let empty = OpCounts::new();
        assert_eq!(c.chain_latency(&empty), 1);
    }

    #[test]
    fn critical_path_grows_slowly() {
        let c = HlsCosts::default();
        let mut small = OpCounts::new();
        small.fadd = 1;
        let mut big = OpCounts::new();
        big.fadd = 1;
        big.int_alu = 1000;
        let cp_small = c.critical_path(&small);
        let cp_big = c.critical_path(&big);
        assert!(cp_big > cp_small);
        assert!(cp_big < cp_small + 12); // logarithmic, not linear
    }

    #[test]
    fn classes_filters_zeroes() {
        let c = HlsCosts::default();
        let mut ops = OpCounts::new();
        ops.int_mul = 4;
        let cls = c.classes(&ops);
        assert_eq!(cls.len(), 1);
        assert_eq!(cls[0].0, 4);
    }
}
