//! The latency / resource / frequency model.
//!
//! Evaluates one design point — a ([`KernelSummary`], [`DesignConfig`])
//! pair — the way Vivado HLS scheduling plus a coarse place-&-route model
//! would:
//!
//! * **Latency** is computed bottom-up over the loop nest. A pipelined leaf
//!   achieves `cycles = depth + (TC/u - 1) · II` with
//!   `II = max(recurrence MII, memory-port MII)`; a non-pipelined loop pays
//!   its full body latency every iteration; `flatten` collapses the subtree
//!   into one wide body (fully unrolled sub-loops); coarse-grained
//!   parallelism replicates PEs and divides the trip count.
//! * **Memory-port MII** couples the buffer bit-width factor to
//!   performance: an interface buffer moves `port_bits / elem_bits`
//!   elements per cycle, so narrow ports throttle unrolled loops.
//! * **Resources** scale with functional-unit replication (`ops · u / II`
//!   per PE) plus BRAM for local arrays, tiling stage buffers, and port
//!   FIFOs.
//! * **Frequency** degrades with utilization, replication fan-out, and the
//!   deep combinational chains produced by flattening recurrent loops.

use crate::cost::{HlsCosts, OpProfile};
use crate::device::Device;
use crate::invariants::{BufferBase, KernelInvariants, LoopInvariants, MemPort};
use crate::resource::ResourceUsage;
use crate::subtree::{Res, SubFnv, SubtreeCost, SubtreeKey, SubtreeStore};
use s2fa_hlsir::{KernelSummary, LoopId, PipelineMode};
use s2fa_merlin::DesignConfig;

/// Result of evaluating one loop subtree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoopEval {
    /// Total cycles to execute all iterations once.
    pub cycles: f64,
    /// Achieved initiation interval (1.0 when not pipelined). Kept for
    /// model introspection in tests and future stage-balancing work.
    #[allow(dead_code)]
    pub ii: f64,
}

/// An in-flight subtree recording: the exact addend sequence plus the
/// max-folded metrics observed while the frame is open. Nested frames
/// stack — a charge lands in the innermost frame, and a closing frame
/// appends its sequence to its parent in one bulk copy, so an enclosing
/// subtree's record stays complete (identical content and order) even
/// when an inner subtree replays from cache.
struct Frame {
    charges: Vec<(Res, f64)>,
    max_repl: f64,
    deep_logic: f64,
    worst_ii: f64,
}

impl Frame {
    fn new() -> Self {
        Frame {
            charges: Vec::new(),
            max_repl: f64::NEG_INFINITY,
            deep_logic: f64::NEG_INFINITY,
            worst_ii: f64::NEG_INFINITY,
        }
    }

    fn into_cost(self, ev: LoopEval) -> SubtreeCost {
        SubtreeCost {
            charges: self.charges,
            max_repl: self.max_repl,
            deep_logic: self.deep_logic,
            worst_ii: self.worst_ii,
            cycles: ev.cycles,
            ii: ev.ii,
        }
    }
}

/// Mutable evaluation state threaded through the recursion.
pub(crate) struct ModelCtx<'a> {
    pub summary: &'a KernelSummary,
    pub config: &'a DesignConfig,
    pub costs: &'a HlsCosts,
    pub inv: &'a KernelInvariants,
    pub resources: ResourceUsage,
    /// Maximum PE replication product reached at any leaf.
    pub max_replication: f64,
    /// Total combinational depth contributed by flattened recurrences
    /// (drives the frequency penalty).
    pub deep_logic: f64,
    /// Worst II over all pipelined loops (reported).
    pub worst_ii: f64,
    /// Whether the task loop is tiled (enables transfer/compute overlap
    /// through double buffering).
    pub overlap: bool,
    /// Subtree-cost memo (incremental re-estimation); `None` walks every
    /// subtree from scratch.
    store: Option<&'a dyn SubtreeStore>,
    /// Open recording frames, innermost last.
    rec: Vec<Frame>,
    /// Per-node subtree fingerprints, computed bottom-up once per
    /// evaluation when a store is attached (post-order push; linear scan
    /// lookup — loop nests are shallow).
    subfps: Vec<(LoopId, u128)>,
}

impl<'a> ModelCtx<'a> {
    pub fn new(
        summary: &'a KernelSummary,
        config: &'a DesignConfig,
        costs: &'a HlsCosts,
        inv: &'a KernelInvariants,
    ) -> Self {
        ModelCtx {
            summary,
            config,
            costs,
            inv,
            resources: ResourceUsage::new(),
            max_replication: 1.0,
            deep_logic: 0.0,
            worst_ii: 1.0,
            overlap: false,
            store: None,
            rec: Vec::new(),
            subfps: Vec::new(),
        }
    }

    /// Attaches a subtree-cost store: subtrees whose inputs match a
    /// recorded evaluation replay their charge sequence instead of
    /// walking — bit-identical to the full walk by construction. Also
    /// precomputes every node's subtree fingerprint in one bottom-up
    /// pass, so keying a subtree during the walk is a table lookup.
    pub fn set_store(&mut self, store: &'a dyn SubtreeStore) {
        self.store = Some(store);
        self.subfps.clear();
        self.node_subfp(self.summary.task_loop);
    }

    /// Computes the subtree fingerprint of `id` and every descendant in
    /// post-order: a node's digest mixes its own directive words, the
    /// configured widths of the ported buffers its own body touches, and
    /// its children's digests. Digest-of-digests composes, so the whole
    /// tree costs O(loops) words per evaluation instead of re-walking
    /// the subtree member list at every recursion level.
    fn node_subfp(&mut self, id: LoopId) -> u128 {
        let summary: &'a KernelSummary = self.summary;
        let inv: &'a KernelInvariants = self.inv;
        let Some(li) = summary.loop_info(id) else {
            return 0;
        };
        let mut h = SubFnv::new();
        let d = self.config.loop_directive(id);
        let (tile_flag, tile_val) = match d.tile {
            Some(t) => (1u64, t as u64),
            None => (0, 0),
        };
        let pipe = match d.pipeline {
            PipelineMode::Off => 0u64,
            PipelineMode::On => 1,
            PipelineMode::Flatten => 2,
        };
        h.word(
            0x01 | ((id.0 as u64) << 8)
                | (tile_flag << 40)
                | (pipe << 41)
                | ((d.tree_reduce as u64) << 43),
        );
        h.word(tile_val | ((d.parallel as u64) << 32));
        for name in &inv.of(id).own_ported_buffers {
            h.word(0x02 | ((self.config.buffer_width(name) as u64) << 8));
        }
        for &c in &li.children {
            let sub = self.node_subfp(c);
            h.word(sub as u64);
            h.word((sub >> 64) as u64);
        }
        let fp = h.finish();
        self.subfps.push((id, fp));
        fp
    }

    /// The precomputed subtree fingerprint of `id` (0 for loops outside
    /// the task subtree — never keyed, `eval_loop` only descends into
    /// summary-known children of the task loop).
    fn subfp(&self, id: LoopId) -> u128 {
        self.subfps
            .iter()
            .find(|&&(l, _)| l == id)
            .map(|&(_, f)| f)
            .unwrap_or(0)
    }

    /// Adds `v` to resource field `r`, recording the addend in the
    /// innermost open frame. All resource accumulation inside
    /// `eval_loop` goes through here so a replayed subtree repeats the
    /// identical `+=` sequence. Enclosing frames receive the charges in
    /// one bulk append when the inner frame closes — same content, same
    /// order, but a memcpy instead of a per-charge fan-out over every
    /// open frame (which made nested misses O(depth²)).
    #[inline]
    fn charge(&mut self, r: Res, v: f64) {
        match r {
            Res::Bram => self.resources.bram_18k += v,
            Res::Dsp => self.resources.dsp += v,
            Res::Ff => self.resources.ff += v,
            Res::Lut => self.resources.lut += v,
        }
        if let Some(f) = self.rec.last_mut() {
            f.charges.push((r, v));
        }
    }

    /// Folds a replication observation (exact: `max` never rounds).
    #[inline]
    fn bump_repl(&mut self, v: f64) {
        self.max_replication = self.max_replication.max(v);
        if let Some(f) = self.rec.last_mut() {
            f.max_repl = f.max_repl.max(v);
        }
    }

    /// Folds a deep-logic observation.
    #[inline]
    fn bump_deep(&mut self, v: f64) {
        self.deep_logic = self.deep_logic.max(v);
        if let Some(f) = self.rec.last_mut() {
            f.deep_logic = f.deep_logic.max(v);
        }
    }

    /// Folds a pipelined-II observation.
    #[inline]
    fn bump_ii(&mut self, v: f64) {
        self.worst_ii = self.worst_ii.max(v);
        if let Some(f) = self.rec.last_mut() {
            f.worst_ii = f.worst_ii.max(v);
        }
    }

    /// Replays a recorded subtree: same addends, same order, same folds.
    fn replay(&mut self, cost: &SubtreeCost) {
        for &(r, v) in &cost.charges {
            self.charge(r, v);
        }
        self.bump_repl(cost.max_repl);
        self.bump_deep(cost.deep_logic);
        self.bump_ii(cost.worst_ii);
    }

    /// The cache key of subtree `id` entered at `repl`: the precomputed
    /// bottom-up fingerprint plus the entry replication bit pattern.
    fn subtree_key(&self, id: LoopId, repl: f64) -> SubtreeKey {
        SubtreeKey {
            root: id,
            repl_bits: repl.to_bits(),
            subfp: self.subfp(id),
        }
    }

    /// Evaluates the whole kernel: returns compute cycles for one batch of
    /// `summary.tasks_hint` tasks.
    pub fn evaluate(&mut self) -> f64 {
        self.base_resources();
        let task = self.summary.task_loop;
        if self.config.loop_directive(task).tile.is_some() {
            self.overlap = true;
        }
        let ev = self.eval_loop(task, 1.0);
        ev.cycles
    }

    /// Static overhead: AXI/control logic plus per-buffer port FIFOs and
    /// local arrays. Width-independent BRAM comes precomputed from the
    /// invariants; only the port-width terms are evaluated here.
    fn base_resources(&mut self) {
        let dev_frac = ResourceUsage {
            bram_18k: 40.0,
            dsp: 4.0,
            ff: 14_000.0,
            lut: 11_000.0,
        };
        self.resources += dev_frac;
        let inv = self.inv;
        for bb in &inv.buffer_base {
            match bb {
                BufferBase::Local { bram } => {
                    // Local arrays live in BRAM: banks sized 18 kbit.
                    self.resources.bram_18k += bram;
                }
                BufferBase::Iface {
                    name,
                    broadcast_bram,
                } => {
                    let width = self.config.buffer_width(name) as f64;
                    // Port FIFO + width converter.
                    self.resources.bram_18k += (width / 72.0).ceil();
                    self.resources.lut += width * 14.0;
                    self.resources.ff += width * 20.0;
                    // Broadcast inputs are cached on-chip for the whole
                    // batch (Merlin's coalesced buffer for closure state).
                    self.resources.bram_18k += broadcast_bram;
                }
            }
        }
    }

    /// Evaluates one loop subtree, consulting the subtree-cost store
    /// when one is attached. Every *proper* subtree is cacheable, leaves
    /// included: replaying a leaf's recorded charges skips the directive
    /// legality walk and the per-class resource math, which is what
    /// makes single-factor neighbor mutations (one knob changes, every
    /// other subtree key unchanged) cheaper than a full re-walk.
    ///
    /// The task-loop *root* is deliberately never cached: an identical
    /// whole-kernel evaluation is already answered by the fingerprint-
    /// keyed estimate memo one layer up, and a mutation chain by
    /// definition changes something inside the root — so a root record
    /// would never hit while paying to record every charge of the whole
    /// walk on every miss.
    fn eval_loop(&mut self, id: LoopId, repl: f64) -> LoopEval {
        if let Some(store) = self.store {
            if id != self.summary.task_loop && self.summary.loop_info(id).is_some() {
                let key = self.subtree_key(id, repl);
                if let Some(cost) = store.get(&key) {
                    self.replay(&cost);
                    return LoopEval {
                        cycles: cost.cycles,
                        ii: cost.ii,
                    };
                }
                self.rec.push(Frame::new());
                let ev = self.eval_loop_body(id, repl);
                let frame = self.rec.pop().expect("frame pushed above");
                // Propagate this subtree's recording to the enclosing
                // frame in one append — keeps the parent's record
                // complete (same charges, same program order) without
                // per-charge fan-out while both frames were open.
                if let Some(parent) = self.rec.last_mut() {
                    parent.charges.extend_from_slice(&frame.charges);
                    parent.max_repl = parent.max_repl.max(frame.max_repl);
                    parent.deep_logic = parent.deep_logic.max(frame.deep_logic);
                    parent.worst_ii = parent.worst_ii.max(frame.worst_ii);
                }
                store.put(key, frame.into_cost(ev));
                return ev;
            }
        }
        self.eval_loop_body(id, repl)
    }

    fn eval_loop_body(&mut self, id: LoopId, repl: f64) -> LoopEval {
        let Some(li) = self.summary.loop_info(id) else {
            return LoopEval {
                cycles: 0.0,
                ii: 1.0,
            };
        };
        let linv = self.inv.of(id);
        let d = self.config.loop_directive(id);
        let tc = li.trip_count.max(1) as f64;
        let u = (d.parallel_factor() as f64).min(tc);
        let iters = (tc / u).ceil();
        self.bump_repl(repl * u);

        let locality = if d.tile.is_some() { 0.6 } else { 1.0 };

        match d.pipeline {
            PipelineMode::Flatten if !li.children.is_empty() => {
                // Fully unroll the subtree; pipeline this loop over it.
                let flat_iters = linv.flattened_iters;
                let mut iter_lat = linv.subtree_critical_path;
                // Recurrent descendants become *systolic chains*: HLS
                // registers the unrolled recurrence every few stages, so
                // the flattened body is a deep pipeline rather than pure
                // combinational logic. Latency grows with chain length
                // (divided by the register spacing), and timing closure
                // suffers from the residual carry/compare chains — the
                // effect that pins the paper's S-W design at 100 MHz.
                for &(chain_lat, deep) in &linv.flatten_chain {
                    iter_lat += chain_lat;
                    self.bump_deep(deep);
                }

                let rec = rec_mii(
                    self.summary.effective_carried(id),
                    &d,
                    linv.rec_chain_latency,
                );
                // Merlin fully partitions local arrays and inserts on-chip
                // caches for the interface data a flattened body touches,
                // so memory ports do not bound the II here; the recurrence
                // does.
                let ii = rec.max(1.0);
                self.bump_ii(ii);
                let _ = locality;

                // Fully spatial body. Recurrent subtrees route as systolic
                // chains (nearest-neighbour interconnect); only
                // recurrence-free flattening pays the crossbar.
                self.charge_classes(&linv.subtree_classes, repl * u, ii, linv.systolic);
                // Partitioned local arrays + interface caches.
                self.charge(Res::Bram, 2.0 * flat_iters.sqrt());
                self.charge(Res::Bram, linv.flatten_iface_bram);

                LoopEval {
                    cycles: iter_lat + (iters - 1.0) * ii,
                    ii,
                }
            }
            PipelineMode::On | PipelineMode::Flatten if li.children.is_empty() => {
                // Fine-grained pipeline of a leaf loop.
                let rec = rec_mii(
                    self.summary.effective_carried(id),
                    &d,
                    linv.rec_chain_latency,
                );
                let mem = self.mem_mii_leaf(linv, u, locality);
                let ii = rec.max(mem).max(1.0);
                self.bump_ii(ii);
                let mut iter_lat = linv.body_critical_path;
                if d.tree_reduce && u > 1.0 {
                    // adder tree depth
                    iter_lat += u.log2().ceil() * self.costs.fadd.latency as f64;
                }
                self.charge_classes(&linv.body_classes, repl * u, ii, false);
                LoopEval {
                    cycles: iter_lat + (iters - 1.0) * ii,
                    ii,
                }
            }
            PipelineMode::On => {
                // Coarse-grained (dataflow) pipelining over child stages.
                let body_lat = linv.body_critical_path;
                let mut stage_sum = body_lat;
                let mut stage_max = body_lat;
                for c in li.children.clone() {
                    let ev = self.eval_loop(c, repl * u);
                    stage_sum += ev.cycles;
                    stage_max = stage_max.max(ev.cycles);
                }
                self.charge_classes(&linv.body_classes, repl * u, 1.0, false);
                // Double buffers between stages.
                self.charge(Res::Bram, 2.0 * li.children.len() as f64);
                LoopEval {
                    cycles: stage_sum + (iters - 1.0) * stage_max,
                    ii: stage_max,
                }
            }
            PipelineMode::Off | PipelineMode::Flatten => {
                // Sequential iterations (PE-replicated u ways).
                let body_lat = linv.body_critical_path;
                let mut per_iter = body_lat + 2.0; // loop control overhead
                for c in li.children.clone() {
                    let ev = self.eval_loop(c, repl * u);
                    per_iter += ev.cycles;
                }
                // Sequential bodies share functional units over time.
                self.charge_classes(&linv.body_classes, repl * u, 4.0, false);
                LoopEval {
                    cycles: iters * per_iter,
                    ii: 1.0,
                }
            }
        }
    }

    /// Memory-port MII of a leaf loop: the worst buffer contention.
    /// Banked (local/broadcast) buffers see `u` banks × 2 ports; off-chip
    /// ports move `port_bits / elem_bits` elements per cycle, so narrow
    /// ports throttle unrolled loops.
    fn mem_mii_leaf(&self, linv: &LoopInvariants, u: f64, locality: f64) -> f64 {
        let mut worst: f64 = 1.0;
        for m in &linv.mem_accesses {
            let mii = match &m.kind {
                MemPort::Banked => (m.count * u / (2.0 * u)).ceil().max(1.0),
                MemPort::Ported { elem_bits } => {
                    let width = self.config.buffer_width(&m.name) as f64;
                    let elems_per_cycle = (width / elem_bits).max(1.0);
                    (m.count * u * locality / elems_per_cycle).ceil().max(1.0)
                }
                MemPort::Unknown => 1.0,
            };
            worst = worst.max(mii);
        }
        worst
    }

    /// Adds the functional units needed for `ops` at replication `repl`
    /// and initiation interval `ii` (larger II → more unit sharing).
    ///
    /// Beyond the operator cores themselves, every processing element pays
    /// interconnect (data muxing, control fan-out): that cost grows
    /// super-linearly with replication, which is what makes extreme
    /// parallel factors infeasible on a real device (the paper's
    /// "performing coarse-grained parallelism with factor 256 ... might be
    /// infeasible for most designs due to high routing complexity").
    fn charge_classes(&mut self, classes: &[(u32, OpProfile)], repl: f64, ii: f64, systolic: bool) {
        let mut total_units = 0.0;
        for &(count, ref p) in classes {
            let units = ((count as f64 * repl) / ii.max(1.0)).max(1.0);
            total_units += units;
            self.charge(Res::Dsp, p.dsp * units);
            self.charge(Res::Lut, p.lut * units);
            self.charge(Res::Ff, p.ff * units);
        }
        let interconnect = if systolic {
            // Nearest-neighbour routing: linear in the PE count.
            40.0 * total_units
        } else {
            14.0 * total_units * total_units.sqrt()
        };
        self.charge(Res::Lut, interconnect);
        self.charge(Res::Ff, interconnect * 0.6);
    }

    /// BRAM for tiling stage buffers (double-buffered task staging).
    pub fn charge_tiling(&mut self) {
        for l in &self.summary.loops {
            if let Some(t) = self.config.loop_directive(l.id).tile {
                if l.id == self.summary.task_loop {
                    let (inb, outb) = self.inv.interface_bytes;
                    let bits = (inb + outb) as f64 * 8.0 * t as f64 * 2.0;
                    self.resources.bram_18k += (bits / 18_432.0).ceil();
                } else {
                    // Reuse buffer proportional to the tile.
                    self.resources.bram_18k += ((t as f64 * 64.0) / 18_432.0).ceil();
                }
            }
        }
    }
}

/// Recurrence-constrained MII of a loop, with the chain latency supplied
/// from the precomputed invariants. `dep` is the loop's *effective*
/// carried dependence ([`KernelSummary::effective_carried`]): the
/// conservative verdict when present, else the dataflow engine's
/// transitive verdict when dependence facts are attached — without facts
/// the behavior is exactly the historical `li.carried` consultation.
fn rec_mii(
    dep: Option<&s2fa_hlsir::CarriedDep>,
    d: &s2fa_merlin::LoopDirective,
    chain_latency: f64,
) -> f64 {
    match dep {
        Some(dep) => {
            if d.tree_reduce && dep.reducible {
                1.0
            } else {
                chain_latency
            }
        }
        None => 1.0,
    }
}

/// Post-scheduling frequency model: starts at the device target and
/// degrades with utilization, replication fan-out, and deep combinational
/// chains from flattened recurrences. Returns MHz.
pub(crate) fn achieved_frequency(
    device: &Device,
    resources: &ResourceUsage,
    max_replication: f64,
    deep_logic: f64,
) -> f64 {
    let mut f = device.target_mhz;
    let (_, _, ffu, lutu) = resources.utilization(device);
    let congestion = ffu.max(lutu);
    if congestion > 0.45 {
        f *= 1.0 - 0.5 * (congestion - 0.45);
    }
    if max_replication > 64.0 {
        f *= (64.0 / max_replication).powf(0.12);
    }
    if deep_logic > 24.0 {
        // Deep carry/compare chains (e.g. flattened DP wavefronts) force
        // long routes: the systolic S-W shape lands near 100 MHz.
        f *= (24.0 / deep_logic).powf(0.35);
    }
    // P&R timing closure snaps to 10 MHz steps on the F1 shell clocks and
    // never closes below 60 MHz on this device.
    let f = f.max(60.0);
    (f / 10.0).round() * 10.0
}

#[cfg(test)]
mod freq_tests {
    use super::*;

    #[test]
    fn nominal_design_hits_target() {
        let d = Device::vu9p();
        let r = ResourceUsage {
            bram_18k: 100.0,
            dsp: 50.0,
            ff: 50_000.0,
            lut: 40_000.0,
        };
        assert_eq!(achieved_frequency(&d, &r, 4.0, 0.0), 250.0);
    }

    #[test]
    fn deep_logic_halves_frequency() {
        let d = Device::vu9p();
        let r = ResourceUsage::new();
        let f = achieved_frequency(&d, &r, 4.0, 300.0);
        assert!(f <= 130.0, "deep logic should degrade clock, got {f}");
        assert!(f >= 60.0);
    }

    #[test]
    fn congestion_degrades_frequency() {
        let d = Device::vu9p();
        let r = ResourceUsage {
            bram_18k: 0.0,
            dsp: 0.0,
            ff: 0.0,
            lut: d.lut as f64 * 0.74,
        };
        let f = achieved_frequency(&d, &r, 4.0, 0.0);
        assert!(f < 250.0);
        assert!(f >= 200.0);
    }
}
