//! Resource accounting.

use crate::device::Device;
use std::fmt;
use std::ops::AddAssign;

/// Absolute resource usage of a design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResourceUsage {
    /// BRAM18K blocks.
    pub bram_18k: f64,
    /// DSP48 slices.
    pub dsp: f64,
    /// Flip-flops.
    pub ff: f64,
    /// LUTs.
    pub lut: f64,
}

impl ResourceUsage {
    /// Zero usage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Utilization fractions against a device, in the order
    /// `(bram, dsp, ff, lut)`.
    pub fn utilization(&self, device: &Device) -> (f64, f64, f64, f64) {
        (
            self.bram_18k / device.bram_18k as f64,
            self.dsp / device.dsp as f64,
            self.ff / device.ff as f64,
            self.lut / device.lut as f64,
        )
    }

    /// The largest utilization fraction.
    pub fn max_utilization(&self, device: &Device) -> f64 {
        let (b, d, f, l) = self.utilization(device);
        b.max(d).max(f).max(l)
    }

    /// Name of the most-utilized resource.
    pub fn bottleneck(&self, device: &Device) -> &'static str {
        let (b, d, f, l) = self.utilization(device);
        let m = b.max(d).max(f).max(l);
        if m == b {
            "BRAM"
        } else if m == d {
            "DSP"
        } else if m == f {
            "FF"
        } else {
            "LUT"
        }
    }

    /// Scales all resources by a factor (PE replication).
    pub fn scaled(&self, k: f64) -> ResourceUsage {
        ResourceUsage {
            bram_18k: self.bram_18k * k,
            dsp: self.dsp * k,
            ff: self.ff * k,
            lut: self.lut * k,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        self.bram_18k += rhs.bram_18k;
        self.dsp += rhs.dsp;
        self.ff += rhs.ff;
        self.lut += rhs.lut;
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bram={:.0} dsp={:.0} ff={:.0} lut={:.0}",
            self.bram_18k, self.dsp, self.ff, self.lut
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_bottleneck() {
        let d = Device::vu9p();
        let mut u = ResourceUsage::new();
        u.bram_18k = 2160.0; // 50%
        u.dsp = 684.0; // 10%
        u.lut = 118_224.0; // 10%
        let (b, ds, _, l) = u.utilization(&d);
        assert!((b - 0.5).abs() < 1e-9);
        assert!((ds - 0.1).abs() < 1e-9);
        assert!((l - 0.1).abs() < 1e-9);
        assert_eq!(u.bottleneck(&d), "BRAM");
        assert!((u.max_utilization(&d) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn add_and_scale() {
        let mut a = ResourceUsage {
            bram_18k: 1.0,
            dsp: 2.0,
            ff: 3.0,
            lut: 4.0,
        };
        a += a;
        assert_eq!(a.dsp, 4.0);
        let s = a.scaled(2.5);
        assert_eq!(s.lut, 20.0);
    }
}
