//! Target device description.

/// An FPGA device envelope as seen by HLS and place & route.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Device name.
    pub name: String,
    /// BRAM18K blocks available.
    pub bram_18k: u32,
    /// DSP48 slices available.
    pub dsp: u32,
    /// Flip-flops available.
    pub ff: u32,
    /// LUTs available.
    pub lut: u32,
    /// Target clock in MHz (the SDx default on F1).
    pub target_mhz: f64,
    /// Number of SLR dies (VU9P has 3; crossing dies costs frequency).
    pub dies: u32,
    /// Maximum usable utilization fraction — "we set the maximum resource
    /// utilization to 75% since the rest of them were used by the
    /// vendor-provided control logic" (paper footnote 5).
    pub max_util: f64,
    /// Effective off-chip (DDR4) bandwidth in GB/s for one kernel.
    pub ddr_gbps: f64,
}

impl Device {
    /// The Virtex UltraScale+ VU9P as configured on an AWS F1
    /// `f1.2xlarge` instance (the paper's platform, §5.1).
    pub fn vu9p() -> Device {
        Device {
            name: "xcvu9p (AWS F1)".into(),
            bram_18k: 4320,
            dsp: 6840,
            ff: 2_364_480,
            lut: 1_182_240,
            target_mhz: 250.0,
            dies: 3,
            max_util: 0.75,
            ddr_gbps: 12.8,
        }
    }

    /// A Virtex UltraScale+ VU13P — the "larger FPGA" of the paper's
    /// remark that compute-bound designs "can be potentially improved if a
    /// larger FPGA is provided" (§5.2): ~1.8× the logic and DSP of the
    /// VU9P, same memory system.
    pub fn vu13p() -> Device {
        Device {
            name: "xcvu13p".into(),
            bram_18k: 5376,
            dsp: 12_288,
            ff: 3_456_000,
            lut: 1_728_000,
            target_mhz: 250.0,
            dies: 4,
            max_util: 0.75,
            ddr_gbps: 12.8,
        }
    }

    /// Off-chip bytes transferable per kernel cycle at `freq_mhz`.
    pub fn ddr_bytes_per_cycle(&self, freq_mhz: f64) -> f64 {
        (self.ddr_gbps * 1e9) / (freq_mhz * 1e6)
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::vu9p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vu9p_envelope() {
        let d = Device::vu9p();
        assert_eq!(d.bram_18k, 4320);
        assert_eq!(d.dsp, 6840);
        assert!(d.lut > 1_000_000);
        assert_eq!(d.dies, 3);
        assert!((d.max_util - 0.75).abs() < 1e-9);
    }

    #[test]
    fn vu13p_is_strictly_larger() {
        let small = Device::vu9p();
        let big = Device::vu13p();
        assert!(big.dsp > small.dsp);
        assert!(big.lut > small.lut);
        assert!(big.bram_18k > small.bram_18k);
        // same memory system: bandwidth-bound kernels cannot improve
        assert_eq!(big.ddr_gbps, small.ddr_gbps);
    }

    #[test]
    fn ddr_bytes_per_cycle_scales_with_freq() {
        let d = Device::vu9p();
        let at250 = d.ddr_bytes_per_cycle(250.0);
        let at125 = d.ddr_bytes_per_cycle(125.0);
        assert!((at125 / at250 - 2.0).abs() < 1e-9);
        // ~51 bytes/cycle at 250 MHz for 12.8 GB/s
        assert!(at250 > 40.0 && at250 < 60.0);
    }
}
