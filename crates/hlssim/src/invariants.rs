//! Per-kernel invariants hoisted out of the evaluation hot path.
//!
//! [`Estimator::evaluate`](crate::Estimator::evaluate) is called tens of
//! thousands of times per DSE run with the *same* [`KernelSummary`]; only
//! the [`DesignConfig`](s2fa_merlin::DesignConfig) changes between calls.
//! Everything the model derives from the summary alone — interface byte
//! totals, subtree operation counts, flattening trip products, recurrence
//! chain latencies, per-loop operator classes — is recomputed from scratch
//! on every call, and the subtree walks (`descendants`, `subtree_ops`)
//! allocate.
//!
//! [`KernelInvariants`] computes those facts once. The model replays the
//! exact arithmetic of the non-hoisted path (same expressions, same
//! accumulation order), so an estimate produced through
//! [`Estimator::evaluate_with`](crate::Estimator::evaluate_with) is
//! identical to one from `evaluate` — a property the test suite pins down.

use crate::cost::{HlsCosts, OpProfile};
use s2fa_hlsir::{BufferDir, KernelSummary, LoopId};
use std::collections::BTreeMap;

/// What the base-resource pass adds for one buffer (in `buffers` order).
#[derive(Debug, Clone)]
pub(crate) enum BufferBase {
    /// Local array: fixed BRAM banks.
    Local {
        /// BRAM-18k banks for the array.
        bram: f64,
    },
    /// Interface buffer: the width-dependent FIFO cost is computed at
    /// evaluation time; the broadcast cache (if any) is fixed.
    Iface {
        /// Buffer name (port width lookup key).
        name: String,
        /// BRAM banks for the on-chip broadcast cache (0 if not broadcast).
        broadcast_bram: f64,
    },
}

/// How a leaf-loop access hits memory, for the port-contention MII.
#[derive(Debug, Clone)]
pub(crate) enum MemPort {
    /// Local or broadcast-cached buffer: banked with the unroll factor.
    Banked,
    /// Off-chip port: throughput set by the configured width.
    Ported {
        /// Element width in bits.
        elem_bits: f64,
    },
    /// Unknown buffer (defensive; contributes no contention).
    Unknown,
}

/// Per-buffer access pressure of one leaf loop.
#[derive(Debug, Clone)]
pub(crate) struct MemAccess {
    /// Buffer name (port width lookup key).
    pub name: String,
    /// Accesses per iteration.
    pub count: f64,
    /// Port kind.
    pub kind: MemPort,
}

/// Configuration-independent facts about one loop.
#[derive(Debug, Clone)]
pub(crate) struct LoopInvariants {
    /// `critical_path(body_ops)`.
    pub body_critical_path: f64,
    /// `classes(body_ops)` with owned profiles.
    pub body_classes: Vec<(u32, OpProfile)>,
    /// `critical_path(subtree_ops(id))`.
    pub subtree_critical_path: f64,
    /// `classes(subtree_ops(id))`.
    pub subtree_classes: Vec<(u32, OpProfile)>,
    /// `flattened_iters(id)`.
    pub flattened_iters: f64,
    /// Per recurrent descendant, in pre-order: the systolic-chain latency
    /// added to the flattened iteration, and the deep-logic candidate.
    pub flatten_chain: Vec<(f64, f64)>,
    /// Whether any descendant carries a recurrence (systolic routing).
    pub systolic: bool,
    /// BRAM for the interface caches a flattened body allocates
    /// (whole-valued ceil sum, so pre-summing is exact).
    pub flatten_iface_bram: f64,
    /// `chain_latency` of this loop's carried dependence (1.0 if none).
    pub rec_chain_latency: f64,
    /// Per-buffer access pressure, in buffer-name order.
    pub mem_accesses: Vec<MemAccess>,
    /// Names of the off-chip (ported) buffers *this loop itself*
    /// accesses, sorted — the only buffer widths the loop's own body
    /// reads from the configuration. The incremental re-estimation
    /// sub-fingerprint mixes these per node and composes child digests
    /// bottom-up, so no per-subtree union is needed.
    pub own_ported_buffers: Vec<String>,
}

/// Everything the estimator needs from a [`KernelSummary`] that does not
/// depend on the design configuration. Build once per kernel with
/// [`Estimator::invariants`](crate::Estimator::invariants) and evaluate
/// many configurations against it.
#[derive(Debug, Clone)]
pub struct KernelInvariants {
    /// `interface_bytes_per_task()`.
    pub(crate) interface_bytes: (u64, u64),
    /// `broadcast_bytes()`.
    pub(crate) broadcast_bytes: u64,
    /// Base-resource contribution per buffer, in `buffers` order.
    pub(crate) buffer_base: Vec<BufferBase>,
    /// Per-loop invariants.
    pub(crate) loops: BTreeMap<LoopId, LoopInvariants>,
}

impl KernelInvariants {
    /// Precomputes the invariants of `summary` under `costs`.
    pub(crate) fn build(summary: &KernelSummary, costs: &HlsCosts) -> Self {
        const REGISTER_SPACING: f64 = 4.0;

        let buffer_base = summary
            .buffers
            .iter()
            .map(|b| match b.dir {
                BufferDir::Local => {
                    let bits = b.elem_bits as f64 * b.len as f64;
                    BufferBase::Local {
                        bram: (bits / 18_432.0).ceil().max(1.0),
                    }
                }
                _ => {
                    let broadcast_bram = if b.broadcast {
                        let bits = b.elem_bits as f64 * b.len as f64;
                        (bits / 18_432.0).ceil().max(1.0)
                    } else {
                        0.0
                    };
                    BufferBase::Iface {
                        name: b.name.clone(),
                        broadcast_bram,
                    }
                }
            })
            .collect();

        let flatten_iface_bram: f64 = summary
            .buffers
            .iter()
            .filter(|b| b.dir == BufferDir::In && !b.broadcast)
            .map(|b| (b.elem_bits as f64 * b.len as f64 / 18_432.0).ceil())
            .sum();

        // Which off-chip (ported) buffers each loop touches itself — the
        // sub-fingerprint mixes these per node (child digests compose
        // bottom-up, so no subtree union is materialized).
        let own_ported: BTreeMap<LoopId, Vec<&str>> = summary
            .loops
            .iter()
            .map(|li| {
                let mut names: Vec<&str> = li
                    .accesses
                    .iter()
                    .filter(|a| {
                        summary
                            .buffer(&a.buffer)
                            .is_some_and(|b| b.dir != BufferDir::Local && !b.broadcast)
                    })
                    .map(|a| a.buffer.as_str())
                    .collect();
                names.sort_unstable();
                names.dedup();
                (li.id, names)
            })
            .collect();

        let mut loops = BTreeMap::new();
        for li in &summary.loops {
            let subtree_ops = summary.subtree_ops(li.id);
            let descendants = summary.descendants(li.id);

            let own_ported_buffers: Vec<String> = own_ported
                .get(&li.id)
                .into_iter()
                .flatten()
                .map(|s| (*s).to_string())
                .collect();

            let mut flatten_chain = Vec::new();
            let mut systolic = false;
            for c in &descendants {
                if let Some(cl) = summary.loop_info(*c) {
                    if let Some(dep) = &cl.carried {
                        systolic = true;
                        let per = costs.chain_latency(&dep.chain) as f64;
                        let tc_c = cl.trip_count as f64;
                        flatten_chain.push((per * tc_c / REGISTER_SPACING, per * tc_c / 2.0));
                    }
                }
            }

            let mut per_buffer: BTreeMap<&str, f64> = BTreeMap::new();
            for a in &li.accesses {
                *per_buffer.entry(a.buffer.as_str()).or_insert(0.0) += 1.0;
            }
            let mem_accesses = per_buffer
                .into_iter()
                .map(|(name, count)| {
                    let kind = match summary.buffer(name) {
                        Some(b) if b.dir == BufferDir::Local || b.broadcast => MemPort::Banked,
                        Some(b) => MemPort::Ported {
                            elem_bits: b.elem_bits as f64,
                        },
                        None => MemPort::Unknown,
                    };
                    MemAccess {
                        name: name.to_string(),
                        count,
                        kind,
                    }
                })
                .collect();

            loops.insert(
                li.id,
                LoopInvariants {
                    body_critical_path: costs.critical_path(&li.body_ops) as f64,
                    body_classes: costs
                        .classes(&li.body_ops)
                        .into_iter()
                        .map(|(c, p)| (c, *p))
                        .collect(),
                    subtree_critical_path: costs.critical_path(&subtree_ops) as f64,
                    subtree_classes: costs
                        .classes(&subtree_ops)
                        .into_iter()
                        .map(|(c, p)| (c, *p))
                        .collect(),
                    flattened_iters: summary.flattened_iters(li.id) as f64,
                    flatten_chain,
                    systolic,
                    flatten_iface_bram,
                    // Effective dependence (conservative verdict, else the
                    // attached dataflow verdict), with the chain latency
                    // relaxed by the exact dependence distance: a
                    // distance-d recurrence admits d iterations in flight,
                    // so the II bound is chain/d. Distance is 1 (and the
                    // effective dep is `li.carried`) when no facts are
                    // attached, keeping the default path bit-identical.
                    rec_chain_latency: summary
                        .effective_carried(li.id)
                        .map(|dep| {
                            (costs.chain_latency(&dep.chain) as f64
                                / summary.carried_distance(li.id) as f64)
                                .max(1.0)
                        })
                        .unwrap_or(1.0),
                    mem_accesses,
                    own_ported_buffers,
                },
            );
        }

        KernelInvariants {
            interface_bytes: summary.interface_bytes_per_task(),
            broadcast_bytes: summary.broadcast_bytes(),
            buffer_base,
            loops,
        }
    }

    /// Invariants of one loop (panics on an id absent from the summary the
    /// invariants were built from — a caller bug by construction).
    pub(crate) fn of(&self, id: LoopId) -> &LoopInvariants {
        &self.loops[&id]
    }
}
