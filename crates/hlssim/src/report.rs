//! Vivado-HLS-style synthesis report rendering.
//!
//! After "running HLS" on a design point, users of the real flow read a
//! report: timing, a latency/II table per loop, and a utilization table.
//! [`render`] produces that artifact for a ([`KernelSummary`],
//! [`DesignConfig`], [`Estimate`]) triple — the `s2fa-cli` tool and the
//! pipeline surface it to users.

use crate::{Device, Estimate};
use s2fa_hlsir::{KernelSummary, PipelineMode};
use s2fa_merlin::DesignConfig;
use std::fmt::Write as _;

/// Renders a synthesis report for one evaluated design.
pub fn render(
    summary: &KernelSummary,
    config: &DesignConfig,
    estimate: &Estimate,
    device: &Device,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Synthesis Report for '{}' ==", summary.name);
    let _ = writeln!(out, "* Device: {}", device.name);
    let _ = writeln!(
        out,
        "* Verdict: {}",
        if estimate.is_feasible() {
            "PASSED".to_string()
        } else {
            format!("FAILED ({:?})", estimate.feasibility)
        }
    );
    out.push('\n');

    let _ = writeln!(out, "-- Timing ------------------------------------------");
    let _ = writeln!(
        out,
        "  target clock: {:.0} MHz | achieved: {:.0} MHz",
        device.target_mhz, estimate.freq_mhz
    );
    out.push('\n');

    let _ = writeln!(out, "-- Performance -------------------------------------");
    let _ = writeln!(
        out,
        "  batch of {} tasks: {} compute cycles, {} transfer cycles, {} total",
        estimate.batch_tasks,
        estimate.compute_cycles,
        estimate.transfer_cycles,
        estimate.total_cycles
    );
    let _ = writeln!(
        out,
        "  batch time {:.4} ms | {:.0} tasks/s | critical II {:.0}",
        estimate.time_ms,
        estimate.tasks_per_second(),
        estimate.ii_critical
    );
    out.push('\n');

    let _ = writeln!(out, "-- Loop Directives ---------------------------------");
    let _ = writeln!(
        out,
        "  {:<6} {:>10} {:>6} {:>9} {:>9} {:>6} {:>6}",
        "Loop", "TripCount", "Depth", "Pipeline", "Parallel", "Tile", "Tree"
    );
    for l in &summary.loops {
        let d = config.loop_directive(l.id);
        let _ = writeln!(
            out,
            "  {:<6} {:>10} {:>6} {:>9} {:>9} {:>6} {:>6}",
            l.id.to_string(),
            l.trip_count,
            l.depth,
            match d.pipeline {
                PipelineMode::Off => "off",
                PipelineMode::On => "on",
                PipelineMode::Flatten => "flatten",
            },
            d.parallel_factor(),
            d.tile.map(|t| t.to_string()).unwrap_or_else(|| "-".into()),
            if d.tree_reduce { "yes" } else { "-" }
        );
    }
    out.push('\n');

    let _ = writeln!(out, "-- Interface ----------------------------------------");
    for b in &summary.buffers {
        if b.dir == s2fa_hlsir::BufferDir::Local {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<10} {:?}{} elem {} bits x {} per task, port {} bits",
            b.name,
            b.dir,
            if b.broadcast { " (broadcast)" } else { "" },
            b.elem_bits,
            b.len,
            config.buffer_width(&b.name)
        );
    }
    out.push('\n');

    let (ub, ud, uf, ul) = estimate.resources.utilization(device);
    let _ = writeln!(out, "-- Utilization -------------------------------------");
    let _ = writeln!(
        out,
        "  {:<8} {:>12} {:>12} {:>6}",
        "Resource", "Used", "Available", "Util"
    );
    let rows = [
        (
            "BRAM18K",
            estimate.resources.bram_18k,
            device.bram_18k as f64,
            ub,
        ),
        ("DSP48", estimate.resources.dsp, device.dsp as f64, ud),
        ("FF", estimate.resources.ff, device.ff as f64, uf),
        ("LUT", estimate.resources.lut, device.lut as f64, ul),
    ];
    for (name, used, avail, util) in rows {
        let _ = writeln!(
            out,
            "  {:<8} {:>12.0} {:>12.0} {:>5.0}%",
            name,
            used,
            avail,
            util * 100.0
        );
    }
    let _ = writeln!(
        out,
        "  (cap {:.0}% — the remainder is vendor shell logic)",
        device.max_util * 100.0
    );
    out.push('\n');
    let _ = writeln!(
        out,
        "-- Tool time: {:.1} virtual minutes of HLS --------------",
        estimate.hls_minutes
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Estimator;
    use s2fa_hlsir::{BufferDir, BufferInfo, LoopId, LoopInfo, OpCounts};

    fn summary() -> KernelSummary {
        KernelSummary {
            name: "demo".into(),
            loops: vec![LoopInfo {
                id: LoopId(0),
                var: "i".into(),
                trip_count: 256,
                depth: 0,
                parent: None,
                children: vec![],
                body_ops: {
                    let mut o = OpCounts::new();
                    o.fadd = 2;
                    o.mem_read = 1;
                    o
                },
                accesses: vec![],
                carried: None,
            }],
            buffers: vec![BufferInfo {
                name: "in_1".into(),
                elem_bits: 32,
                len: 4,
                dir: BufferDir::In,
                broadcast: true,
            }],
            task_loop: LoopId(0),
            tasks_hint: 256,
            dataflow: None,
        }
    }

    #[test]
    fn report_contains_all_sections() {
        let s = summary();
        let est = Estimator::new();
        let cfg = DesignConfig::perf_seed(&s);
        let e = est.evaluate(&s, &cfg);
        let r = render(&s, &cfg, &e, est.device());
        for section in [
            "Synthesis Report",
            "Timing",
            "Performance",
            "Loop Directives",
            "Interface",
            "Utilization",
            "BRAM18K",
            "broadcast",
            "virtual minutes",
        ] {
            assert!(r.contains(section), "missing `{section}` in:\n{r}");
        }
    }

    #[test]
    fn failed_designs_say_so() {
        let s = summary();
        let est = Estimator::new();
        let mut cfg = DesignConfig::perf_seed(&s);
        cfg.loop_directive_mut(LoopId(0)).parallel = 256;
        let e = est.evaluate(&s, &cfg);
        let r = render(&s, &cfg, &e, est.device());
        if !e.is_feasible() {
            assert!(r.contains("FAILED"));
        } else {
            assert!(r.contains("PASSED"));
        }
    }
}
