//! The public estimator interface — what "running HLS" returns.

use crate::cost::HlsCosts;
use crate::device::Device;
use crate::invariants::{BufferBase, KernelInvariants};
use crate::model::{achieved_frequency, ModelCtx};
use crate::resource::ResourceUsage;
use s2fa_hlsir::KernelSummary;
use s2fa_merlin::DesignConfig;
use std::fmt;

/// Whether a design point synthesizes and routes.
///
/// The infeasible reason is reference-counted: estimates are cloned on
/// every memo-table hit, and most randomly drawn points are infeasible,
/// so a `String` here would put one allocation on the cache hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// The design fits and routes.
    Feasible,
    /// Synthesis/implementation fails for the given reason.
    Infeasible(std::sync::Arc<str>),
}

impl Feasibility {
    /// True if the design is feasible.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible)
    }
}

/// Replication product beyond which no design routes — the estimator's
/// "unroutable" feasibility bound.
pub const MAX_REPLICATION: f64 = 1024.0;

/// The statically derivable half of an [`Estimate`]: the exact resource
/// accounting and replication product the feasibility verdict is computed
/// from, with no virtual HLS minutes charged.
///
/// Produced by [`Estimator::resource_screen_with`]. The `s2fa-lint`
/// legality pre-screen is built on this type so that its verdict can never
/// diverge from [`Estimator::evaluate`]: both run the same model walk and
/// both call [`ResourceScreen::feasibility`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceScreen {
    /// Absolute resource usage of the (normalized) design point.
    pub resources: ResourceUsage,
    /// Largest PE replication product reached at any loop.
    pub max_replication: f64,
}

impl ResourceScreen {
    /// The feasibility verdict for these resources on `device` — the
    /// utilization cap, then the routing sanity bound, in the same order
    /// and with the same messages as a full evaluation.
    pub fn feasibility(&self, device: &Device) -> Feasibility {
        let util = self.resources.max_utilization(device);
        if util > device.max_util {
            Feasibility::Infeasible(
                format!(
                    "{} utilization {:.0}% exceeds the {:.0}% cap",
                    self.resources.bottleneck(device),
                    util * 100.0,
                    device.max_util * 100.0
                )
                .into(),
            )
        } else if self.max_replication > MAX_REPLICATION {
            Feasibility::Infeasible(
                format!("replication {} unroutable", self.max_replication as u64).into(),
            )
        } else {
            Feasibility::Feasible
        }
    }
}

/// The report returned for one design point — the information a DSE gets
/// back from the Xilinx SDx flow.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Compute cycles for one batch of `tasks_hint` tasks.
    pub compute_cycles: u64,
    /// Off-chip transfer cycles for the batch.
    pub transfer_cycles: u64,
    /// End-to-end cycles (overlapped if the task loop is tiled).
    pub total_cycles: u64,
    /// Worst initiation interval over all pipelined loops.
    pub ii_critical: f64,
    /// Achieved clock after the place-&-route model.
    pub freq_mhz: f64,
    /// Batch execution time in milliseconds at the achieved clock.
    pub time_ms: f64,
    /// Number of tasks in the batch the cycle counts refer to.
    pub batch_tasks: u32,
    /// Absolute resource usage.
    pub resources: ResourceUsage,
    /// Feasibility verdict.
    pub feasibility: Feasibility,
    /// Virtual HLS evaluation cost in minutes (Impediment 1).
    pub hls_minutes: f64,
}

impl Estimate {
    /// True if the design synthesized.
    pub fn is_feasible(&self) -> bool {
        self.feasibility.is_feasible()
    }

    /// The DSE objective: batch time in ms, `+inf` for infeasible points.
    pub fn objective(&self) -> f64 {
        if self.is_feasible() {
            self.time_ms
        } else {
            f64::INFINITY
        }
    }

    /// Execution time in milliseconds for `n` tasks (amortized scaling of
    /// the evaluated batch).
    pub fn time_ms_for_tasks(&self, n: u64) -> f64 {
        self.time_ms * n as f64 / self.batch_tasks.max(1) as f64
    }

    /// Throughput in tasks per second.
    pub fn tasks_per_second(&self) -> f64 {
        self.batch_tasks as f64 / (self.time_ms / 1e3)
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} ms/batch @ {:.0} MHz (II={:.0}, {}, {})",
            self.time_ms,
            self.freq_mhz,
            self.ii_critical,
            self.resources,
            if self.is_feasible() {
                "feasible"
            } else {
                "INFEASIBLE"
            }
        )
    }
}

/// The analytical HLS + P&R estimator (the SDx stand-in).
///
/// ```
/// use s2fa_hlssim::Estimator;
///
/// let est = Estimator::new();
/// assert_eq!(est.device().name, "xcvu9p (AWS F1)");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Estimator {
    device: Device,
    costs: HlsCosts,
}

impl Estimator {
    /// Estimator for the default VU9P device.
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimator for a custom device envelope.
    pub fn with_device(device: Device) -> Self {
        Estimator {
            device,
            costs: HlsCosts::default(),
        }
    }

    /// The device being targeted.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// The operator characterization in use.
    pub fn costs(&self) -> &HlsCosts {
        &self.costs
    }

    /// Precomputes the configuration-independent facts of a kernel.
    ///
    /// Build once per [`KernelSummary`] and evaluate many design points
    /// against it with [`evaluate_with`](Self::evaluate_with) — the result
    /// is identical to [`evaluate`](Self::evaluate), minus the repeated
    /// subtree walks and operator-class scans.
    pub fn invariants(&self, summary: &KernelSummary) -> KernelInvariants {
        KernelInvariants::build(summary, &self.costs)
    }

    /// Runs "HLS" for one design point.
    ///
    /// The configuration is normalized (factor dependencies enforced)
    /// before evaluation, exactly as the Merlin flow rewrites directives.
    pub fn evaluate(&self, summary: &KernelSummary, config: &DesignConfig) -> Estimate {
        let inv = self.invariants(summary);
        self.evaluate_with(summary, &inv, config)
    }

    /// Runs only the resource-accounting half of the model for one design
    /// point: the [`ResourceScreen`] holds exactly the `resources` and
    /// `max_replication` that [`evaluate`](Self::evaluate) bases its
    /// feasibility verdict on, but no timing, frequency, or virtual HLS
    /// minutes are produced. This is the basis of the `s2fa-lint` legality
    /// pre-screen.
    pub fn resource_screen(
        &self,
        summary: &KernelSummary,
        config: &DesignConfig,
    ) -> ResourceScreen {
        let inv = self.invariants(summary);
        self.resource_screen_with(summary, &inv, config)
    }

    /// [`resource_screen`](Self::resource_screen) against precomputed
    /// invariants (the hot path).
    pub fn resource_screen_with(
        &self,
        summary: &KernelSummary,
        inv: &KernelInvariants,
        config: &DesignConfig,
    ) -> ResourceScreen {
        let mut cfg = config.clone();
        cfg.normalize(summary);
        let mut ctx = ModelCtx::new(summary, &cfg, &self.costs, inv);
        ctx.evaluate();
        ctx.charge_tiling();
        ResourceScreen {
            resources: ctx.resources,
            max_replication: ctx.max_replication,
        }
    }

    /// [`evaluate`](Self::evaluate) against precomputed invariants (the
    /// hot path — `inv` must come from [`invariants`](Self::invariants) on
    /// the same `summary` and estimator).
    pub fn evaluate_with(
        &self,
        summary: &KernelSummary,
        inv: &KernelInvariants,
        config: &DesignConfig,
    ) -> Estimate {
        self.evaluate_inner(summary, inv, config, None)
    }

    /// [`evaluate_with`](Self::evaluate_with) with incremental
    /// re-estimation: loop subtrees whose inputs (their directives, the
    /// widths of the ported buffers they touch, and the entry replication)
    /// match a record in `store` replay the recorded charge sequence
    /// instead of walking. The replay repeats the exact program-order
    /// addends of a full walk, so the returned [`Estimate`] is
    /// **bit-identical** to [`evaluate_with`](Self::evaluate_with) — the
    /// property the determinism suite pins down.
    ///
    /// `store` must be scoped to this (`summary`, estimator) pair; loop
    /// ids and invariants are kernel-relative.
    pub fn evaluate_incremental(
        &self,
        summary: &KernelSummary,
        inv: &KernelInvariants,
        config: &DesignConfig,
        store: &dyn crate::subtree::SubtreeStore,
    ) -> Estimate {
        self.evaluate_inner(summary, inv, config, Some(store))
    }

    fn evaluate_inner(
        &self,
        summary: &KernelSummary,
        inv: &KernelInvariants,
        config: &DesignConfig,
        store: Option<&dyn crate::subtree::SubtreeStore>,
    ) -> Estimate {
        let mut cfg = config.clone();
        cfg.normalize(summary);

        let mut ctx = ModelCtx::new(summary, &cfg, &self.costs, inv);
        if let Some(store) = store {
            ctx.set_store(store);
        }
        let compute = ctx.evaluate();
        ctx.charge_tiling();
        let resources = ctx.resources;
        let freq = achieved_frequency(
            &self.device,
            &resources,
            ctx.max_replication,
            ctx.deep_logic,
        );

        // Transfer: bytes for the batch over the configured port widths,
        // capped by DDR bandwidth.
        let (inb, outb) = inv.interface_bytes;
        let total_bytes =
            (inb + outb) as f64 * summary.tasks_hint as f64 + inv.broadcast_bytes as f64;
        let mut port_bytes_per_cycle = 0.0;
        for bb in &inv.buffer_base {
            if let BufferBase::Iface { name, .. } = bb {
                port_bytes_per_cycle += cfg.buffer_width(name) as f64 / 8.0;
            }
        }
        let ddr_cap = self.device.ddr_bytes_per_cycle(freq);
        let bpc = (port_bytes_per_cycle * 0.8).min(ddr_cap).max(1.0);
        let transfer = total_bytes / bpc;

        let total = if ctx.overlap {
            compute.max(transfer) + 0.05 * compute.min(transfer)
        } else {
            compute + transfer
        };

        // Feasibility: the 75 % utilization cap plus a routing sanity
        // bound, computed through the same [`ResourceScreen`] the lint
        // pre-screen uses so the two can never disagree.
        let screen = ResourceScreen {
            resources,
            max_replication: ctx.max_replication,
        };
        let feasibility = screen.feasibility(&self.device);

        // Virtual HLS wall-clock. Calibrated to Impediment 1: "only tens
        // of design points can be evaluated in one hour" → a few minutes
        // for small designs, tens of minutes for heavily replicated ones.
        let work = resources.lut / 1000.0 + resources.dsp;
        let mut hls_minutes =
            (2.5 + 2.2 * (1.0 + work / 800.0).ln() + 0.6 * (1.0 + ctx.max_replication).log2())
                .min(25.0);
        // Designs that fail synthesis are the *slowest* evaluations: the
        // tool chews through scheduling/binding (or place & route) before
        // giving up, so exploring the infeasible region costs extra
        // wall-clock — exactly why the conservative seed matters (§4.3.2).
        if !feasibility.is_feasible() {
            hls_minutes = (hls_minutes * 1.75).min(45.0);
        }

        let time_ms = total / (freq * 1e3);
        Estimate {
            compute_cycles: compute as u64,
            transfer_cycles: transfer as u64,
            total_cycles: total as u64,
            ii_critical: ctx.worst_ii,
            freq_mhz: freq,
            time_ms,
            batch_tasks: summary.tasks_hint,
            resources,
            feasibility,
            hls_minutes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_hlsir::{
        Access, BufferDir, BufferInfo, CarriedDep, LoopId, LoopInfo, OpCounts, PipelineMode, Stride,
    };

    /// A dot-product style kernel: task loop (1024) over an inner
    /// reduction loop (64) with 2 float ops and 2 reads per iteration.
    fn summary() -> KernelSummary {
        let mut inner_ops = OpCounts::new();
        inner_ops.fadd = 1;
        inner_ops.fmul = 1;
        inner_ops.mem_read = 2;
        let mut chain = OpCounts::new();
        chain.fadd = 1;
        let mut outer_ops = OpCounts::new();
        outer_ops.mem_write = 1;
        KernelSummary {
            name: "dot".into(),
            loops: vec![
                LoopInfo {
                    id: LoopId(0),
                    var: "t".into(),
                    trip_count: 1024,
                    depth: 0,
                    parent: None,
                    children: vec![LoopId(1)],
                    body_ops: outer_ops,
                    accesses: vec![Access {
                        buffer: "out_1".into(),
                        write: true,
                        stride: Stride::Unit,
                    }],
                    carried: None,
                },
                LoopInfo {
                    id: LoopId(1),
                    var: "j".into(),
                    trip_count: 64,
                    depth: 1,
                    parent: Some(LoopId(0)),
                    children: vec![],
                    body_ops: inner_ops,
                    accesses: vec![
                        Access {
                            buffer: "in_1".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                        Access {
                            buffer: "w".into(),
                            write: false,
                            stride: Stride::Unit,
                        },
                    ],
                    carried: Some(CarriedDep {
                        via: "s".into(),
                        chain,
                        reducible: true,
                    }),
                },
            ],
            buffers: vec![
                BufferInfo {
                    name: "in_1".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "w".into(),
                    elem_bits: 32,
                    len: 64,
                    dir: BufferDir::In,
                    broadcast: false,
                },
                BufferInfo {
                    name: "out_1".into(),
                    elem_bits: 32,
                    len: 1,
                    dir: BufferDir::Out,
                    broadcast: false,
                },
            ],
            task_loop: LoopId(0),
            tasks_hint: 1024,
            dataflow: None,
        }
    }

    #[test]
    fn baseline_is_feasible_and_slow() {
        let s = summary();
        let est = Estimator::new();
        let base = est.evaluate(&s, &DesignConfig::area_seed(&s));
        assert!(base.is_feasible());
        assert!(base.freq_mhz >= 240.0, "unoptimized design meets timing");
        assert!(base.compute_cycles > 100_000);
    }

    #[test]
    fn pipelining_the_reduction_helps() {
        let s = summary();
        let est = Estimator::new();
        let base = est.evaluate(&s, &DesignConfig::area_seed(&s));
        let mut cfg = DesignConfig::area_seed(&s);
        cfg.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        cfg.loop_directive_mut(LoopId(1)).tree_reduce = true;
        let piped = est.evaluate(&s, &cfg);
        assert!(piped.is_feasible());
        assert!(
            piped.compute_cycles < base.compute_cycles / 2,
            "pipelining should cut compute at least 2x: {} vs {}",
            piped.compute_cycles,
            base.compute_cycles
        );
    }

    #[test]
    fn recurrence_without_tree_limits_ii() {
        let s = summary();
        let est = Estimator::new();
        let mut cfg = DesignConfig::area_seed(&s);
        cfg.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        let e = est.evaluate(&s, &cfg);
        // fadd chain latency (7) bounds the II
        assert!(e.ii_critical >= 7.0, "II was {}", e.ii_critical);
    }

    #[test]
    fn narrow_ports_throttle_unrolled_loops() {
        let s = summary();
        let est = Estimator::new();
        let mut wide = DesignConfig::area_seed(&s);
        wide.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        wide.loop_directive_mut(LoopId(1)).parallel = 16;
        wide.loop_directive_mut(LoopId(1)).tree_reduce = true;
        let mut narrow = wide.clone();
        for (_, b) in narrow.buffer_bits.iter_mut() {
            *b = 32;
        }
        for (_, b) in wide.buffer_bits.iter_mut() {
            *b = 512;
        }
        let ew = est.evaluate(&s, &wide);
        let en = est.evaluate(&s, &narrow);
        assert!(
            ew.compute_cycles < en.compute_cycles,
            "512-bit ports should beat 32-bit: {} vs {}",
            ew.compute_cycles,
            en.compute_cycles
        );
        assert!(
            en.ii_critical >= 8.0 * ew.ii_critical,
            "port contention should dominate the II: {} vs {}",
            en.ii_critical,
            ew.ii_critical
        );
    }

    #[test]
    fn massive_parallelism_is_infeasible() {
        let s = summary();
        let est = Estimator::new();
        let mut cfg = DesignConfig::perf_seed(&s);
        // crank the task loop PE count
        cfg.loop_directive_mut(LoopId(0)).parallel = 512;
        cfg.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        cfg.loop_directive_mut(LoopId(1)).parallel = 64;
        let e = est.evaluate(&s, &cfg);
        assert!(!e.is_feasible(), "512x64 PEs must blow the 75% cap: {e}");
    }

    #[test]
    fn tiling_task_loop_overlaps_transfer() {
        let s = summary();
        let est = Estimator::new();
        let mut cfg = DesignConfig::perf_seed(&s);
        cfg.loop_directive_mut(LoopId(0)).parallel = 1;
        let no_tile = est.evaluate(&s, &cfg);
        cfg.loop_directive_mut(LoopId(0)).tile = Some(16);
        let tiled = est.evaluate(&s, &cfg);
        assert!(tiled.total_cycles < no_tile.total_cycles);
    }

    #[test]
    fn hls_minutes_in_paper_range() {
        let s = summary();
        let est = Estimator::new();
        let e1 = est.evaluate(&s, &DesignConfig::area_seed(&s));
        let e2 = est.evaluate(&s, &DesignConfig::perf_seed(&s));
        assert!(e1.hls_minutes >= 2.5 && e1.hls_minutes <= 25.0);
        assert!(
            e2.hls_minutes > e1.hls_minutes,
            "bigger designs take longer"
        );
    }

    #[test]
    fn objective_is_infinite_when_infeasible() {
        let s = summary();
        let est = Estimator::new();
        let mut cfg = DesignConfig::perf_seed(&s);
        cfg.loop_directive_mut(LoopId(0)).parallel = 1024;
        cfg.loop_directive_mut(LoopId(1)).parallel = 64;
        let e = est.evaluate(&s, &cfg);
        if !e.is_feasible() {
            assert!(e.objective().is_infinite());
        }
        let ok = est.evaluate(&s, &DesignConfig::area_seed(&s));
        assert!(ok.objective().is_finite());
    }

    #[test]
    fn time_scaling_helpers() {
        let s = summary();
        let est = Estimator::new();
        let e = est.evaluate(&s, &DesignConfig::area_seed(&s));
        let t2 = e.time_ms_for_tasks(2048);
        assert!((t2 / e.time_ms - 2.0).abs() < 1e-9);
        assert!(e.tasks_per_second() > 0.0);
    }

    #[test]
    fn resource_screen_agrees_with_evaluate() {
        let s = summary();
        let est = Estimator::new();
        let mut cfgs = vec![DesignConfig::area_seed(&s), DesignConfig::perf_seed(&s)];
        // a clearly unroutable point and a cap-blowing point
        let mut huge = DesignConfig::perf_seed(&s);
        huge.loop_directive_mut(LoopId(0)).parallel = 512;
        huge.loop_directive_mut(LoopId(1)).parallel = 64;
        cfgs.push(huge);
        for cfg in &cfgs {
            let e = est.evaluate(&s, cfg);
            let screen = est.resource_screen(&s, cfg);
            assert_eq!(screen.resources, e.resources);
            assert_eq!(screen.feasibility(est.device()), e.feasibility);
        }
    }

    #[test]
    fn determinism() {
        let s = summary();
        let est = Estimator::new();
        let cfg = DesignConfig::perf_seed(&s);
        assert_eq!(est.evaluate(&s, &cfg), est.evaluate(&s, &cfg));
    }

    #[test]
    fn incremental_matches_full_walk_bit_for_bit() {
        use crate::subtree::{SubtreeCost, SubtreeKey, SubtreeStore};
        use std::collections::HashMap;
        use std::sync::{Arc, Mutex};

        struct MapStore(Mutex<HashMap<SubtreeKey, Arc<SubtreeCost>>>);
        impl SubtreeStore for MapStore {
            fn get(&self, key: &SubtreeKey) -> Option<Arc<SubtreeCost>> {
                self.0.lock().unwrap().get(key).cloned()
            }
            fn put(&self, key: SubtreeKey, cost: SubtreeCost) {
                self.0.lock().unwrap().insert(key, Arc::new(cost));
            }
        }

        let s = summary();
        let est = Estimator::new();
        let inv = est.invariants(&s);
        let store = MapStore(Mutex::new(HashMap::new()));

        // Walk a chain of single-factor neighbor mutations so later
        // configs replay subtrees recorded by earlier ones.
        let mut cfgs = vec![DesignConfig::area_seed(&s), DesignConfig::perf_seed(&s)];
        let mut c = DesignConfig::area_seed(&s);
        c.loop_directive_mut(LoopId(1)).pipeline = PipelineMode::On;
        cfgs.push(c.clone());
        c.loop_directive_mut(LoopId(1)).parallel = 8;
        cfgs.push(c.clone());
        c.loop_directive_mut(LoopId(0)).tile = Some(16);
        cfgs.push(c.clone());
        c.loop_directive_mut(LoopId(1)).tree_reduce = true;
        cfgs.push(c);

        for cfg in &cfgs {
            // Cold pass records subtrees; warm pass replays them. Both
            // must equal the full walk exactly (f64 `==`, not approx).
            for pass in 0..2 {
                let inc = est.evaluate_incremental(&s, &inv, cfg, &store);
                let full = est.evaluate_with(&s, &inv, cfg);
                assert_eq!(inc, full, "pass {pass} diverged for {cfg:?}");
            }
        }
        assert!(
            !store.0.lock().unwrap().is_empty(),
            "non-leaf subtrees should have been recorded"
        );
    }
}
