//! Subtree cost records for incremental re-estimation.
//!
//! The model walk ([`ModelCtx::eval_loop`](crate::model::ModelCtx)) is a
//! pure function of one loop subtree's *inputs*: the directives of the
//! loops inside the subtree, the configured widths of the off-chip
//! buffers its leaves touch, and the replication product the recursion
//! entered with. When a DSE proposal differs from an already-priced
//! neighbor in a single tunable factor, every subtree that does not
//! contain the changed factor re-derives exactly the same numbers — so
//! the walk can skip it, provided skipping is *bit-identical* to
//! recomputing.
//!
//! Bit-identity is the hard part: the model accumulates resources with
//! `f64` additions, and float addition is not associative, so a subtree's
//! contribution cannot be pre-summed and added back in one go. Instead a
//! [`SubtreeCost`] records the **exact program-order sequence of
//! addends** the walk charged (per resource field), and a cache hit
//! *replays* that sequence with `+=` — the accumulator sees the same
//! values in the same order as a full walk, so the final bit pattern is
//! identical. The max-folded metrics (`max_replication`, `deep_logic`,
//! `worst_ii`) are safe to store as subtree-local maxima because `max`
//! is exact, and the returned `cycles`/`ii` are pure outputs.
//!
//! The store itself lives one layer up (`s2fa-engine` keeps a sharded
//! map per kernel); this module only defines the key, the record, and
//! the [`SubtreeStore`] interface the model walks against.

use s2fa_hlsir::LoopId;
use std::sync::Arc;

/// One resource field of [`ResourceUsage`](crate::ResourceUsage), as a
/// replay target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Res {
    /// `bram_18k`.
    Bram,
    /// `dsp`.
    Dsp,
    /// `ff`.
    Ff,
    /// `lut`.
    Lut,
}

/// Cache key of one subtree evaluation: the subtree root, the entry
/// replication (bit pattern — the walk enters with an exact `f64`), and
/// a fingerprint over every configuration field the subtree reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubtreeKey {
    /// Root loop of the subtree.
    pub root: LoopId,
    /// `f64::to_bits` of the replication product the walk entered with.
    pub repl_bits: u64,
    /// Fingerprint over the subtree's directives and the widths of the
    /// ported buffers its leaves access. Computed bottom-up once per
    /// evaluation (digest-of-digests: a node mixes its own words with its
    /// children's digests), so keying a subtree is a table lookup.
    pub subfp: u128,
}

/// The recorded outcome of one subtree walk.
#[derive(Debug, Clone, PartialEq)]
pub struct SubtreeCost {
    /// Every resource addend the walk charged, in program order.
    pub charges: Vec<(Res, f64)>,
    /// Max `repl * u` reached inside the subtree (`-inf` when none —
    /// impossible in practice, the root itself always folds one in).
    pub max_repl: f64,
    /// Max deep-logic candidate folded inside the subtree (`-inf` when
    /// the subtree flattens no recurrence).
    pub deep_logic: f64,
    /// Max pipelined II folded inside the subtree (`-inf` when the
    /// subtree pins no II).
    pub worst_ii: f64,
    /// The returned total cycles.
    pub cycles: f64,
    /// The returned initiation interval.
    pub ii: f64,
}

/// A concurrent map of subtree costs. Implementations must be safe to
/// share across evaluation threads; every stored record is a pure
/// function of its key, so racing writers always store equal values.
///
/// A store is only meaningful per (kernel, estimator) pair — `LoopId`s
/// and invariants are kernel-relative. `s2fa-engine` owns one per
/// [`EvalEngine`](../s2fa_engine/struct.EvalEngine.html).
pub trait SubtreeStore: Sync {
    /// Looks up a recorded subtree cost.
    fn get(&self, key: &SubtreeKey) -> Option<Arc<SubtreeCost>>;
    /// Records a subtree cost (racing `put`s of one key are benign).
    fn put(&self, key: SubtreeKey, cost: SubtreeCost);
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;
// Second stream: xorshift* offset + the 64-bit golden-ratio multiplier.
// Any odd constant preserves the xor-multiply mixing; a different one
// decorrelates the two streams.
const ALT_OFFSET: u64 = 0x2545f4914f6cdd1d;
const ALT_PRIME: u64 = 0x9e3779b97f4a7c15;

/// Word-at-a-time 128-bit mixer for design and subtree fingerprints.
///
/// Runs **two independent 64-bit xor-multiply streams** (FNV-1a-64 and a
/// golden-ratio variant) and concatenates them, rather than one 128-bit
/// FNV chain: a 128-bit multiply is three dependent 64×64 multiplies, so
/// the serial chain dominated the warm-path profile, while the two
/// 64-bit streams issue in parallel and cost one multiply of latency per
/// word. A joint collision needs both streams to collide at once, which
/// keeps the birthday bound in the same negligible regime as FNV-128.
#[derive(Debug, Clone, Copy)]
pub struct SubFnv {
    a: u64,
    b: u64,
}

impl SubFnv {
    /// A fresh digest.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        SubFnv {
            a: FNV_OFFSET,
            b: ALT_OFFSET,
        }
    }

    /// Mixes one word.
    #[inline]
    pub fn word(&mut self, w: u64) {
        self.a = (self.a ^ w).wrapping_mul(FNV_PRIME);
        self.b = (self.b ^ w).wrapping_mul(ALT_PRIME);
    }

    /// The digest so far.
    pub fn finish(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}
