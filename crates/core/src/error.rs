//! Framework error type.

use std::fmt;

/// Errors raised by the S2FA pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum S2faError {
    /// The kernel bytecode failed verification.
    Verify(String),
    /// The bytecode uses a construct outside the supported subset
    /// (paper §3.3's limitations: non-canonical control flow, dynamic
    /// allocation sizes, unsupported library calls, ...).
    Unsupported(String),
    /// The kernel's declared shapes do not match its bytecode.
    Shape(String),
    /// Analysis of the generated C failed.
    Analysis(String),
    /// The generated (or transformed) C kernel failed the `s2fa-lint`
    /// well-formedness verifier — a compiler bug surfaced as a structured
    /// diagnostic rather than downstream miscompilation.
    IllFormed(String),
    /// The DSE found no feasible design.
    NoFeasibleDesign,
}

impl fmt::Display for S2faError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S2faError::Verify(m) => write!(f, "bytecode verification failed: {m}"),
            S2faError::Unsupported(m) => write!(f, "unsupported construct: {m}"),
            S2faError::Shape(m) => write!(f, "shape mismatch: {m}"),
            S2faError::Analysis(m) => write!(f, "kernel analysis failed: {m}"),
            S2faError::IllFormed(m) => write!(f, "ill-formed kernel IR: {m}"),
            S2faError::NoFeasibleDesign => {
                write!(f, "design space exploration found no feasible design")
            }
        }
    }
}

impl std::error::Error for S2faError {}

impl From<s2fa_sjvm::SjvmError> for S2faError {
    fn from(e: s2fa_sjvm::SjvmError) -> Self {
        S2faError::Verify(e.to_string())
    }
}

impl From<s2fa_hlsir::HlsirError> for S2faError {
    fn from(e: s2fa_hlsir::HlsirError) -> Self {
        S2faError::Analysis(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<S2faError>();
        assert!(S2faError::NoFeasibleDesign.to_string().contains("feasible"));
    }
}
