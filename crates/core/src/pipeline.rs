//! The end-to-end S2FA pipeline (paper Fig. 1).

use crate::codegen::{compile_kernel, GeneratedKernel};
use crate::S2faError;
use s2fa_blaze::{AccelTimeModel, Accelerator};
use s2fa_dse::{run_dse_profiled, DesignSpace, DseOptions, DseOutcome};
use s2fa_hlsir::{analysis, printer, KernelSummary};
use s2fa_hlssim::{Estimate, Estimator};
use s2fa_lint::{dataflow_checks, new_dataflow_errors, new_errors, verify_function, LintReport};
use s2fa_merlin::{apply_structural, DesignConfig};
use s2fa_obs::Profiler;
use s2fa_sjvm::KernelSpec;
use s2fa_trace::{NullSink, TraceSink};
use std::sync::Arc;

/// Options of one compilation.
#[derive(Debug, Clone)]
pub struct S2faOptions {
    /// Nominal batch size: trip count assumed for the template loop and
    /// the batch the estimates refer to.
    pub tasks_hint: u32,
    /// DSE configuration (paper §4.3 defaults).
    pub dse: DseOptions,
}

impl Default for S2faOptions {
    fn default() -> Self {
        S2faOptions {
            tasks_hint: 1024,
            dse: DseOptions::s2fa(),
        }
    }
}

/// Everything the framework produces for one kernel.
#[derive(Debug, Clone)]
pub struct CompiledAccelerator {
    /// Generated C kernel plus layouts.
    pub generated: GeneratedKernel,
    /// Loop-nest / buffer analysis used for design-space identification.
    pub summary: KernelSummary,
    /// `log10` of the identified design-space size (Table 1).
    pub space_size_log10: f64,
    /// The DSE run, when one was performed.
    pub dse: Option<DseOutcome>,
    /// The selected design configuration.
    pub design: DesignConfig,
    /// HLS estimate of the selected design.
    pub estimate: Estimate,
    /// Final optimized HLS C source with pragmas.
    pub optimized_source: String,
    /// Deployable Blaze accelerator (functional kernel + layouts + timing).
    pub accelerator: Accelerator,
}

/// The S2FA framework: bytecode-to-C compilation, design space
/// identification/exploration, and Blaze integration.
#[derive(Debug, Clone, Default)]
pub struct S2fa {
    estimator: Estimator,
    options: S2faOptions,
    trace_sink: Option<Arc<dyn TraceSink>>,
    profiler: Profiler,
}

impl S2fa {
    /// Creates the framework with the given options and the default VU9P
    /// estimator.
    pub fn new(options: S2faOptions) -> Self {
        S2fa {
            estimator: Estimator::new(),
            options,
            trace_sink: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Replaces the HLS estimator (e.g. a different device).
    pub fn with_estimator(mut self, estimator: Estimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Attaches a structured-event sink: [`compile`](Self::compile) then
    /// streams the DSE's virtual schedule (evaluations, partitions,
    /// technique pulls, cache activity) through it. Emission is purely
    /// observational — outcomes are identical with or without a sink.
    pub fn with_trace_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace_sink = Some(sink);
        self
    }

    /// Attaches a host-side profiler: [`compile`](Self::compile) then
    /// records wall-time spans over every stage (`compile{codegen, lint,
    /// analyze, dse, package}` plus the DSE's own span forest) and feeds
    /// the profiler's metrics registry from the hot paths. Like tracing,
    /// profiling is purely observational — outcomes are bit-identical
    /// with the default [`Profiler::disabled`].
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The attached profiler (disabled unless
    /// [`with_profiler`](Self::with_profiler) was called).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// The HLS estimator in use.
    pub fn estimator(&self) -> &Estimator {
        &self.estimator
    }

    /// The options in use.
    pub fn options(&self) -> &S2faOptions {
        &self.options
    }

    /// Full automatic flow: compile, identify the space, explore it, and
    /// package the best design.
    ///
    /// # Errors
    ///
    /// Propagates compilation errors and returns
    /// [`S2faError::NoFeasibleDesign`] if the DSE never found a design
    /// that synthesizes.
    pub fn compile(&self, spec: &KernelSpec) -> Result<CompiledAccelerator, S2faError> {
        let mut lane = self.profiler.lane();
        let compile_span = lane.open("compile");
        let codegen_span = lane.open("codegen");
        let generated = compile_kernel(spec)?;
        lane.close(codegen_span);
        let lint_span = lane.open("lint");
        ensure_well_formed(&generated.cfunc)?;
        lane.close(lint_span);
        let analyze_span = lane.open("analyze");
        let mut summary = analysis::summarize(&generated.cfunc, self.options.tasks_hint)?;
        if self.options.dse.dataflow_prescreen {
            s2fa_hlsir::dataflow::attach(&mut summary, &generated.cfunc);
        }
        let space = DesignSpace::build(&summary);
        lane.close(analyze_span);
        let sink: Arc<dyn TraceSink> = match &self.trace_sink {
            Some(sink) => sink.clone(),
            None => Arc::new(NullSink),
        };
        // The driver records its own `dse` forest (stage spans, per-thread
        // tune/batch lanes); this wrapper span covers the same interval
        // from the compile lane's point of view.
        let dse_span = lane.open("dse");
        let dse = run_dse_profiled(
            &summary,
            &self.estimator,
            &self.options.dse,
            sink,
            &self.profiler,
        );
        lane.close(dse_span);
        let (design, estimate) = dse.best.clone().ok_or(S2faError::NoFeasibleDesign)?;
        let package_span = lane.open("package");
        let mut result = self.package(spec, generated, summary, design, estimate)?;
        lane.close(package_span);
        lane.close(compile_span);
        result.space_size_log10 = space.size_log10();
        result.dse = Some(dse);
        Ok(result)
    }

    /// Expert flow: compile and evaluate a *given* design configuration
    /// (used for the paper's manual reference designs).
    ///
    /// # Errors
    ///
    /// Propagates compilation errors; returns
    /// [`S2faError::NoFeasibleDesign`] if the given design does not
    /// synthesize.
    pub fn compile_with_config(
        &self,
        spec: &KernelSpec,
        design: &DesignConfig,
    ) -> Result<CompiledAccelerator, S2faError> {
        let generated = compile_kernel(spec)?;
        ensure_well_formed(&generated.cfunc)?;
        let mut summary = analysis::summarize(&generated.cfunc, self.options.tasks_hint)?;
        if self.options.dse.dataflow_prescreen {
            s2fa_hlsir::dataflow::attach(&mut summary, &generated.cfunc);
        }
        let space = DesignSpace::build(&summary);
        let estimate = self.estimator.evaluate(&summary, design);
        if !estimate.is_feasible() {
            return Err(S2faError::NoFeasibleDesign);
        }
        let mut result = self.package(spec, generated, summary, design.clone(), estimate)?;
        result.space_size_log10 = space.size_log10();
        Ok(result)
    }

    fn package(
        &self,
        spec: &KernelSpec,
        generated: GeneratedKernel,
        summary: KernelSummary,
        design: DesignConfig,
        estimate: Estimate,
    ) -> Result<CompiledAccelerator, S2faError> {
        let mut normalized = design.clone();
        normalized.normalize(&summary);
        // Structural rewrites (inner-loop tiling) where they apply cleanly,
        // attributes/pragmas for the rest — semantics are preserved, so
        // the same function is both the shipped source and the functional
        // kernel behind the registered accelerator.
        let (optimized, _transform_report) = apply_structural(&generated.cfunc, &normalized);
        ensure_no_new_errors(&generated.cfunc, &optimized, self.options.tasks_hint)?;
        let source = printer::to_c(&optimized);
        let time_model = AccelTimeModel {
            per_task_ms: estimate.time_ms / estimate.batch_tasks.max(1) as f64,
            setup_ms: 0.15,
        };
        let accelerator = Accelerator {
            id: spec.name.clone(),
            kernel: optimized,
            operator: spec.operator,
            input_layout: generated.input_layout.clone(),
            output_layout: generated.output_layout.clone(),
            time_model: Some(time_model),
        };
        Ok(CompiledAccelerator {
            generated,
            summary,
            space_size_log10: 0.0,
            dse: None,
            design: normalized,
            estimate,
            optimized_source: source,
            accelerator,
        })
    }
}

/// Runs the `s2fa-lint` well-formedness verifier over freshly generated
/// C and rejects the compilation on any error-severity finding.
fn ensure_well_formed(f: &s2fa_hlsir::CFunction) -> Result<LintReport, S2faError> {
    let report = verify_function(f);
    if report.has_errors() {
        let first = report.errors().next().expect("has_errors implies one");
        return Err(S2faError::IllFormed(first.to_string()));
    }
    Ok(report)
}

/// Differential verification around `apply_structural`: structural
/// rewrites must not *introduce* errors the pre-image did not have —
/// neither well-formedness errors (`E1xx`, exact-diagnostic diff) nor
/// dataflow errors (`E3xx`, diffed by code+subject since transforms
/// renumber statements and loops).
fn ensure_no_new_errors(
    before: &s2fa_hlsir::CFunction,
    after: &s2fa_hlsir::CFunction,
    tasks_hint: u32,
) -> Result<(), S2faError> {
    let baseline = verify_function(before);
    let post = verify_function(after);
    if let Some(d) = new_errors(&baseline, &post).first() {
        return Err(S2faError::IllFormed(format!(
            "structural transform introduced {d}"
        )));
    }
    let df_baseline = dataflow_checks(before, tasks_hint);
    let df_post = dataflow_checks(after, tasks_hint);
    if let Some(d) = new_dataflow_errors(&df_baseline, &df_post).first() {
        return Err(S2faError::IllFormed(format!(
            "structural transform introduced {d}"
        )));
    }
    Ok(())
}
