//! Symbolic values used by the bytecode-to-C decompiler.
//!
//! The decompiler executes bytecode *symbolically*: primitives become C
//! expression trees, while objects stay compile-time records of their
//! fields — this is precisely how S2FA "flats class fields and inlines
//! class methods" (§3.2). An object value never reaches the generated C;
//! only its primitive leaves and arrays do.

use s2fa_hlsir::{CNumKind, Expr};

/// A handle to a C array (an interface buffer or a kernel-local array).
#[derive(Debug, Clone)]
pub(crate) struct ArrRef {
    /// C array name.
    pub name: String,
    /// Element evaluation kind.
    pub elem: CNumKind,
    /// Element count (per task for interface buffers).
    pub len: u32,
    /// Base offset added to every index (`Some(i * len)` for interface
    /// buffers sliced per task; `None` for locals).
    pub base: Option<Expr>,
}

impl ArrRef {
    /// The full C index expression for a logical element index.
    pub fn index_expr(&self, idx: Expr) -> Expr {
        match &self.base {
            Some(b) => Expr::bin(s2fa_hlsir::CBinOp::Add, CNumKind::I32, b.clone(), idx),
            None => idx,
        }
    }
}

/// A symbolic value on the decompiler's operand stack or in a local slot.
#[derive(Debug, Clone)]
pub(crate) enum Sym {
    /// A primitive value as a C expression.
    Scalar(Expr, CNumKind),
    /// A flattened object: compile-time record of field values.
    ///
    /// Field access is positional, so the defining class is not carried;
    /// input-bound records and constructor results share this shape.
    Obj {
        /// Field values in declaration order.
        fields: Vec<Sym>,
    },
    /// A C array handle.
    Arr(ArrRef),
    /// The null reference.
    Null,
    /// Alias to an object at a fixed operand-stack depth (produced by
    /// `dup` in the `new; dup; ...; putfield` constructor idiom).
    StackRef(usize),
    /// Alias to an object held in a local slot (produced by loading an
    /// object-typed local, so field writes mutate the local).
    LocalRef(u16),
}

impl Sym {
    /// Builds a zero value of the given kind.
    pub fn zero(kind: CNumKind) -> Sym {
        if kind.is_float() {
            Sym::Scalar(Expr::ConstF(0.0), kind)
        } else {
            Sym::Scalar(Expr::ConstI(0), kind)
        }
    }
}
