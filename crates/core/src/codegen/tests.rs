//! Decompiler unit tests: every test builds a kernel through the builder
//! DSL (the `scalac` stand-in), compiles the resulting *bytecode* to HLS C,
//! and checks the generated code — most importantly, functional
//! equivalence between the JVM interpreter and the HLS IR executor.

use super::*;
use s2fa_blaze::Accelerator;
use s2fa_hlsir::printer;
use s2fa_sjvm::builder::{Expr as JE, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, Interp, JType, MethodTable, NumKind, RddOp, Shape};

/// Builds a map kernel spec from a builder closure.
fn map_spec(
    name: &str,
    params: &[(&str, JType)],
    ret: JType,
    input_shape: Shape,
    output_shape: Shape,
    build: impl FnOnce(&mut FnBuilder, &mut ClassTable, &mut MethodTable),
) -> KernelSpec {
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", params, Some(ret));
    build(&mut b, &mut classes, &mut methods);
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    KernelSpec {
        name: name.into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape,
        output_shape,
    }
}

/// Runs the same records through the JVM interpreter and the generated
/// accelerator; asserts identical results.
fn assert_equivalent(spec: &KernelSpec, records: &[HostValue]) {
    let generated = compile_kernel(spec).expect("codegen");
    let accel = Accelerator {
        id: spec.name.clone(),
        kernel: generated.cfunc.clone(),
        operator: spec.operator,
        input_layout: generated.input_layout.clone(),
        output_layout: generated.output_layout.clone(),
        time_model: None,
    };
    let (hw, _) = accel.run_batch(records).expect("accelerator execution");
    let mut interp = Interp::new(&spec.classes, &spec.methods);
    match spec.operator {
        RddOp::Map => {
            for (i, rec) in records.iter().enumerate() {
                let (jvm, _) = interp
                    .run(spec.entry, std::slice::from_ref(rec))
                    .expect("jvm execution");
                assert_eq!(
                    canon(&jvm),
                    canon(&hw[i]),
                    "record {i} diverged\nkernel:\n{}",
                    printer::to_c(&generated.cfunc)
                );
            }
        }
        RddOp::Reduce => {
            let mut acc = records[0].clone();
            for rec in &records[1..] {
                let (v, _) = interp
                    .run(spec.entry, &[acc.clone(), rec.clone()])
                    .expect("jvm execution");
                acc = v;
            }
            assert_eq!(canon(&acc), canon(&hw[0]));
        }
    }
}

/// Canonicalizes host values for comparison: a `Str` and the equivalent
/// char array compare equal, and tuples recurse.
fn canon(v: &HostValue) -> HostValue {
    match v {
        HostValue::Str(s) => HostValue::Arr(s.bytes().map(|b| HostValue::I(b as i64)).collect()),
        HostValue::Tuple(vs) | HostValue::Obj(_, vs) => {
            HostValue::Tuple(vs.iter().map(canon).collect())
        }
        HostValue::Arr(vs) => HostValue::Arr(vs.iter().map(canon).collect()),
        other => other.clone(),
    }
}

#[test]
fn scalar_affine_map() {
    let spec = map_spec(
        "affine",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            b.ret(JE::local(x).mul(JE::const_i(3)).add(JE::const_i(1)));
        },
    );
    assert_equivalent(
        &spec,
        &[HostValue::I(0), HostValue::I(-5), HostValue::I(41)],
    );
}

#[test]
fn generated_source_has_code3_shape() {
    let spec = map_spec(
        "affine",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            b.ret(JE::local(x).add(JE::const_i(1)));
        },
    );
    let g = compile_kernel(&spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    assert!(src.contains("void affine_kernel(int n, const int *in_1, int *out_1)"));
    assert!(src.contains("for (int i = 0; i < n; i++)"));
    assert!(src.contains("out_1[i] = (in_1[i] + 1);"));
}

#[test]
fn tuple_swap_flattens_constructor() {
    let spec = {
        let mut classes = ClassTable::new();
        let pair = classes.define_tuple2(JType::Int, JType::Int);
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("in", JType::Ref(pair))], Some(JType::Ref(pair)));
        let input = b.param(0);
        b.ret(JE::NewObj(
            pair,
            vec![JE::local(input).field("_2"), JE::local(input).field("_1")],
        ));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "swap".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::pair(Shape::Scalar(JType::Int), Shape::Scalar(JType::Int)),
            output_shape: Shape::pair(Shape::Scalar(JType::Int), Shape::Scalar(JType::Int)),
        }
    };
    assert_equivalent(
        &spec,
        &[
            HostValue::pair(HostValue::I(1), HostValue::I(2)),
            HostValue::pair(HostValue::I(-7), HostValue::I(9)),
        ],
    );
    // the generated C has two in and two out buffers, no struct
    let g = compile_kernel(&spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    assert!(src.contains("in_2"));
    assert!(src.contains("out_2"));
    assert!(src.contains("out_1[i] = in_2[i];"));
    assert!(!src.to_lowercase().contains("tuple"));
}

#[test]
fn dot_product_with_loop_recovery() {
    let spec = {
        let mut classes = ClassTable::new();
        let farr = JType::array(JType::Float);
        let pair = classes.define_tuple2(farr.clone(), farr.clone());
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("in", JType::Ref(pair))], Some(JType::Float));
        let input = b.param(0);
        let s = b.local("s", JType::Float);
        let j = b.local("j", JType::Int);
        b.set(s, JE::const_f32(0.0));
        b.for_loop(j, JE::const_i(0), JE::const_i(8), |b| {
            b.set(
                s,
                JE::local(s).add(
                    JE::local(input)
                        .field("_1")
                        .index(JE::local(j))
                        .mul(JE::local(input).field("_2").index(JE::local(j))),
                ),
            );
        });
        b.ret(JE::local(s));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "dot".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::pair(Shape::Array(JType::Float, 8), Shape::Array(JType::Float, 8)),
            output_shape: Shape::Scalar(JType::Float),
        }
    };
    let rec = |xs: &[f64], ws: &[f64]| {
        HostValue::pair(HostValue::f64_array(xs), HostValue::f64_array(ws))
    };
    assert_equivalent(
        &spec,
        &[
            rec(&[1.0; 8], &[2.0; 8]),
            rec(
                &[0.5, -1.0, 3.25, 0.0, 2.0, -2.0, 1.5, 4.0],
                &[1.0, 2.0, -0.5, 9.0, 0.25, 1.0, -1.0, 0.125],
            ),
        ],
    );
    // the loop was recovered as a canonical counted for
    let g = compile_kernel(&spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    assert!(src.contains("L1:"), "inner loop gets its own id:\n{src}");
    assert!(src.contains("< 8;"));
}

#[test]
fn branchy_kernel_if_else_and_select() {
    let spec = map_spec(
        "clip",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            let y = b.local("y", JType::Int);
            b.if_else(
                JE::local(x).lt(JE::const_i(0)),
                |b| b.set(y, JE::local(x).neg()),
                |b| b.set(y, JE::local(x)),
            );
            // select on top: saturate at 100
            b.ret(JE::select(
                JE::local(y).gt(JE::const_i(100)),
                JE::const_i(100),
                JE::local(y),
            ));
        },
    );
    assert_equivalent(
        &spec,
        &[
            HostValue::I(-250),
            HostValue::I(-3),
            HostValue::I(0),
            HostValue::I(99),
            HostValue::I(1000),
        ],
    );
}

#[test]
fn virtual_method_is_inlined() {
    let spec = {
        let mut classes = ClassTable::new();
        let point = classes
            .define(
                "Point",
                vec![
                    s2fa_sjvm::FieldDef {
                        name: "x".into(),
                        ty: JType::Double,
                    },
                    s2fa_sjvm::FieldDef {
                        name: "y".into(),
                        ty: JType::Double,
                    },
                ],
            )
            .unwrap();
        let mut methods = MethodTable::new();
        let mut mb = FnBuilder::method("norm2", point, &[], Some(JType::Double));
        let this = mb.param(0);
        mb.ret(
            JE::local(this)
                .field("x")
                .mul(JE::local(this).field("x"))
                .add(JE::local(this).field("y").mul(JE::local(this).field("y"))),
        );
        let norm2 = mb.finish(&mut classes, &mut methods).unwrap();
        classes.add_method(point, "norm2", norm2);
        let mut b = FnBuilder::new("call", &[("p", JType::Ref(point))], Some(JType::Double));
        let p = b.param(0);
        b.ret(JE::local(p).invoke("norm2", vec![]).sqrt());
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "norm".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::pair(Shape::Scalar(JType::Double), Shape::Scalar(JType::Double)),
            output_shape: Shape::Scalar(JType::Double),
        }
    };
    assert_equivalent(
        &spec,
        &[
            HostValue::pair(HostValue::F(3.0), HostValue::F(4.0)),
            HostValue::pair(HostValue::F(-1.5), HostValue::F(2.5)),
        ],
    );
    // no call remains in the generated C
    let g = compile_kernel(&spec).unwrap();
    let src = printer::to_c(&g.cfunc);
    assert!(!src.contains("norm2("));
    assert!(src.contains("sqrtf("));
}

#[test]
fn string_kernel_counts_chars() {
    let spec = map_spec(
        "count_a",
        &[("s", JType::array(JType::Char))],
        JType::Int,
        Shape::Array(JType::Char, 16),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let s = b.param(0);
            let c = b.local("c", JType::Int);
            let i = b.local("i", JType::Int);
            b.set(c, JE::const_i(0));
            b.for_loop(i, JE::const_i(0), JE::local(s).len(), |b| {
                b.if_then(
                    JE::local(s)
                        .index(JE::local(i))
                        .eq(JE::const_i(b'a' as i64)),
                    |b| b.set(c, JE::local(c).add(JE::const_i(1))),
                );
            });
            b.ret(JE::local(c));
        },
    );
    // NB: the JVM sees the padded 16-char array too (Str → char[16] via
    // the same shape), so counts agree on NUL padding.
    let pad = |s: &str| {
        let mut v: Vec<HostValue> = s.bytes().map(|b| HostValue::I(b as i64)).collect();
        v.resize(16, HostValue::I(0));
        HostValue::Arr(v)
    };
    assert_equivalent(&spec, &[pad("banana"), pad(""), pad("aaaaaaaaaaaaaaaa")]);
}

#[test]
fn local_array_output_copy() {
    // x -> tuple of (sum, running-prefix array)
    let spec = {
        let mut classes = ClassTable::new();
        let iarr = JType::array(JType::Int);
        let pair = classes.define_tuple2(JType::Int, iarr.clone());
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new("call", &[("xs", iarr.clone())], Some(JType::Ref(pair)));
        let xs = b.param(0);
        let acc = b.local("acc", iarr);
        let s = b.local("s", JType::Int);
        let i = b.local("i", JType::Int);
        b.set(acc, JE::NewArray(JType::Int, 4));
        b.set(s, JE::const_i(0));
        b.for_loop(i, JE::const_i(0), JE::const_i(4), |b| {
            b.set(s, JE::local(s).add(JE::local(xs).index(JE::local(i))));
            b.set_index(JE::local(acc), JE::local(i), JE::local(s));
        });
        b.ret(JE::NewObj(pair, vec![JE::local(s), JE::local(acc)]));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "prefix".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Map,
            input_shape: Shape::Array(JType::Int, 4),
            output_shape: Shape::pair(Shape::Scalar(JType::Int), Shape::Array(JType::Int, 4)),
        }
    };
    assert_equivalent(
        &spec,
        &[
            HostValue::i64_array(&[1, 2, 3, 4]),
            HostValue::i64_array(&[-1, 5, 0, 2]),
        ],
    );
}

#[test]
fn reduce_template_sums_pairs() {
    let spec = {
        let mut classes = ClassTable::new();
        let pair = classes.define_tuple2(JType::Double, JType::Double);
        let mut methods = MethodTable::new();
        let mut b = FnBuilder::new(
            "call",
            &[("a", JType::Ref(pair)), ("b", JType::Ref(pair))],
            Some(JType::Ref(pair)),
        );
        let a = b.param(0);
        let x = b.param(1);
        b.ret(JE::NewObj(
            pair,
            vec![
                JE::local(a).field("_1").add(JE::local(x).field("_1")),
                JE::local(a).field("_2").add(JE::local(x).field("_2")),
            ],
        ));
        let entry = b.finish(&mut classes, &mut methods).unwrap();
        KernelSpec {
            name: "sum2".into(),
            classes,
            methods,
            entry,
            operator: RddOp::Reduce,
            input_shape: Shape::pair(Shape::Scalar(JType::Double), Shape::Scalar(JType::Double)),
            output_shape: Shape::pair(Shape::Scalar(JType::Double), Shape::Scalar(JType::Double)),
        }
    };
    let recs: Vec<HostValue> = (1..=6)
        .map(|i| HostValue::pair(HostValue::F(i as f64), HostValue::F(-2.0 * i as f64)))
        .collect();
    assert_equivalent(&spec, &recs);
}

#[test]
fn math_intrinsics_map() {
    let spec = map_spec(
        "sigmoid",
        &[("x", JType::Double)],
        JType::Double,
        Shape::Scalar(JType::Double),
        Shape::Scalar(JType::Double),
        |b, _, _| {
            let x = b.param(0);
            b.ret(JE::const_f(1.0).div(JE::const_f(1.0).add(JE::local(x).neg().exp())));
        },
    );
    assert_equivalent(
        &spec,
        &[HostValue::F(0.0), HostValue::F(2.5), HostValue::F(-7.0)],
    );
}

#[test]
fn bitwise_kernel() {
    let spec = map_spec(
        "mix",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            b.ret(
                JE::local(x)
                    .shl(JE::const_i(3))
                    .bitxor(JE::local(x).ushr(JE::const_i(2)))
                    .bitand(JE::const_i(0xffff)),
            );
        },
    );
    assert_equivalent(
        &spec,
        &[HostValue::I(0), HostValue::I(12345), HostValue::I(-1)],
    );
}

#[test]
fn nested_loops_recovered() {
    // 4x4 "matrix" row sums
    let spec = map_spec(
        "rowsums",
        &[("m", JType::array(JType::Double))],
        JType::Double,
        Shape::Array(JType::Double, 16),
        Shape::Scalar(JType::Double),
        |b, _, _| {
            let m = b.param(0);
            let total = b.local("total", JType::Double);
            let r = b.local("r", JType::Int);
            let c = b.local("c", JType::Int);
            b.set(total, JE::const_f(0.0));
            b.for_loop(r, JE::const_i(0), JE::const_i(4), |b| {
                b.for_loop(c, JE::const_i(0), JE::const_i(4), |b| {
                    b.set(
                        total,
                        JE::local(total).add(
                            JE::local(m).index(JE::local(r).mul(JE::const_i(4)).add(JE::local(c))),
                        ),
                    );
                });
            });
            b.ret(JE::local(total));
        },
    );
    let vals: Vec<f64> = (0..16).map(|i| i as f64 * 0.5).collect();
    assert_equivalent(&spec, &[HostValue::f64_array(&vals)]);
    let g = compile_kernel(&spec).unwrap();
    // task loop + 2 recovered loops
    assert_eq!(g.cfunc.loop_ids().len(), 3);
}

#[test]
fn early_return_is_unsupported() {
    // if (x < 0) return 0; return x;  — non-structured, rejected per §3.3
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
    let x = b.param(0);
    b.if_then(JE::local(x).lt(JE::const_i(0)), |b| {
        b.ret(JE::const_i(0));
    });
    b.ret(JE::local(x));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "early".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Scalar(JType::Int),
        output_shape: Shape::Scalar(JType::Int),
    };
    assert!(matches!(
        compile_kernel(&spec),
        Err(S2faError::Unsupported(_))
    ));
}

#[test]
fn shape_mismatch_is_rejected() {
    // lambda returns Int but the declared output shape is a pair
    let spec = map_spec(
        "bad",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::pair(Shape::Scalar(JType::Int), Shape::Scalar(JType::Int)),
        |b, _, _| {
            let x = b.param(0);
            b.ret(JE::local(x));
        },
    );
    assert!(matches!(compile_kernel(&spec), Err(S2faError::Shape(_))));
}

#[test]
fn long_arithmetic_kernel() {
    let spec = map_spec(
        "lmul",
        &[("x", JType::Long)],
        JType::Long,
        Shape::Scalar(JType::Long),
        Shape::Scalar(JType::Long),
        |b, _, _| {
            let x = b.param(0);
            b.ret(
                JE::local(x)
                    .mul(JE::ConstI(1_000_003, NumKind::Long))
                    .add(JE::ConstI(17, NumKind::Long)),
            );
        },
    );
    assert_equivalent(
        &spec,
        &[
            HostValue::I(0),
            HostValue::I(1 << 40),
            HostValue::I(-123_456_789),
        ],
    );
}

#[test]
fn static_helper_is_inlined() {
    // def clamp(v: Int): Int = select(v < 0, 0, v)
    // def call(x: Int): Int = clamp(x - 5) + clamp(x + 5)
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut hb = FnBuilder::new("clamp", &[("v", JType::Int)], Some(JType::Int));
    let v = hb.param(0);
    hb.ret(JE::select(
        JE::local(v).lt(JE::const_i(0)),
        JE::const_i(0),
        JE::local(v),
    ));
    let clamp = hb.finish(&mut classes, &mut methods).unwrap();

    let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
    let x = b.param(0);
    b.ret(
        JE::InvokeStatic(clamp, vec![JE::local(x).sub(JE::const_i(5))]).add(JE::InvokeStatic(
            clamp,
            vec![JE::local(x).add(JE::const_i(5))],
        )),
    );
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "clamp2".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Scalar(JType::Int),
        output_shape: Shape::Scalar(JType::Int),
    };
    assert_equivalent(
        &spec,
        &[
            HostValue::I(-100),
            HostValue::I(0),
            HostValue::I(3),
            HostValue::I(42),
        ],
    );
    // the helper body was inlined twice — no call remains
    let src = printer::to_c(&compile_kernel(&spec).unwrap().cfunc);
    assert!(!src.contains("clamp("));
}

#[test]
fn nested_tuple_input_flattens_fully() {
    // ((a, b), c) -> a*b + c
    let mut classes = ClassTable::new();
    let inner = classes.define_tuple2(JType::Int, JType::Int);
    let outer = classes.define_tuple2(JType::Ref(inner), JType::Int);
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(outer))], Some(JType::Int));
    let input = b.param(0);
    b.ret(
        JE::local(input)
            .field("_1")
            .field("_1")
            .mul(JE::local(input).field("_1").field("_2"))
            .add(JE::local(input).field("_2")),
    );
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "nested".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(
            Shape::pair(Shape::Scalar(JType::Int), Shape::Scalar(JType::Int)),
            Shape::Scalar(JType::Int),
        ),
        output_shape: Shape::Scalar(JType::Int),
    };
    assert_equivalent(
        &spec,
        &[
            HostValue::pair(
                HostValue::pair(HostValue::I(3), HostValue::I(4)),
                HostValue::I(5),
            ),
            HostValue::pair(
                HostValue::pair(HostValue::I(-7), HostValue::I(2)),
                HostValue::I(100),
            ),
        ],
    );
    // three interface input buffers: in_1, in_2, in_3
    let g = compile_kernel(&spec).unwrap();
    assert_eq!(g.input_layout.slots.len(), 3);
}

#[test]
fn reduce_with_array_accumulator() {
    // elementwise vector sum over ([I;4])
    let mut classes = ClassTable::new();
    let iarr = JType::array(JType::Int);
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new(
        "call",
        &[("a", iarr.clone()), ("b", iarr.clone())],
        Some(iarr.clone()),
    );
    let pa = b.param(0);
    let pb = b.param(1);
    let out = b.local("out", iarr);
    let j = b.local("j", JType::Int);
    b.set(out, JE::NewArray(JType::Int, 4));
    b.for_loop(j, JE::const_i(0), JE::const_i(4), |b| {
        b.set_index(
            JE::local(out),
            JE::local(j),
            JE::local(pa)
                .index(JE::local(j))
                .add(JE::local(pb).index(JE::local(j))),
        );
    });
    b.ret(JE::local(out));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "vsum".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Reduce,
        input_shape: Shape::Array(JType::Int, 4),
        output_shape: Shape::Array(JType::Int, 4),
    };
    let recs: Vec<HostValue> = (0..5)
        .map(|i| HostValue::i64_array(&[i, 2 * i, -i, 10 + i]))
        .collect();
    assert_equivalent(&spec, &recs);
}

#[test]
fn non_counted_while_is_unsupported() {
    // while (x > 1) x = x / 2  — data-dependent trip count, rejected
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("x0", JType::Int)], Some(JType::Int));
    let x0 = b.param(0);
    let x = b.local("x", JType::Int);
    b.set(x, JE::local(x0));
    b.while_loop(JE::local(x).gt(JE::const_i(1)), |b| {
        b.set(x, JE::local(x).div(JE::const_i(2)));
    });
    b.ret(JE::local(x));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "halver".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Scalar(JType::Int),
        output_shape: Shape::Scalar(JType::Int),
    };
    let err = compile_kernel(&spec).unwrap_err();
    assert!(matches!(err, S2faError::Unsupported(_)), "{err}");
}

#[test]
fn conditional_array_rebinding_is_unsupported() {
    // if (x < 0) arr = new int[4];  — reference reassignment under a branch
    let mut classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("x", JType::Int)], Some(JType::Int));
    let x = b.param(0);
    let arr = b.local("arr", JType::array(JType::Int));
    b.set(arr, JE::NewArray(JType::Int, 4));
    b.if_then(JE::local(x).lt(JE::const_i(0)), |b| {
        b.set(arr, JE::NewArray(JType::Int, 4));
    });
    b.ret(JE::local(arr).index(JE::const_i(0)));
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "rebind".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::Scalar(JType::Int),
        output_shape: Shape::Scalar(JType::Int),
    };
    let err = compile_kernel(&spec).unwrap_err();
    assert!(matches!(err, S2faError::Unsupported(_)), "{err}");
}

#[test]
fn broadcast_input_binds_without_task_offset() {
    // (x, broadcast w[4]) -> x * w[0]
    let mut classes = ClassTable::new();
    let pair = classes.define_tuple2(JType::Int, JType::array(JType::Int));
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(pair))], Some(JType::Int));
    let input = b.param(0);
    b.ret(
        JE::local(input)
            .field("_1")
            .mul(JE::local(input).field("_2").index(JE::const_i(0))),
    );
    let entry = b.finish(&mut classes, &mut methods).unwrap();
    let spec = KernelSpec {
        name: "bcast".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(
            Shape::Scalar(JType::Int),
            Shape::broadcast(Shape::Array(JType::Int, 4)),
        ),
        output_shape: Shape::Scalar(JType::Int),
    };
    let w = HostValue::i64_array(&[7, 0, 0, 0]);
    assert_equivalent(
        &spec,
        &[
            HostValue::pair(HostValue::I(3), w.clone()),
            HostValue::pair(HostValue::I(-2), w),
        ],
    );
    // the broadcast buffer is indexed without `i * len`
    let src = printer::to_c(&compile_kernel(&spec).unwrap().cfunc);
    assert!(src.contains("in_2[0]"), "{src}");
    assert!(!src.contains("(i * 4)"), "{src}");
}

#[test]
fn deeply_nested_control_flow() {
    // for i { if (a[i] > 0) { for j { if (j < i) acc += a[j] } else-less } else { acc -= 1 } }
    let spec = map_spec(
        "nesty",
        &[("a", JType::array(JType::Int))],
        JType::Int,
        Shape::Array(JType::Int, 6),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let a = b.param(0);
            let acc = b.local("acc", JType::Int);
            let i = b.local("i", JType::Int);
            let j = b.local("j", JType::Int);
            b.set(acc, JE::const_i(0));
            b.for_loop(i, JE::const_i(0), JE::const_i(6), |b| {
                b.if_else(
                    JE::local(a).index(JE::local(i)).gt(JE::const_i(0)),
                    |b| {
                        b.for_loop(j, JE::const_i(0), JE::const_i(6), |b| {
                            b.if_then(JE::local(j).lt(JE::local(i)), |b| {
                                b.set(acc, JE::local(acc).add(JE::local(a).index(JE::local(j))));
                            });
                        });
                    },
                    |b| {
                        b.set(acc, JE::local(acc).sub(JE::const_i(1)));
                    },
                );
            });
            b.ret(JE::local(acc));
        },
    );
    assert_equivalent(
        &spec,
        &[
            HostValue::i64_array(&[1, -2, 3, 0, 5, -6]),
            HostValue::i64_array(&[0, 0, 0, 0, 0, 0]),
            HostValue::i64_array(&[9, 9, 9, 9, 9, 9]),
        ],
    );
}

#[test]
fn empty_branches_are_tolerated() {
    // if (x > 0) {} — a branch with an empty body
    let spec = map_spec(
        "emptyb",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            b.if_then(JE::local(x).gt(JE::const_i(0)), |_| {});
            b.ret(JE::local(x));
        },
    );
    assert_equivalent(&spec, &[HostValue::I(5), HostValue::I(-5)]);
}

#[test]
fn single_iteration_loop() {
    let spec = map_spec(
        "one",
        &[("x", JType::Int)],
        JType::Int,
        Shape::Scalar(JType::Int),
        Shape::Scalar(JType::Int),
        |b, _, _| {
            let x = b.param(0);
            let s = b.local("s", JType::Int);
            let i = b.local("i", JType::Int);
            b.set(s, JE::const_i(0));
            b.for_loop(i, JE::const_i(0), JE::const_i(1), |b| {
                b.set(s, JE::local(x).mul(JE::const_i(7)));
            });
            b.ret(JE::local(s));
        },
    );
    assert_equivalent(&spec, &[HostValue::I(6), HostValue::I(-1)]);
}
