//! The structural bytecode decompiler.
//!
//! Recovers structured HLS C from verified stack bytecode by symbolic
//! execution over pc ranges. The control-flow shapes it accepts are exactly
//! the canonical patterns `scalac`/`javac` emit (condition-inverted `if`s,
//! top-tested loops with a single back-edge) — anything else is rejected
//! with [`S2faError::Unsupported`], the reproduction of the paper's §3.3
//! coding-style restrictions.
//!
//! Responsibilities:
//!
//! * **class flattening** — objects are symbolic records; `getfield`
//!   reads a record component, `putfield` writes one, `new` builds a
//!   zeroed record, so no object survives into C;
//! * **method inlining** — `invokevirtual`/`invokestatic` recursively
//!   decompile the callee with argument symbols bound to its locals;
//! * **allocation lowering** — `newarray` (constant length, §3.3) becomes
//!   a C array declaration;
//! * **loop recovery** — `while` shapes are converted to the canonical
//!   counted `for` of the HLS IR.

use super::sym::{ArrRef, Sym};
use crate::S2faError;
use s2fa_hlsir::{CBinOp, CIntrinsic, CNumKind, CType, Expr, LValue, LoopId, Stmt};
use s2fa_sjvm::{Cond, JType, KernelSpec, MathFn, Method, MethodId, NumKind, Op};

/// Converts a JVM type to its C type.
pub(crate) fn ctype_of(t: &JType) -> CType {
    match t {
        JType::Boolean | JType::Byte => CType::Int(8),
        JType::Char => CType::UInt(8),
        JType::Short => CType::Int(16),
        JType::Int => CType::Int(32),
        JType::Long => CType::Int(64),
        JType::Float => CType::Float,
        JType::Double => CType::Double,
        JType::Ref(_) | JType::Array(_) => CType::Int(64),
    }
}

/// Converts a JVM type to its evaluation kind.
pub(crate) fn ckind_of(t: &JType) -> CNumKind {
    ctype_of(t).num_kind()
}

fn nk(k: NumKind) -> CNumKind {
    match k {
        NumKind::Int => CNumKind::I32,
        NumKind::Long => CNumKind::I64,
        NumKind::Float => CNumKind::F32,
        NumKind::Double => CNumKind::F64,
    }
}

fn cond_op(c: Cond) -> CBinOp {
    match c {
        Cond::Eq => CBinOp::Eq,
        Cond::Ne => CBinOp::Ne,
        Cond::Lt => CBinOp::Lt,
        Cond::Le => CBinOp::Le,
        Cond::Gt => CBinOp::Gt,
        Cond::Ge => CBinOp::Ge,
    }
}

fn math_intrinsic(f: MathFn) -> CIntrinsic {
    match f {
        MathFn::Exp => CIntrinsic::Exp,
        MathFn::Log => CIntrinsic::Log,
        MathFn::Sqrt => CIntrinsic::Sqrt,
        MathFn::Abs => CIntrinsic::Abs,
        MathFn::Min => CIntrinsic::Min,
        MathFn::Max => CIntrinsic::Max,
    }
}

/// How an executed pc range terminated.
pub(crate) enum Flow {
    /// Fell through the end of the range.
    Fallthrough,
    /// Executed a `return` (with the returned symbol, if non-void).
    Returned(Option<Sym>),
}

/// One method activation during symbolic execution.
pub(crate) struct Frame<'m> {
    method: &'m Method,
    /// Unique prefix for this frame's materialized locals.
    prefix: String,
    locals: Vec<Option<Sym>>,
    /// Materialized C variable name per local slot (created on first
    /// scalar store).
    cnames: Vec<Option<String>>,
    /// Control depth at which each slot was last (re)bound symbolically.
    def_depth: Vec<u32>,
    stack: Vec<Sym>,
}

impl<'m> Frame<'m> {
    pub fn new(method: &'m Method, prefix: String, args: Vec<Sym>) -> Frame<'m> {
        let n = method.n_locals as usize;
        let mut locals: Vec<Option<Sym>> = vec![None; n];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = Some(a);
        }
        Frame {
            method,
            prefix,
            locals,
            cnames: vec![None; n],
            def_depth: vec![0; n],
            stack: Vec::new(),
        }
    }
}

/// The decompiler: emits statements while symbolically executing frames.
pub(crate) struct Decomp<'s> {
    pub spec: &'s KernelSpec,
    /// Hoisted scalar declarations (function top).
    pub hoisted: Vec<Stmt>,
    /// Fresh-name counter.
    names: u32,
    /// Fresh loop-id counter (0 is reserved for the template task loop).
    loops: u32,
    /// Current structured-control nesting depth.
    depth: u32,
    /// Inlining depth guard.
    inline_depth: u32,
}

const MAX_INLINE_DEPTH: u32 = 24;

impl<'s> Decomp<'s> {
    pub fn new(spec: &'s KernelSpec) -> Self {
        Decomp {
            spec,
            hoisted: Vec::new(),
            names: 0,
            loops: 1,
            depth: 0,
            inline_depth: 0,
        }
    }

    pub fn fresh_name(&mut self, hint: &str) -> String {
        self.names += 1;
        let hint: String = hint
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        format!("{hint}_{}", self.names)
    }

    pub fn fresh_loop(&mut self) -> LoopId {
        let id = LoopId(self.loops);
        self.loops += 1;
        id
    }

    fn unsupported(msg: impl Into<String>) -> S2faError {
        S2faError::Unsupported(msg.into())
    }

    /// Decompiles a full method with bound arguments, emitting statements
    /// into `out`; returns the returned symbol for non-void methods.
    pub fn decompile_method(
        &mut self,
        method_id: MethodId,
        args: Vec<Sym>,
        out: &mut Vec<Stmt>,
    ) -> Result<Option<Sym>, S2faError> {
        if self.inline_depth >= MAX_INLINE_DEPTH {
            return Err(Self::unsupported(
                "method inlining exceeded the depth limit (recursion is not supported)",
            ));
        }
        self.inline_depth += 1;
        let method = self.spec.methods.get(method_id);
        let prefix = if self.inline_depth == 1 {
            String::new()
        } else {
            format!("m{}_", method_id.0)
        };
        let mut frame = Frame::new(method, prefix, args);
        let flow = self.exec_range(&mut frame, 0, method.code.len(), out)?;
        self.inline_depth -= 1;
        match flow {
            Flow::Returned(v) => Ok(v),
            Flow::Fallthrough => Err(Self::unsupported(
                "method body fell through without a return",
            )),
        }
    }

    /// Resolves a symbol through stack/local aliases to a concrete value
    /// (clones the referent).
    fn resolve(&self, frame: &Frame<'_>, s: &Sym) -> Result<Sym, S2faError> {
        Ok(match s {
            Sym::StackRef(i) => frame
                .stack
                .get(*i)
                .cloned()
                .ok_or_else(|| Self::unsupported("dangling stack alias"))?,
            Sym::LocalRef(n) => frame.locals[*n as usize]
                .clone()
                .ok_or_else(|| Self::unsupported("read of unbound local"))?,
            other => other.clone(),
        })
    }

    fn pop(frame: &mut Frame<'_>) -> Result<Sym, S2faError> {
        frame
            .stack
            .pop()
            .ok_or_else(|| Self::unsupported("operand stack underflow in decompiler"))
    }

    fn pop_scalar(&self, frame: &mut Frame<'_>) -> Result<(Expr, CNumKind), S2faError> {
        let s = Self::pop(frame)?;
        let s = self.resolve(frame, &s)?;
        match s {
            Sym::Scalar(e, k) => Ok((e, k)),
            other => Err(Self::unsupported(format!(
                "expected a primitive value, found {other:?}"
            ))),
        }
    }

    fn pop_arr(&self, frame: &mut Frame<'_>) -> Result<ArrRef, S2faError> {
        let s = Self::pop(frame)?;
        let s = self.resolve(frame, &s)?;
        match s {
            Sym::Arr(a) => Ok(a),
            other => Err(Self::unsupported(format!(
                "expected an array reference, found {other:?}"
            ))),
        }
    }

    /// Symbolically executes `code[pc..end)`, emitting statements into
    /// `out`.
    fn exec_range(
        &mut self,
        frame: &mut Frame<'_>,
        mut pc: usize,
        end: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<Flow, S2faError> {
        let code = frame.method.code.clone();
        let mut stmt_start = pc;
        while pc < end {
            if frame.stack.is_empty() {
                stmt_start = pc;
            }
            match &code[pc] {
                Op::ConstI(v) => frame
                    .stack
                    .push(Sym::Scalar(Expr::ConstI(*v), CNumKind::I32)),
                Op::ConstF(v) => frame
                    .stack
                    .push(Sym::Scalar(Expr::ConstF(*v), CNumKind::F64)),
                Op::ConstNull => frame.stack.push(Sym::Null),
                Op::Load(n) => {
                    let slot = *n as usize;
                    let v = frame.locals[slot]
                        .as_ref()
                        .ok_or_else(|| Self::unsupported(format!("load of unbound local {n}")))?;
                    let pushed = match v {
                        Sym::Obj { .. } => Sym::LocalRef(*n),
                        other => other.clone(),
                    };
                    frame.stack.push(pushed);
                }
                Op::Store(n) => {
                    let slot = *n as usize;
                    let v = Self::pop(frame)?;
                    let v = self.resolve(frame, &v)?;
                    match v {
                        Sym::Scalar(e, _) => {
                            let ty = frame
                                .method
                                .local_types
                                .get(slot)
                                .cloned()
                                .unwrap_or(JType::Int);
                            let name = match &frame.cnames[slot] {
                                Some(n) => n.clone(),
                                None => {
                                    let base = frame
                                        .method
                                        .local_names
                                        .get(slot)
                                        .cloned()
                                        .unwrap_or_else(|| format!("l{slot}"));
                                    let name = self.fresh_name(&format!("{}{base}", frame.prefix));
                                    self.hoisted.push(Stmt::Decl {
                                        name: name.clone(),
                                        ty: ctype_of(&ty),
                                        init: None,
                                    });
                                    frame.cnames[slot] = Some(name.clone());
                                    name
                                }
                            };
                            out.push(Stmt::Assign {
                                lhs: LValue::Var(name.clone()),
                                rhs: e,
                            });
                            frame.locals[slot] = Some(Sym::Scalar(Expr::Var(name), ckind_of(&ty)));
                        }
                        sym @ (Sym::Obj { .. } | Sym::Arr(_) | Sym::Null) => {
                            if frame.locals[slot].is_some() && self.depth > frame.def_depth[slot] {
                                return Err(Self::unsupported(
                                    "conditional reassignment of an object/array local",
                                ));
                            }
                            frame.def_depth[slot] = self.depth;
                            frame.locals[slot] = Some(sym);
                        }
                        Sym::StackRef(_) | Sym::LocalRef(_) => unreachable!("resolved above"),
                    }
                }
                Op::NewArray { elem, len } => {
                    let name = self.fresh_name("arr");
                    let ctype = ctype_of(elem);
                    out.push(Stmt::DeclArr {
                        name: name.clone(),
                        ty: ctype,
                        len: *len,
                    });
                    frame.stack.push(Sym::Arr(ArrRef {
                        name,
                        elem: ctype.num_kind(),
                        len: *len,
                        base: None,
                    }));
                }
                Op::ALoad => {
                    let (idx, _) = self.pop_scalar(frame)?;
                    let arr = self.pop_arr(frame)?;
                    let e = Expr::Index(arr.name.clone(), Box::new(arr.index_expr(idx)));
                    frame.stack.push(Sym::Scalar(e, arr.elem));
                }
                Op::AStore => {
                    let (val, _) = self.pop_scalar(frame)?;
                    let (idx, _) = self.pop_scalar(frame)?;
                    let arr = self.pop_arr(frame)?;
                    out.push(Stmt::Assign {
                        lhs: LValue::Index(arr.name.clone(), Box::new(arr.index_expr(idx))),
                        rhs: val,
                    });
                }
                Op::ArrayLen => {
                    let arr = self.pop_arr(frame)?;
                    frame
                        .stack
                        .push(Sym::Scalar(Expr::ConstI(arr.len as i64), CNumKind::I32));
                }
                Op::New(class) => {
                    let def = self.spec.classes.get(*class);
                    let fields = def
                        .fields
                        .iter()
                        .map(|f| match &f.ty {
                            JType::Ref(_) | JType::Array(_) => Sym::Null,
                            t => Sym::zero(ckind_of(t)),
                        })
                        .collect();
                    frame.stack.push(Sym::Obj { fields });
                }
                Op::GetField(_, idx) => {
                    let r = Self::pop(frame)?;
                    let obj = self.resolve(frame, &r)?;
                    match obj {
                        Sym::Obj { fields, .. } => {
                            let f = fields.get(*idx as usize).cloned().ok_or_else(|| {
                                Self::unsupported(format!("field index {idx} out of range"))
                            })?;
                            frame.stack.push(f);
                        }
                        other => {
                            return Err(Self::unsupported(format!(
                                "getfield on non-object {other:?}"
                            )))
                        }
                    }
                }
                Op::PutField(_, idx) => {
                    let val = Self::pop(frame)?;
                    let val = self.resolve(frame, &val)?;
                    let r = Self::pop(frame)?;
                    let idx = *idx as usize;
                    match r {
                        Sym::StackRef(i) => match frame.stack.get_mut(i) {
                            Some(Sym::Obj { fields, .. }) if idx < fields.len() => {
                                fields[idx] = val;
                            }
                            _ => {
                                return Err(Self::unsupported(
                                    "putfield alias does not refer to an object",
                                ))
                            }
                        },
                        Sym::LocalRef(n) => match frame.locals.get_mut(n as usize) {
                            Some(Some(Sym::Obj { fields, .. })) if idx < fields.len() => {
                                fields[idx] = val;
                            }
                            _ => {
                                return Err(Self::unsupported(
                                    "putfield local does not hold an object",
                                ))
                            }
                        },
                        // A write to an anonymous temporary would be lost.
                        other => {
                            return Err(Self::unsupported(format!(
                                "putfield on a value without identity: {other:?}"
                            )))
                        }
                    }
                }
                Op::InvokeVirtual { method, .. } | Op::InvokeStatic { method } => {
                    let callee = self.spec.methods.get(*method);
                    let n_args = callee.params.len();
                    if frame.stack.len() < n_args {
                        return Err(Self::unsupported("call with too few operands"));
                    }
                    let raw: Vec<Sym> = frame.stack.split_off(frame.stack.len() - n_args);
                    let mut args = Vec::with_capacity(n_args);
                    for a in raw {
                        args.push(self.resolve(frame, &a)?);
                    }
                    let ret = self.decompile_method(*method, args, out)?;
                    if callee.ret.is_some() {
                        frame.stack.push(ret.ok_or_else(|| {
                            Self::unsupported("inlined callee returned no value")
                        })?);
                    }
                }
                Op::Add(k) => self.binop(frame, CBinOp::Add, nk(*k))?,
                Op::Sub(k) => self.binop(frame, CBinOp::Sub, nk(*k))?,
                Op::Mul(k) => self.binop(frame, CBinOp::Mul, nk(*k))?,
                Op::Div(k) => self.binop(frame, CBinOp::Div, nk(*k))?,
                Op::Rem(k) => self.binop(frame, CBinOp::Rem, nk(*k))?,
                Op::Neg(k) => {
                    let (e, _) = self.pop_scalar(frame)?;
                    frame
                        .stack
                        .push(Sym::Scalar(Expr::Neg(nk(*k), Box::new(e)), nk(*k)));
                }
                Op::Shl => self.binop(frame, CBinOp::Shl, CNumKind::I64)?,
                Op::Shr => self.binop(frame, CBinOp::Shr, CNumKind::I64)?,
                Op::UShr => self.binop(frame, CBinOp::UShr, CNumKind::I64)?,
                Op::And => self.binop(frame, CBinOp::And, CNumKind::I64)?,
                Op::Or => self.binop(frame, CBinOp::Or, CNumKind::I64)?,
                Op::Xor => self.binop(frame, CBinOp::Xor, CNumKind::I64)?,
                Op::Math(f, k) => {
                    let arity = f.arity();
                    let mut args = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        let (e, _) = self.pop_scalar(frame)?;
                        args.push(e);
                    }
                    args.reverse();
                    let kind = nk(*k);
                    let rk = match f {
                        MathFn::Exp | MathFn::Log | MathFn::Sqrt => CNumKind::F64,
                        _ => kind,
                    };
                    frame
                        .stack
                        .push(Sym::Scalar(Expr::Call(math_intrinsic(*f), kind, args), rk));
                }
                Op::Cast { from, to } => {
                    let (e, _) = self.pop_scalar(frame)?;
                    frame.stack.push(Sym::Scalar(
                        Expr::Cast(nk(*from), nk(*to), Box::new(e)),
                        nk(*to),
                    ));
                }
                Op::Cmp(k) => {
                    // signum: (a > b) - (a < b)
                    let (b, _) = self.pop_scalar(frame)?;
                    let (a, _) = self.pop_scalar(frame)?;
                    let gt = Expr::bin(CBinOp::Gt, nk(*k), a.clone(), b.clone());
                    let lt = Expr::bin(CBinOp::Lt, nk(*k), a, b);
                    frame.stack.push(Sym::Scalar(
                        Expr::bin(CBinOp::Sub, CNumKind::I32, gt, lt),
                        CNumKind::I32,
                    ));
                }
                Op::IfCmp { .. } | Op::IfZero { .. } => {
                    let next = self.branch(frame, &code, pc, stmt_start, out)?;
                    pc = next;
                    continue;
                }
                Op::Goto(_) => {
                    return Err(Self::unsupported(format!(
                        "unstructured goto at pc {pc} (non-canonical control flow)"
                    )));
                }
                Op::Return => {
                    let v = if frame.method.ret.is_some() {
                        let s = Self::pop(frame)?;
                        Some(self.resolve(frame, &s)?)
                    } else {
                        None
                    };
                    return Ok(Flow::Returned(v));
                }
                Op::Pop => {
                    Self::pop(frame)?;
                }
                Op::Dup => {
                    let top = frame
                        .stack
                        .last()
                        .cloned()
                        .ok_or_else(|| Self::unsupported("dup on empty stack"))?;
                    let pushed = match top {
                        Sym::Obj { .. } => Sym::StackRef(frame.stack.len() - 1),
                        other => other,
                    };
                    frame.stack.push(pushed);
                }
            }
            pc += 1;
        }
        Ok(Flow::Fallthrough)
    }

    fn binop(&self, frame: &mut Frame<'_>, op: CBinOp, kind: CNumKind) -> Result<(), S2faError> {
        let (b, _) = self.pop_scalar(frame)?;
        let (a, _) = self.pop_scalar(frame)?;
        frame
            .stack
            .push(Sym::Scalar(Expr::bin(op, kind, a, b), kind));
        Ok(())
    }

    /// Handles a conditional branch: boolean-materialization diamond,
    /// `while` loop head, or `if`/`if-else` statement. Returns the pc to
    /// resume at.
    fn branch(
        &mut self,
        frame: &mut Frame<'_>,
        code: &[Op],
        pc: usize,
        stmt_start: usize,
        out: &mut Vec<Stmt>,
    ) -> Result<usize, S2faError> {
        let (branch_cond, kind, target) = match &code[pc] {
            Op::IfCmp { kind, cond, target } => (*cond, nk(*kind), *target as usize),
            Op::IfZero { cond, target } => (*cond, CNumKind::I32, *target as usize),
            _ => unreachable!("branch called on non-branch"),
        };
        if target <= pc {
            return Err(Self::unsupported("backward conditional branch"));
        }

        // Peephole: boolean materialization diamond
        //   ifcmp(cond) -> T; const 0; goto E; T: const 1; E:
        if target == pc + 3
            && matches!(code.get(pc + 1), Some(Op::ConstI(0)))
            && matches!(code.get(pc + 2), Some(Op::Goto(e)) if *e as usize == pc + 4)
            && matches!(code.get(pc + 3), Some(Op::ConstI(1)))
        {
            let cond_expr = self.take_cond(frame, &code[pc], branch_cond, kind, false)?;
            frame.stack.push(Sym::Scalar(cond_expr, CNumKind::I32));
            return Ok(pc + 4);
        }

        // While shape: the instruction before the branch target is a
        // back-edge to the start of the condition evaluation.
        if target >= 1 {
            if let Some(Op::Goto(h)) = code.get(target - 1) {
                if (*h as usize) == stmt_start && (*h as usize) <= pc {
                    // loop continue-condition = negation of the exit branch
                    let cond_expr = self.take_cond(frame, &code[pc], branch_cond, kind, true)?;
                    if !frame.stack.is_empty() {
                        return Err(Self::unsupported(
                            "loop condition with a non-empty operand stack",
                        ));
                    }
                    let mut body = Vec::new();
                    self.depth += 1;
                    let flow = self.exec_range(frame, pc + 1, target - 1, &mut body)?;
                    self.depth -= 1;
                    if !matches!(flow, Flow::Fallthrough) {
                        return Err(Self::unsupported("return inside a loop body"));
                    }
                    let stmt = self.while_to_for(cond_expr, body, out)?;
                    out.push(stmt);
                    return Ok(target);
                }
            }
        }

        // If / if-else statement.
        let cond_expr = self.take_cond(frame, &code[pc], branch_cond, kind, true)?;
        let stack_before = frame.stack.len();
        // else present iff the then-range ends with a forward goto
        let has_else = matches!(code.get(target.wrapping_sub(1)),
            Some(Op::Goto(e)) if (*e as usize) > target && target - 1 > pc);
        self.depth += 1;
        let result = if has_else {
            let join = match code[target - 1] {
                Op::Goto(e) => e as usize,
                _ => unreachable!(),
            };
            let mut then_b = Vec::new();
            let then_flow = self.exec_range(frame, pc + 1, target - 1, &mut then_b)?;
            // Save then-branch stack, rewind to the pre-branch state for
            // the else branch, then reconcile.
            let then_stack: Vec<Sym> = frame.stack.split_off(stack_before);
            let mut else_b = Vec::new();
            let else_flow = self.exec_range(frame, target, join, &mut else_b)?;
            let else_stack: Vec<Sym> = frame.stack.split_off(stack_before);
            if !matches!(then_flow, Flow::Fallthrough) || !matches!(else_flow, Flow::Fallthrough) {
                return Err(Self::unsupported("return inside a conditional branch"));
            }
            if !then_stack.is_empty() || !else_stack.is_empty() {
                return Err(Self::unsupported(
                    "conditional branches left values on the operand stack",
                ));
            }
            out.push(Stmt::If {
                cond: cond_expr,
                then: then_b,
                els: else_b,
            });
            join
        } else {
            let mut then_b = Vec::new();
            let then_flow = self.exec_range(frame, pc + 1, target, &mut then_b)?;
            if !matches!(then_flow, Flow::Fallthrough) {
                return Err(Self::unsupported("return inside a conditional branch"));
            }
            if frame.stack.len() != stack_before {
                return Err(Self::unsupported(
                    "conditional branch left values on the operand stack",
                ));
            }
            out.push(Stmt::If {
                cond: cond_expr,
                then: then_b,
                els: Vec::new(),
            });
            target
        };
        self.depth -= 1;
        Ok(result)
    }

    /// Pops the branch operands and builds the condition expression.
    /// `negate` inverts the branch condition (statement conditions are the
    /// negation of the "jump away" condition).
    fn take_cond(
        &mut self,
        frame: &mut Frame<'_>,
        op: &Op,
        cond: Cond,
        kind: CNumKind,
        negate: bool,
    ) -> Result<Expr, S2faError> {
        let c = if negate { cond.negate() } else { cond };
        match op {
            Op::IfCmp { .. } => {
                let (b, _) = self.pop_scalar(frame)?;
                let (a, _) = self.pop_scalar(frame)?;
                Ok(Expr::bin(cond_op(c), kind, a, b))
            }
            Op::IfZero { .. } => {
                let (v, vk) = self.pop_scalar(frame)?;
                Ok(Expr::bin(cond_op(c), vk, v, Expr::ConstI(0)))
            }
            _ => unreachable!(),
        }
    }

    /// Converts a recovered `while` into the canonical counted `for`.
    ///
    /// Accepts exactly the shape `scalac` desugars counted loops into:
    /// condition `v < bound`, final body statement `v = v + 1`, preceded
    /// in the emitted output by `v = 0`.
    fn while_to_for(
        &mut self,
        cond: Expr,
        mut body: Vec<Stmt>,
        out: &mut Vec<Stmt>,
    ) -> Result<Stmt, S2faError> {
        let Expr::Bin(CBinOp::Lt, _, lhs, bound) = &cond else {
            return Err(Self::unsupported(
                "loop condition is not a `var < bound` comparison",
            ));
        };
        let Expr::Var(v) = lhs.as_ref() else {
            return Err(Self::unsupported("loop condition lhs is not a variable"));
        };
        // final statement must be v = v + 1
        let is_incr = matches!(body.last(), Some(Stmt::Assign { lhs: LValue::Var(n), rhs })
            if n == v && matches!(rhs,
                Expr::Bin(CBinOp::Add, _, a, b)
                    if matches!(a.as_ref(), Expr::Var(m) if m == v)
                        && matches!(b.as_ref(), Expr::ConstI(1))));
        if !is_incr {
            return Err(Self::unsupported(
                "loop does not end with a unit increment of its counter",
            ));
        }
        body.pop();
        // preceding emitted statement must be v = 0
        let is_init = matches!(out.last(), Some(Stmt::Assign { lhs: LValue::Var(n), rhs })
            if n == v && matches!(rhs, Expr::ConstI(0)));
        if !is_init {
            return Err(Self::unsupported(
                "loop counter is not initialized to zero immediately before the loop",
            ));
        }
        out.pop();
        let trip_count = match bound.as_ref() {
            Expr::ConstI(b) if *b >= 0 => Some(*b as u32),
            _ => None,
        };
        Ok(Stmt::For {
            id: self.fresh_loop(),
            var: v.clone(),
            bound: bound.as_ref().clone(),
            trip_count,
            attrs: Default::default(),
            body,
        })
    }
}
