//! The bytecode-to-C compiler (paper §3.2, "Bytecode-to-C compiler").
//!
//! Translates a verified [`KernelSpec`] into a sequential HLS C kernel
//! function with the paper's Code 3 shape:
//!
//! ```c
//! void kernel(int n, const float *in_1, ..., float *out_1, ...) {
//!   for (int i = 0; i < n; i++) {   // inserted RDD-operator template
//!     ... flattened, inlined lambda body ...
//!   }
//! }
//! ```
//!
//! Object-oriented constructs are compiled away: the input record's
//! primitive leaves become flat interface buffers (`in_1, in_2, ...`,
//! exactly the paper's naming), tuple getters become buffer reads, the
//! output constructor becomes writes to `out_k`, and virtual methods are
//! inlined. The companion [`DataLayout`]s drive the Blaze-side generated
//! (de)serializers.

mod decomp;
mod sym;

use crate::S2faError;
use decomp::{ckind_of, ctype_of, Decomp};
use s2fa_blaze::DataLayout;
use s2fa_hlsir::{
    CBinOp, CFunction, CNumKind, CType, Expr, LValue, LoopAttrs, LoopId, Param, ParamKind, Stmt,
};
use s2fa_sjvm::{KernelSpec, RddOp, Shape};
use sym::{ArrRef, Sym};

/// Result of compiling one kernel: the HLS C function plus the layout
/// configurations for the data-processing method generator.
#[derive(Debug, Clone)]
pub struct GeneratedKernel {
    /// The generated HLS C kernel.
    pub cfunc: CFunction,
    /// Input-side layout (`in_k` buffers).
    pub input_layout: DataLayout,
    /// Output-side layout (`out_k` buffers).
    pub output_layout: DataLayout,
}

/// Compiles a kernel's bytecode into HLS C.
///
/// # Errors
///
/// * [`S2faError::Verify`] if the bytecode does not verify;
/// * [`S2faError::Unsupported`] for constructs outside §3.3's subset
///   (non-canonical control flow, dynamic allocation, early returns, ...);
/// * [`S2faError::Shape`] if the declared shapes contradict the lambda's
///   signature or returned structure.
pub fn compile_kernel(spec: &KernelSpec) -> Result<GeneratedKernel, S2faError> {
    spec.verify()?;
    let entry = spec.methods.get(spec.entry);
    match spec.operator {
        RddOp::Map => {
            if entry.params.len() != 1 {
                return Err(S2faError::Shape(format!(
                    "map lambda must take 1 parameter, takes {}",
                    entry.params.len()
                )));
            }
        }
        RddOp::Reduce => {
            if entry.params.len() != 2 || entry.params[0] != entry.params[1] {
                return Err(S2faError::Shape(
                    "reduce lambda must take two parameters of the same type".into(),
                ));
            }
        }
    }
    if entry.ret.is_none() {
        return Err(S2faError::Shape("kernel lambda must return a value".into()));
    }

    let input_layout = DataLayout::from_shape(&spec.input_shape, "in");
    let output_layout = DataLayout::from_shape(&spec.output_shape, "out");

    // Interface parameters: the batch size plus one flat buffer per leaf.
    let mut params = vec![Param {
        name: "n".into(),
        ty: CType::Int(32),
        kind: ParamKind::ScalarIn,
        elems_per_task: None,
        broadcast: false,
    }];
    for slot in &input_layout.slots {
        params.push(Param {
            name: slot.buffer.clone(),
            ty: ctype_of(&slot.leaf.elem),
            kind: ParamKind::BufIn,
            elems_per_task: Some(slot.leaf.count),
            broadcast: slot.leaf.broadcast,
        });
    }
    for slot in &output_layout.slots {
        params.push(Param {
            name: slot.buffer.clone(),
            ty: ctype_of(&slot.leaf.elem),
            kind: ParamKind::BufOut,
            elems_per_task: Some(slot.leaf.count),
            broadcast: false,
        });
    }

    let mut d = Decomp::new(spec);
    let body = match spec.operator {
        RddOp::Map => map_template(&mut d, spec, &input_layout, &output_layout)?,
        RddOp::Reduce => reduce_template(&mut d, spec, &input_layout, &output_layout)?,
    };
    let mut full = d.hoisted;
    full.extend(body);
    Ok(GeneratedKernel {
        cfunc: CFunction {
            name: format!("{}_kernel", sanitize(&spec.name)),
            params,
            body: full,
        },
        input_layout,
        output_layout,
    })
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect()
}

/// Binds a record shape to its interface buffers, sliced for the task at
/// `task_index` (an index *expression* so reduce can use `i + 1`).
fn bind_shape(
    shape: &Shape,
    layout: &DataLayout,
    slot_cursor: &mut usize,
    task_index: &Expr,
) -> Sym {
    match shape {
        // Broadcast data is not sliced per task: every task reads the
        // single shared copy at offset zero.
        Shape::Bcast(inner) => bind_shape(inner, layout, slot_cursor, &Expr::ConstI(0)),
        Shape::Composite(fields) => {
            let fields = fields
                .iter()
                .map(|f| bind_shape(f, layout, slot_cursor, task_index))
                .collect();
            Sym::Obj { fields }
        }
        Shape::Scalar(t) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            Sym::Scalar(
                Expr::Index(slot.buffer.clone(), Box::new(task_index.clone())),
                ckind_of(t),
            )
        }
        Shape::Array(t, n) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            let base = match task_index {
                Expr::ConstI(0) => None,
                _ => Some(Expr::bin(
                    CBinOp::Mul,
                    CNumKind::I32,
                    task_index.clone(),
                    Expr::ConstI(*n as i64),
                )),
            };
            Sym::Arr(ArrRef {
                name: slot.buffer.clone(),
                elem: ckind_of(t),
                len: *n,
                base,
            })
        }
    }
}

/// Writes the returned symbol's leaves into the output buffers for the
/// task at `task_index`, following the output shape.
fn emit_output(
    d: &mut Decomp<'_>,
    shape: &Shape,
    ret: &Sym,
    layout: &DataLayout,
    slot_cursor: &mut usize,
    task_index: &Expr,
    out: &mut Vec<Stmt>,
) -> Result<(), S2faError> {
    match (shape, ret) {
        (Shape::Composite(fields), Sym::Obj { fields: vals, .. }) => {
            if fields.len() != vals.len() {
                return Err(S2faError::Shape(format!(
                    "output arity mismatch: shape has {} fields, value has {}",
                    fields.len(),
                    vals.len()
                )));
            }
            for (f, v) in fields.iter().zip(vals) {
                emit_output(d, f, v, layout, slot_cursor, task_index, out)?;
            }
            Ok(())
        }
        (Shape::Scalar(_), Sym::Scalar(e, _)) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            out.push(Stmt::Assign {
                lhs: LValue::Index(slot.buffer.clone(), Box::new(task_index.clone())),
                rhs: e.clone(),
            });
            Ok(())
        }
        (Shape::Array(_, n), Sym::Arr(arr)) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            if arr.len < *n {
                return Err(S2faError::Shape(format!(
                    "output array `{}` shorter ({}) than its slot ({n})",
                    arr.name, arr.len
                )));
            }
            // copy loop: out_k[task*n + j] = arr[j]
            let j = d.fresh_name("j");
            let dst_idx = Expr::bin(
                CBinOp::Add,
                CNumKind::I32,
                Expr::bin(
                    CBinOp::Mul,
                    CNumKind::I32,
                    task_index.clone(),
                    Expr::ConstI(*n as i64),
                ),
                Expr::var(j.clone()),
            );
            let src_idx = arr.index_expr(Expr::var(j.clone()));
            out.push(Stmt::For {
                id: d.fresh_loop(),
                var: j,
                bound: Expr::ConstI(*n as i64),
                trip_count: Some(*n),
                attrs: LoopAttrs::default(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index(slot.buffer.clone(), Box::new(dst_idx)),
                    rhs: Expr::Index(arr.name.clone(), Box::new(src_idx)),
                }],
            });
            Ok(())
        }
        (Shape::Bcast(_), _) => Err(S2faError::Shape(
            "broadcast shapes are only valid on the input side".into(),
        )),
        (s, r) => Err(S2faError::Shape(format!(
            "returned value does not match the output shape: expected {s:?}, got {r:?}"
        ))),
    }
}

/// The `map` operator template: one task-loop iteration per record.
fn map_template(
    d: &mut Decomp<'_>,
    spec: &KernelSpec,
    input_layout: &DataLayout,
    output_layout: &DataLayout,
) -> Result<Vec<Stmt>, S2faError> {
    let task = Expr::var("i");
    let mut cursor = 0;
    let input = bind_shape(&spec.input_shape, input_layout, &mut cursor, &task);
    if cursor != input_layout.slots.len() {
        return Err(S2faError::Shape("input shape/layout slot mismatch".into()));
    }
    let mut body = Vec::new();
    let ret = d
        .decompile_method(spec.entry, vec![input], &mut body)?
        .ok_or_else(|| S2faError::Shape("lambda returned no value".into()))?;
    let mut cursor = 0;
    emit_output(
        d,
        &spec.output_shape,
        &ret,
        output_layout,
        &mut cursor,
        &task,
        &mut body,
    )?;
    Ok(vec![Stmt::For {
        id: LoopId(0),
        var: "i".into(),
        bound: Expr::var("n"),
        trip_count: None,
        attrs: LoopAttrs::default(),
        body,
    }])
}

/// The `reduce` operator template: a running accumulator seeded with task
/// 0, combined with tasks `1..n`, written once to the outputs.
fn reduce_template(
    d: &mut Decomp<'_>,
    spec: &KernelSpec,
    input_layout: &DataLayout,
    output_layout: &DataLayout,
) -> Result<Vec<Stmt>, S2faError> {
    if spec.input_shape != spec.output_shape {
        return Err(S2faError::Shape(
            "reduce kernels require identical input and output shapes".into(),
        ));
    }
    let mut stmts = Vec::new();

    // Accumulator storage + initialization from task 0.
    let zero = Expr::ConstI(0);
    let mut cursor = 0;
    let acc = build_acc(
        d,
        &spec.input_shape,
        input_layout,
        &mut cursor,
        &zero,
        &mut stmts,
    );

    // Task loop over elements 1..n (template bound n - 1, index i + 1).
    let elem_index = Expr::bin(CBinOp::Add, CNumKind::I32, Expr::var("i"), Expr::ConstI(1));
    let mut cursor = 0;
    let elem = bind_shape(&spec.input_shape, input_layout, &mut cursor, &elem_index);
    let mut body = Vec::new();
    let ret = d
        .decompile_method(spec.entry, vec![acc.clone(), elem], &mut body)?
        .ok_or_else(|| S2faError::Shape("lambda returned no value".into()))?;
    write_back_acc(d, &spec.input_shape, &acc, &ret, &mut body)?;
    stmts.push(Stmt::For {
        id: LoopId(0),
        var: "i".into(),
        bound: Expr::bin(CBinOp::Sub, CNumKind::I32, Expr::var("n"), Expr::ConstI(1)),
        trip_count: None,
        attrs: LoopAttrs::default(),
        body,
    });

    // Final write of the accumulator to the single output record.
    let mut cursor = 0;
    emit_output(
        d,
        &spec.output_shape,
        &acc,
        output_layout,
        &mut cursor,
        &zero,
        &mut stmts,
    )?;
    Ok(stmts)
}

/// Declares accumulator storage mirroring the record shape, initialized
/// from the record at `task_index`, and returns its symbolic handle.
fn build_acc(
    d: &mut Decomp<'_>,
    shape: &Shape,
    layout: &DataLayout,
    slot_cursor: &mut usize,
    task_index: &Expr,
    out: &mut Vec<Stmt>,
) -> Sym {
    match shape {
        // A broadcast accumulator degenerates to a plain one.
        Shape::Bcast(inner) => build_acc(d, inner, layout, slot_cursor, task_index, out),
        Shape::Composite(fields) => {
            let fields = fields
                .iter()
                .map(|f| build_acc(d, f, layout, slot_cursor, task_index, out))
                .collect();
            Sym::Obj { fields }
        }
        Shape::Scalar(t) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            let name = d.fresh_name("acc");
            d.hoisted.push(Stmt::Decl {
                name: name.clone(),
                ty: ctype_of(t),
                init: None,
            });
            out.push(Stmt::Assign {
                lhs: LValue::Var(name.clone()),
                rhs: Expr::Index(slot.buffer.clone(), Box::new(task_index.clone())),
            });
            Sym::Scalar(Expr::Var(name), ckind_of(t))
        }
        Shape::Array(t, n) => {
            let slot = &layout.slots[*slot_cursor];
            *slot_cursor += 1;
            let name = d.fresh_name("acc");
            out.push(Stmt::DeclArr {
                name: name.clone(),
                ty: ctype_of(t),
                len: *n,
            });
            let j = d.fresh_name("j");
            out.push(Stmt::For {
                id: d.fresh_loop(),
                var: j.clone(),
                bound: Expr::ConstI(*n as i64),
                trip_count: Some(*n),
                attrs: LoopAttrs::default(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index(name.clone(), Box::new(Expr::var(j.clone()))),
                    rhs: Expr::Index(
                        slot.buffer.clone(),
                        Box::new(Expr::bin(
                            CBinOp::Add,
                            CNumKind::I32,
                            Expr::bin(
                                CBinOp::Mul,
                                CNumKind::I32,
                                task_index.clone(),
                                Expr::ConstI(*n as i64),
                            ),
                            Expr::var(j),
                        )),
                    ),
                }],
            });
            Sym::Arr(ArrRef {
                name,
                elem: ckind_of(t),
                len: *n,
                base: None,
            })
        }
    }
}

/// Assigns the lambda's returned leaves back into the accumulator storage
/// (via temporaries for scalars, so self-referencing reducers stay
/// correct).
fn write_back_acc(
    d: &mut Decomp<'_>,
    shape: &Shape,
    acc: &Sym,
    ret: &Sym,
    out: &mut Vec<Stmt>,
) -> Result<(), S2faError> {
    // First pass: compute scalar temps.
    let mut temps: Vec<(String, Expr)> = Vec::new();
    collect_scalar_updates(d, shape, acc, ret, &mut temps)?;
    for (tmp, e) in &temps {
        d.hoisted.push(Stmt::Decl {
            name: tmp.clone(),
            ty: CType::Double,
            init: None,
        });
        out.push(Stmt::Assign {
            lhs: LValue::Var(tmp.clone()),
            rhs: e.clone(),
        });
    }
    // Second pass: commit temps and copy arrays.
    let mut idx = 0;
    commit_updates(d, shape, acc, ret, &mut temps.iter(), &mut idx, out)
}

fn collect_scalar_updates(
    d: &mut Decomp<'_>,
    shape: &Shape,
    acc: &Sym,
    ret: &Sym,
    temps: &mut Vec<(String, Expr)>,
) -> Result<(), S2faError> {
    match (shape, acc, ret) {
        (Shape::Bcast(inner), a, r) => collect_scalar_updates(d, inner, a, r, temps),
        (Shape::Composite(fs), Sym::Obj { fields: a, .. }, Sym::Obj { fields: r, .. }) => {
            if a.len() != r.len() {
                return Err(S2faError::Shape("reduce arity mismatch".into()));
            }
            for ((f, av), rv) in fs.iter().zip(a).zip(r) {
                collect_scalar_updates(d, f, av, rv, temps)?;
            }
            Ok(())
        }
        (Shape::Scalar(_), Sym::Scalar(..), Sym::Scalar(e, _)) => {
            let tmp = d.fresh_name("red");
            temps.push((tmp, e.clone()));
            Ok(())
        }
        (Shape::Array(..), Sym::Arr(_), Sym::Arr(_)) => Ok(()),
        _ => Err(S2faError::Shape(
            "reduce result does not match the accumulator shape".into(),
        )),
    }
}

fn commit_updates<'t>(
    d: &mut Decomp<'_>,
    shape: &Shape,
    acc: &Sym,
    ret: &Sym,
    temps: &mut std::slice::Iter<'t, (String, Expr)>,
    _idx: &mut usize,
    out: &mut Vec<Stmt>,
) -> Result<(), S2faError> {
    match (shape, acc, ret) {
        (Shape::Bcast(inner), a, r) => commit_updates(d, inner, a, r, temps, _idx, out),
        (Shape::Composite(fs), Sym::Obj { fields: a, .. }, Sym::Obj { fields: r, .. }) => {
            for ((f, av), rv) in fs.iter().zip(a).zip(r) {
                commit_updates(d, f, av, rv, temps, _idx, out)?;
            }
            Ok(())
        }
        (Shape::Scalar(_), Sym::Scalar(acc_e, _), Sym::Scalar(..)) => {
            let (tmp, _) = temps.next().expect("temp per scalar leaf");
            let Expr::Var(acc_name) = acc_e else {
                return Err(S2faError::Shape(
                    "accumulator leaf is not a variable".into(),
                ));
            };
            out.push(Stmt::Assign {
                lhs: LValue::Var(acc_name.clone()),
                rhs: Expr::var(tmp.clone()),
            });
            Ok(())
        }
        (Shape::Array(_, n), Sym::Arr(a), Sym::Arr(r)) => {
            if a.name == r.name {
                // reducer updated the accumulator array in place
                return Ok(());
            }
            let j = d.fresh_name("j");
            out.push(Stmt::For {
                id: d.fresh_loop(),
                var: j.clone(),
                bound: Expr::ConstI(*n as i64),
                trip_count: Some(*n),
                attrs: LoopAttrs::default(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index(a.name.clone(), Box::new(Expr::var(j.clone()))),
                    rhs: Expr::Index(r.name.clone(), Box::new(r.index_expr(Expr::var(j)))),
                }],
            });
            Ok(())
        }
        _ => unreachable!("validated by collect_scalar_updates"),
    }
}

#[cfg(test)]
mod tests;
