#![warn(missing_docs)]

//! # s2fa — Spark-to-FPGA-Accelerator
//!
//! A full reproduction of the S2FA framework (Yu et al., DAC 2018): an
//! automation framework that compiles the computational kernels of Apache
//! Spark applications — Scala lambdas, delivered as JVM bytecode — into
//! optimized FPGA accelerator designs plus the host-side integration for
//! the Blaze runtime.
//!
//! The pipeline (paper Fig. 1):
//!
//! 1. **Bytecode-to-C compiler** ([`codegen`]) — translates verified stack
//!    bytecode into sequential HLS C, flattening object-oriented
//!    constructs: tuple/record fields become flat interface buffers
//!    (`in_1, in_2, ...`), virtual methods are inlined, constructors are
//!    eliminated in favour of output-buffer writes, and the RDD operator's
//!    semantics are realized by an inserted template loop (Code 2 →
//!    Code 3).
//! 2. **Design-space identification & exploration** — the kernel summary
//!    (`s2fa-hlsir`) feeds Table 1's design space (`s2fa-dse`), explored by
//!    the partitioned, seeded, entropy-stopped learning DSE over the
//!    Merlin transformation vocabulary (`s2fa-merlin`) and the analytical
//!    HLS model (`s2fa-hlssim`).
//! 3. **Integration** — the data-processing method generator's layouts and
//!    the final design are packaged as a Blaze [`Accelerator`]
//!    (`s2fa-blaze`), ready for registration and transparent offload.
//!
//! ```no_run
//! use s2fa::{S2fa, S2faOptions};
//! # fn spec() -> s2fa_sjvm::KernelSpec { unimplemented!() }
//!
//! let framework = S2fa::new(S2faOptions::default());
//! let compiled = framework.compile(&spec())?;
//! println!("{}", compiled.optimized_source);
//! # Ok::<(), s2fa::S2faError>(())
//! ```
//!
//! [`Accelerator`]: s2fa_blaze::Accelerator

pub mod codegen;
pub mod pipeline;
pub mod report;

mod error;

pub use codegen::{compile_kernel, GeneratedKernel};
pub use error::S2faError;
pub use pipeline::{CompiledAccelerator, S2fa, S2faOptions};

// Re-export the subsystem crates so downstream users need one dependency.
pub use s2fa_blaze as blaze;
pub use s2fa_dse as dse;
pub use s2fa_hlsir as hlsir;
pub use s2fa_hlssim as hlssim;
pub use s2fa_lint as lint;
pub use s2fa_merlin as merlin;
pub use s2fa_sjvm as sjvm;
pub use s2fa_trace as trace;
pub use s2fa_tuner as tuner;
