//! Report formatting helpers for the experiment harness.

use crate::pipeline::CompiledAccelerator;
use s2fa_hlssim::Device;

/// One row of the paper's Table 2 (resource utilization and frequency).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceRow {
    /// Kernel name.
    pub kernel: String,
    /// Application category (graph proc., classification, ...).
    pub category: String,
    /// BRAM utilization percentage.
    pub bram_pct: f64,
    /// DSP utilization percentage.
    pub dsp_pct: f64,
    /// FF utilization percentage.
    pub ff_pct: f64,
    /// LUT utilization percentage.
    pub lut_pct: f64,
    /// Achieved frequency in MHz.
    pub freq_mhz: f64,
}

impl ResourceRow {
    /// Builds a row from a compiled accelerator against a device.
    pub fn from_compiled(
        compiled: &CompiledAccelerator,
        category: impl Into<String>,
        device: &Device,
    ) -> ResourceRow {
        let (b, d, f, l) = compiled.estimate.resources.utilization(device);
        ResourceRow {
            kernel: compiled.accelerator.id.clone(),
            category: category.into(),
            bram_pct: b * 100.0,
            dsp_pct: d * 100.0,
            ff_pct: f * 100.0,
            lut_pct: l * 100.0,
            freq_mhz: compiled.estimate.freq_mhz,
        }
    }

    /// Formats the row like the paper's table.
    pub fn formatted(&self) -> String {
        format!(
            "| {:<8} | {:<14} | {:>4.0}% | {:>3.0}% | {:>3.0}% | {:>3.0}% | {:>4.0} |",
            self.kernel,
            self.category,
            self.bram_pct,
            self.dsp_pct,
            self.ff_pct,
            self.lut_pct,
            self.freq_mhz
        )
    }
}

/// Renders a markdown-style table of resource rows with the paper's
/// header.
pub fn resource_table(rows: &[ResourceRow]) -> String {
    let mut out = String::from(
        "| Kernel   | Type           | BRAM | DSP | FF  | LUT | Freq |\n\
         |----------|----------------|------|-----|-----|-----|------|\n",
    );
    for r in rows {
        out.push_str(&r.formatted());
        out.push('\n');
    }
    out
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[7.0]) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn table_formatting() {
        let row = ResourceRow {
            kernel: "KMeans".into(),
            category: "classification".into(),
            bram_pct: 73.0,
            dsp_pct: 6.0,
            ff_pct: 10.0,
            lut_pct: 14.0,
            freq_mhz: 230.0,
        };
        let t = resource_table(std::slice::from_ref(&row));
        assert!(t.contains("KMeans"));
        assert!(t.contains("73%"));
        assert!(t.contains("230"));
    }
}
