//! The decompiler consumes *bytecode*, not the builder: these tests
//! hand-assemble canonical `javac`-shaped instruction sequences (never
//! touching the builder DSL) and compile them, backing the paper's claim
//! that "the S2FA framework is able to compile any Java/Scala method that
//! satisfies the constraints" (§2).

use s2fa::{compile_kernel, S2faError};
use s2fa_blaze::Accelerator;
use s2fa_sjvm::{
    ClassTable, Cond, HostValue, Interp, JType, KernelSpec, Method, MethodTable, NumKind, Op,
    RddOp, Shape,
};

fn spec_from(method: Method, input_shape: Shape, output_shape: Shape) -> KernelSpec {
    let classes = ClassTable::new();
    let mut methods = MethodTable::new();
    let entry = methods.add(method);
    KernelSpec {
        name: "raw".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape,
        output_shape,
    }
}

fn check_equivalent(spec: &KernelSpec, records: &[HostValue]) {
    let generated = compile_kernel(spec).expect("raw bytecode compiles");
    let accel = Accelerator {
        id: "raw".into(),
        kernel: generated.cfunc.clone(),
        operator: RddOp::Map,
        input_layout: generated.input_layout.clone(),
        output_layout: generated.output_layout.clone(),
        time_model: None,
    };
    let (hw, _) = accel.run_batch(records).expect("runs");
    let mut interp = Interp::new(&spec.classes, &spec.methods);
    for (i, rec) in records.iter().enumerate() {
        let (jvm, _) = interp
            .run(spec.entry, std::slice::from_ref(rec))
            .expect("interprets");
        assert_eq!(jvm, hw[i], "record {i}");
    }
}

#[test]
fn hand_assembled_loop_compiles() {
    // int call(int x) { int s = 0; int i = 0;
    //                   while (i < 10) { s = s + x; i = i + 1; } return s; }
    // assembled exactly as javac would emit it.
    let method = Method {
        name: "call".into(),
        params: vec![JType::Int],
        ret: Some(JType::Int),
        n_locals: 3,
        local_names: vec!["x".into(), "s".into(), "i".into()],
        local_types: vec![JType::Int, JType::Int, JType::Int],
        code: vec![
            Op::ConstI(0),
            Op::Store(1), // s = 0
            Op::ConstI(0),
            Op::Store(2), // i = 0
            // loop head (pc 4)
            Op::Load(2),
            Op::ConstI(10),
            Op::IfCmp {
                kind: NumKind::Int,
                cond: Cond::Ge,
                target: 16,
            },
            Op::Load(1),
            Op::Load(0),
            Op::Add(NumKind::Int),
            Op::Store(1), // s += x
            Op::Load(2),
            Op::ConstI(1),
            Op::Add(NumKind::Int),
            Op::Store(2), // i += 1
            Op::Goto(4),
            // loop exit (pc 16)
            Op::Load(1),
            Op::Return,
        ],
    };
    let spec = spec_from(method, Shape::Scalar(JType::Int), Shape::Scalar(JType::Int));
    check_equivalent(&spec, &[HostValue::I(3), HostValue::I(-2), HostValue::I(0)]);
    // the generated C recovered the counted loop
    let g = compile_kernel(&spec).unwrap();
    let src = s2fa_hlsir::printer::to_c(&g.cfunc);
    assert!(src.contains("< 10;"), "{src}");
}

#[test]
fn hand_assembled_branch_compiles() {
    // int call(int x) { int y; if (x < 0) y = -x; else y = x; return y; }
    let method = Method {
        name: "call".into(),
        params: vec![JType::Int],
        ret: Some(JType::Int),
        n_locals: 2,
        local_names: vec!["x".into(), "y".into()],
        local_types: vec![JType::Int, JType::Int],
        code: vec![
            Op::Load(0),
            Op::ConstI(0),
            Op::IfCmp {
                kind: NumKind::Int,
                cond: Cond::Ge,
                target: 7,
            },
            Op::Load(0),
            Op::Neg(NumKind::Int),
            Op::Store(1),
            Op::Goto(9),
            Op::Load(0),
            Op::Store(1),
            Op::Load(1),
            Op::Return,
        ],
    };
    let spec = spec_from(method, Shape::Scalar(JType::Int), Shape::Scalar(JType::Int));
    check_equivalent(&spec, &[HostValue::I(-9), HostValue::I(9), HostValue::I(0)]);
}

#[test]
fn irreducible_control_flow_is_rejected() {
    // A jump into the middle of a "loop" (overlapping regions): verifies,
    // but is outside the canonical subset — the decompiler must reject it
    // rather than mistranslate.
    let method = Method {
        name: "call".into(),
        params: vec![JType::Int],
        ret: Some(JType::Int),
        n_locals: 1,
        local_names: vec!["x".into()],
        local_types: vec![JType::Int],
        code: vec![
            Op::Load(0),
            Op::IfZero {
                cond: Cond::Eq,
                target: 4,
            },
            Op::ConstI(1),
            Op::Return,
            // a bare backward goto forms a non-canonical shape
            Op::Load(0),
            Op::IfZero {
                cond: Cond::Ne,
                target: 2,
            },
            Op::ConstI(0),
            Op::Return,
        ],
    };
    // Bytecode verifies (stack-consistent) ...
    let spec = spec_from(method, Shape::Scalar(JType::Int), Shape::Scalar(JType::Int));
    spec.verify().expect("bytecode is stack-consistent");
    // ... but the structural decompiler refuses it.
    let err = compile_kernel(&spec).unwrap_err();
    assert!(matches!(err, S2faError::Unsupported(_)), "{err}");
}

#[test]
fn stack_juggling_with_dup_and_pop_compiles() {
    // return (x * x) — computed via dup, plus a dead value popped.
    let method = Method {
        name: "call".into(),
        params: vec![JType::Int],
        ret: Some(JType::Int),
        n_locals: 1,
        local_names: vec!["x".into()],
        local_types: vec![JType::Int],
        code: vec![
            Op::ConstI(99), // dead value
            Op::Pop,
            Op::Load(0),
            Op::Dup,
            Op::Mul(NumKind::Int),
            Op::Return,
        ],
    };
    let spec = spec_from(method, Shape::Scalar(JType::Int), Shape::Scalar(JType::Int));
    check_equivalent(&spec, &[HostValue::I(7), HostValue::I(-3)]);
}
