//! Property-based equivalence: *random* kernels built through the DSL are
//! compiled to HLS C and executed on both paths — the JVM interpreter and
//! the IR executor must agree bit-for-bit on random inputs.
//!
//! This generalizes the hand-written equivalence tests: any counted-loop /
//! branch / tuple / array kernel in the supported subset must survive the
//! bytecode-to-C translation unchanged.

use proptest::prelude::*;
use s2fa::compile_kernel;
use s2fa_blaze::Accelerator;
use s2fa_sjvm::builder::{Expr, FnBuilder};
use s2fa_sjvm::{ClassTable, HostValue, Interp, JType, KernelSpec, MethodTable, RddOp, Shape};

/// Length of the input array available to generated kernels.
const ARR: u32 = 8;

/// A generated scalar expression over the kernel's environment.
#[derive(Debug, Clone)]
enum GenExpr {
    /// The scalar input `x`.
    X,
    /// An element of the input array, index wrapped into range.
    Elem(u8),
    /// The loop counter (only valid inside the loop; outside it reads the
    /// final counter value, which the builder models as a local anyway).
    Counter,
    Const(i8),
    Add(Box<GenExpr>, Box<GenExpr>),
    Sub(Box<GenExpr>, Box<GenExpr>),
    Mul(Box<GenExpr>, Box<GenExpr>),
    Min(Box<GenExpr>, Box<GenExpr>),
    Max(Box<GenExpr>, Box<GenExpr>),
    /// `a < b ? c : d` — exercises the branch-diamond lowering.
    Select(Box<GenExpr>, Box<GenExpr>, Box<GenExpr>, Box<GenExpr>),
}

fn gen_expr() -> impl Strategy<Value = GenExpr> {
    let leaf = prop_oneof![
        Just(GenExpr::X),
        any::<u8>().prop_map(GenExpr::Elem),
        Just(GenExpr::Counter),
        any::<i8>().prop_map(GenExpr::Const),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| GenExpr::Max(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(a, b, c, d)| {
                GenExpr::Select(Box::new(a), Box::new(b), Box::new(c), Box::new(d))
            }),
        ]
    })
}

/// A generated kernel: an optional accumulation loop, an optional branch,
/// and a result expression.
#[derive(Debug, Clone)]
struct GenKernel {
    /// Accumulate `loop_body` over `trip` iterations into `acc`.
    trip: u8,
    loop_body: GenExpr,
    /// `if (x < branch_cut) acc = acc + branch_add`.
    branch_cut: i8,
    branch_add: GenExpr,
    /// Final returned expression (may read `acc` through `Counter`).
    result: GenExpr,
}

fn gen_kernel() -> impl Strategy<Value = GenKernel> {
    (1u8..6, gen_expr(), any::<i8>(), gen_expr(), gen_expr()).prop_map(
        |(trip, loop_body, branch_cut, branch_add, result)| GenKernel {
            trip,
            loop_body,
            branch_cut,
            branch_add,
            result,
        },
    )
}

/// Lowers a generated expression to builder DSL.
fn lower(
    e: &GenExpr,
    x: s2fa_sjvm::builder::LocalId,
    arr: s2fa_sjvm::builder::LocalId,
    counter: s2fa_sjvm::builder::LocalId,
) -> Expr {
    match e {
        GenExpr::X => Expr::local(x),
        GenExpr::Elem(i) => Expr::local(arr).index(Expr::const_i((*i as u32 % ARR) as i64)),
        GenExpr::Counter => Expr::local(counter),
        GenExpr::Const(v) => Expr::const_i(*v as i64),
        GenExpr::Add(a, b) => lower(a, x, arr, counter).add(lower(b, x, arr, counter)),
        GenExpr::Sub(a, b) => lower(a, x, arr, counter).sub(lower(b, x, arr, counter)),
        GenExpr::Mul(a, b) => lower(a, x, arr, counter).mul(lower(b, x, arr, counter)),
        GenExpr::Min(a, b) => lower(a, x, arr, counter).min(lower(b, x, arr, counter)),
        GenExpr::Max(a, b) => lower(a, x, arr, counter).max(lower(b, x, arr, counter)),
        GenExpr::Select(a, b, c, d) => Expr::select(
            lower(a, x, arr, counter).lt(lower(b, x, arr, counter)),
            lower(c, x, arr, counter),
            lower(d, x, arr, counter),
        ),
    }
}

fn build_spec(k: &GenKernel) -> KernelSpec {
    let mut classes = ClassTable::new();
    let pair = classes.define_tuple2(JType::Int, JType::array(JType::Int));
    let mut methods = MethodTable::new();
    let mut b = FnBuilder::new("call", &[("in", JType::Ref(pair))], Some(JType::Int));
    let input = b.param(0);
    let x = b.local("x", JType::Int);
    let arr = b.local("arr", JType::array(JType::Int));
    b.set(x, Expr::local(input).field("_1"));
    b.set(arr, Expr::local(input).field("_2"));
    let acc = b.local("acc", JType::Int);
    let i = b.local("i", JType::Int);
    b.set(acc, Expr::const_i(0));
    b.for_loop(i, Expr::const_i(0), Expr::const_i(k.trip as i64), |b| {
        b.set(acc, Expr::local(acc).add(lower(&k.loop_body, x, arr, i)));
    });
    b.if_then(Expr::local(x).lt(Expr::const_i(k.branch_cut as i64)), |b| {
        b.set(acc, Expr::local(acc).add(lower(&k.branch_add, x, arr, acc)));
    });
    b.ret(Expr::local(acc).add(lower(&k.result, x, arr, acc)));
    let entry = b.finish(&mut classes, &mut methods).expect("builds");
    KernelSpec {
        name: "prop".into(),
        classes,
        methods,
        entry,
        operator: RddOp::Map,
        input_shape: Shape::pair(Shape::Scalar(JType::Int), Shape::Array(JType::Int, ARR)),
        output_shape: Shape::Scalar(JType::Int),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_kernels_are_equivalent(
        kernel in gen_kernel(),
        xs in prop::collection::vec(any::<i16>(), 1..4),
        arr in prop::collection::vec(any::<i16>(), ARR as usize..=ARR as usize),
    ) {
        let spec = build_spec(&kernel);
        let generated = compile_kernel(&spec).expect("supported subset compiles");
        let accel = Accelerator {
            id: "prop".into(),
            kernel: generated.cfunc.clone(),
            operator: RddOp::Map,
            input_layout: generated.input_layout.clone(),
            output_layout: generated.output_layout.clone(),
            time_model: None,
        };
        let records: Vec<HostValue> = xs
            .iter()
            .map(|&x| {
                HostValue::pair(
                    HostValue::I(x as i64),
                    HostValue::i64_array(
                        &arr.iter().map(|&v| v as i64).collect::<Vec<_>>(),
                    ),
                )
            })
            .collect();
        let (hw, _) = accel.run_batch(&records).expect("accelerator runs");
        let mut interp = Interp::new(&spec.classes, &spec.methods);
        for (i, rec) in records.iter().enumerate() {
            let (jvm, _) = interp
                .run(spec.entry, std::slice::from_ref(rec))
                .expect("jvm runs");
            prop_assert_eq!(&jvm, &hw[i], "record {} diverged", i);
        }
    }

    #[test]
    fn random_kernels_survive_reanalysis(kernel in gen_kernel()) {
        // The generated C of any supported kernel must analyze cleanly
        // (trip counts resolved, loop tree well-formed).
        let spec = build_spec(&kernel);
        let generated = compile_kernel(&spec).expect("compiles");
        let s = s2fa_hlsir::analysis::summarize(&generated.cfunc, 64).expect("analyzes");
        prop_assert!(!s.loops.is_empty());
        prop_assert!(s.loop_info(s.task_loop).is_some());
        // every non-task loop has a constant trip count
        for l in &s.loops {
            if l.id != s.task_loop {
                prop_assert!(l.trip_count >= 1);
            }
        }
    }
}
