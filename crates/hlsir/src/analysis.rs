//! Kernel analysis — the ROSE + polyhedral substitute.
//!
//! S2FA "identifies the design space for each kernel by analyzing the kernel
//! AST using the ROSE compiler infrastructure and polyhedral framework to
//! realize loop trip-counts, available bit-widths, and so on" (§4.1). This
//! module extracts the same facts from the [`CFunction`] AST:
//!
//! * the loop-nest tree with static trip counts,
//! * per-iteration operation counts per loop body,
//! * buffer inventory with element widths and per-task lengths,
//! * affine access-stride classification (the polyhedral-lite part),
//! * loop-carried dependence detection with the operation chain on the
//!   recurrence cycle (what bounds the achievable initiation interval).
//!
//! The result, [`KernelSummary`], is the single input of both the
//! design-space builder (`s2fa-dse`) and the HLS estimator (`s2fa-hlssim`).

use crate::ast::{CFunction, Expr, LValue, LoopId, ParamKind, Stmt};
use crate::opcount::OpCounts;
use crate::HlsirError;
use std::collections::HashSet;

/// Direction of a buffer relative to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferDir {
    /// Interface input (off-chip → accelerator).
    In,
    /// Interface output (accelerator → off-chip).
    Out,
    /// Kernel-local array (on-chip BRAM).
    Local,
}

/// A buffer visible to the performance model.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferInfo {
    /// Buffer name.
    pub name: String,
    /// Element width in bits.
    pub elem_bits: u32,
    /// Elements per task (interface buffers) or total elements (locals).
    pub len: u32,
    /// Direction.
    pub dir: BufferDir,
    /// True for broadcast inputs: one shared copy per batch, cached
    /// on-chip by the generated design.
    pub broadcast: bool,
}

/// Stride of an access with respect to the innermost enclosing loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stride {
    /// Index does not involve the loop variable.
    Zero,
    /// Index advances by one element per iteration.
    Unit,
    /// Affine with the given step.
    Affine(i64),
    /// Data-dependent or non-affine.
    Irregular,
}

/// One buffer access inside a loop body (per iteration).
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// Buffer accessed.
    pub buffer: String,
    /// True for writes.
    pub write: bool,
    /// Stride w.r.t. the loop the access is counted under.
    pub stride: Stride,
}

/// A loop-carried dependence detected on a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CarriedDep {
    /// Scalar or array carrying the recurrence.
    pub via: String,
    /// Operations on the recurrence cycle (from the carried read back to
    /// the write); their summed latency lower-bounds the pipeline II.
    pub chain: OpCounts,
    /// True if the recurrence is a pure associative accumulation, i.e.
    /// Merlin's tree-reduction rewrite is legal.
    pub reducible: bool,
}

/// Facts about one loop of the nest.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// The loop id.
    pub id: LoopId,
    /// Induction variable name.
    pub var: String,
    /// Static trip count (the task loop uses the analysis batch hint).
    pub trip_count: u32,
    /// Nesting depth (0 = outermost).
    pub depth: u32,
    /// Parent loop, if any.
    pub parent: Option<LoopId>,
    /// Direct children, outer-to-inner order.
    pub children: Vec<LoopId>,
    /// Per-iteration operations in this loop's body, excluding nested loops.
    pub body_ops: OpCounts,
    /// Per-iteration buffer accesses, excluding nested loops.
    pub accesses: Vec<Access>,
    /// Loop-carried dependence, if detected.
    pub carried: Option<CarriedDep>,
}

/// Complete analysis summary of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel name.
    pub name: String,
    /// Loops in pre-order (task loop first).
    pub loops: Vec<LoopInfo>,
    /// All buffers (interface + local).
    pub buffers: Vec<BufferInfo>,
    /// The outermost (task/template) loop.
    pub task_loop: LoopId,
    /// Batch size assumed for the task loop's trip count.
    pub tasks_hint: u32,
    /// Exact per-loop dependence facts from the dataflow engine. `None`
    /// unless explicitly attached ([`crate::dataflow::attach`]) — the
    /// default estimation path never consults it, keeping results
    /// bit-identical with the flag off.
    pub dataflow: Option<crate::dataflow::KernelDataflow>,
}

impl KernelSummary {
    /// Looks up a loop's info.
    pub fn loop_info(&self, id: LoopId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// Looks up a buffer's info.
    pub fn buffer(&self, name: &str) -> Option<&BufferInfo> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// All descendants of a loop (excluding itself), pre-order.
    pub fn descendants(&self, id: LoopId) -> Vec<LoopId> {
        let mut out = Vec::new();
        let mut stack: Vec<LoopId> = self
            .loop_info(id)
            .map(|l| l.children.clone())
            .unwrap_or_default();
        stack.reverse();
        while let Some(c) = stack.pop() {
            out.push(c);
            if let Some(l) = self.loop_info(c) {
                for ch in l.children.iter().rev() {
                    stack.push(*ch);
                }
            }
        }
        out
    }

    /// Product of the trip counts of all loops strictly inside `id` —
    /// the replication factor implied by `flatten`.
    pub fn flattened_iters(&self, id: LoopId) -> u64 {
        self.descendants(id)
            .iter()
            .filter_map(|c| self.loop_info(*c))
            .map(|l| l.trip_count as u64)
            .product()
    }

    /// Total per-iteration work of the loop *including* nested loops
    /// (each inner loop's body scaled by its trip count).
    pub fn subtree_ops(&self, id: LoopId) -> OpCounts {
        fn rec(s: &KernelSummary, id: LoopId) -> OpCounts {
            let Some(l) = s.loop_info(id) else {
                return OpCounts::new();
            };
            let mut total = l.body_ops;
            for c in &l.children {
                let inner = rec(s, *c);
                let tc = s.loop_info(*c).map(|x| x.trip_count).unwrap_or(1);
                total += inner.scaled(tc);
            }
            total
        }
        rec(self, id)
    }

    /// Interface bytes moved per task (in + out), excluding broadcast
    /// buffers (those move once per batch — see
    /// [`broadcast_bytes`](Self::broadcast_bytes)).
    pub fn interface_bytes_per_task(&self) -> (u64, u64) {
        let mut inb = 0u64;
        let mut outb = 0u64;
        for b in &self.buffers {
            if b.broadcast {
                continue;
            }
            let bytes = (b.elem_bits as u64 / 8).max(1) * b.len as u64;
            match b.dir {
                BufferDir::In => inb += bytes,
                BufferDir::Out => outb += bytes,
                BufferDir::Local => {}
            }
        }
        (inb, outb)
    }

    /// The loop's carried dependence, consulting the attached dataflow
    /// facts: the conservative scan's verdict wins when present (it knows
    /// reducibility); otherwise a recurrence only the exact engine found
    /// (a multi-statement scalar cycle) fills in. Identical to
    /// `loop_info(id).carried` when no dataflow facts are attached.
    pub fn effective_carried(&self, id: LoopId) -> Option<&CarriedDep> {
        let li = self.loop_info(id)?;
        if let Some(c) = &li.carried {
            return Some(c);
        }
        self.dataflow
            .as_ref()
            .and_then(|d| d.loops.get(&id))
            .and_then(|l| l.extra_carried.as_ref())
    }

    /// Dependence distance of the loop's recurrence in iterations
    /// (default 1). A distance `d > 1` means `d` independent recurrence
    /// chains interleave, relaxing the recurrence II bound by `d`.
    pub fn carried_distance(&self, id: LoopId) -> u32 {
        self.dataflow
            .as_ref()
            .and_then(|d| d.loops.get(&id))
            .and_then(|l| l.carried_distance)
            .unwrap_or(1)
            .max(1)
    }

    /// Bytes of broadcast (once-per-batch) input data.
    pub fn broadcast_bytes(&self) -> u64 {
        self.buffers
            .iter()
            .filter(|b| b.broadcast && b.dir == BufferDir::In)
            .map(|b| (b.elem_bits as u64 / 8).max(1) * b.len as u64)
            .sum()
    }
}

/// Analyzes a generated kernel.
///
/// `tasks_hint` is the nominal batch size used as the task loop's trip
/// count (its bound is the runtime parameter `N`).
///
/// # Errors
///
/// Returns [`HlsirError::Analysis`] if an inner loop's bound is not a
/// compile-time constant (outside the subset S2FA generates).
pub fn summarize(f: &CFunction, tasks_hint: u32) -> Result<KernelSummary, HlsirError> {
    let mut buffers: Vec<BufferInfo> = f
        .params
        .iter()
        .filter(|p| p.kind != ParamKind::ScalarIn)
        .map(|p| BufferInfo {
            name: p.name.clone(),
            elem_bits: p.ty.bits(),
            len: p.elems_per_task.unwrap_or(1),
            dir: if p.kind == ParamKind::BufIn {
                BufferDir::In
            } else {
                BufferDir::Out
            },
            broadcast: p.broadcast,
        })
        .collect();
    collect_local_arrays(&f.body, &mut buffers);

    let mut ctx = Ctx {
        loops: Vec::new(),
        tasks_hint,
    };
    let outer_decls: HashSet<String> = HashSet::new();
    ctx.walk(&f.body, None, 0, &outer_decls)?;
    if ctx.loops.is_empty() {
        return Err(HlsirError::Analysis(
            "kernel has no loops; expected the template task loop".into(),
        ));
    }
    let task_loop = ctx.loops[0].id;
    Ok(KernelSummary {
        name: f.name.clone(),
        loops: ctx.loops,
        buffers,
        task_loop,
        tasks_hint,
        dataflow: None,
    })
}

fn collect_local_arrays(stmts: &[Stmt], out: &mut Vec<BufferInfo>) {
    for s in stmts {
        match s {
            Stmt::DeclArr { name, ty, len } => out.push(BufferInfo {
                name: name.clone(),
                elem_bits: ty.bits(),
                len: *len,
                dir: BufferDir::Local,
                broadcast: false,
            }),
            Stmt::For { body, .. } => collect_local_arrays(body, out),
            Stmt::If { then, els, .. } => {
                collect_local_arrays(then, out);
                collect_local_arrays(els, out);
            }
            _ => {}
        }
    }
}

struct Ctx {
    loops: Vec<LoopInfo>,
    tasks_hint: u32,
}

impl Ctx {
    fn walk(
        &mut self,
        stmts: &[Stmt],
        parent: Option<LoopId>,
        depth: u32,
        outer_decls: &HashSet<String>,
    ) -> Result<Vec<LoopId>, HlsirError> {
        let mut found = Vec::new();
        for s in stmts {
            match s {
                Stmt::For {
                    id,
                    var,
                    bound,
                    trip_count,
                    body,
                    ..
                } => {
                    let tc = match (trip_count, bound) {
                        (Some(t), _) => *t,
                        (None, Expr::ConstI(v)) => *v as u32,
                        // The template (task) loop is bounded by the runtime
                        // batch size `n` (or `n - 1` for reduce templates).
                        (None, _) if parent.is_none() => self.tasks_hint,
                        (None, other) => {
                            return Err(HlsirError::Analysis(format!(
                                "loop {id} has a non-constant bound {other:?}"
                            )))
                        }
                    };
                    // Local declarations inside this loop body reset each
                    // iteration and therefore cannot carry a dependence.
                    let mut local_decls = outer_decls.clone();
                    collect_decls(body, &mut local_decls);

                    let (ops, accesses) = body_profile(body, var);
                    let carried = detect_carried(body, var, outer_decls);
                    let idx = self.loops.len();
                    self.loops.push(LoopInfo {
                        id: *id,
                        var: var.clone(),
                        trip_count: tc,
                        depth,
                        parent,
                        children: Vec::new(),
                        body_ops: ops,
                        accesses,
                        carried,
                    });
                    let children = self.walk(body, Some(*id), depth + 1, &local_decls)?;
                    self.loops[idx].children = children;
                    found.push(*id);
                }
                Stmt::If { then, els, .. } => {
                    found.extend(self.walk(then, parent, depth, outer_decls)?);
                    found.extend(self.walk(els, parent, depth, outer_decls)?);
                }
                _ => {}
            }
        }
        Ok(found)
    }
}

fn collect_decls(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Decl { name, .. } | Stmt::DeclArr { name, .. } => {
                out.insert(name.clone());
            }
            // Declarations inside nested loops/branches are also re-created
            // per iteration of this loop.
            Stmt::For { body, .. } => collect_decls(body, out),
            Stmt::If { then, els, .. } => {
                collect_decls(then, out);
                collect_decls(els, out);
            }
            _ => {}
        }
    }
}

/// Ops and accesses of a loop body *excluding* nested loops. `If` branches
/// are summed (HLS if-converts and schedules both sides).
fn body_profile(stmts: &[Stmt], loop_var: &str) -> (OpCounts, Vec<Access>) {
    let mut ops = OpCounts::new();
    let mut accesses = Vec::new();
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                count_expr(rhs, loop_var, &mut ops, &mut accesses);
                if let LValue::Index(name, idx) = lhs {
                    count_expr(idx, loop_var, &mut ops, &mut accesses);
                    ops.mem_write += 1;
                    accesses.push(Access {
                        buffer: name.clone(),
                        write: true,
                        stride: classify_stride(idx, loop_var),
                    });
                }
            }
            Stmt::Decl { init: Some(e), .. } => {
                count_expr(e, loop_var, &mut ops, &mut accesses);
            }
            Stmt::If { cond, then, els } => {
                count_expr(cond, loop_var, &mut ops, &mut accesses);
                let (o1, a1) = body_profile(then, loop_var);
                let (o2, a2) = body_profile(els, loop_var);
                ops += o1;
                ops += o2;
                accesses.extend(a1);
                accesses.extend(a2);
            }
            // Nested loops profiled separately; declarations are free.
            Stmt::For { .. } | Stmt::Decl { init: None, .. } | Stmt::DeclArr { .. } => {}
        }
    }
    (ops, accesses)
}

pub(crate) fn count_expr(e: &Expr, loop_var: &str, ops: &mut OpCounts, accesses: &mut Vec<Access>) {
    match e {
        Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => {}
        Expr::Index(name, idx) => {
            count_expr(idx, loop_var, ops, accesses);
            ops.mem_read += 1;
            accesses.push(Access {
                buffer: name.clone(),
                write: false,
                stride: classify_stride(idx, loop_var),
            });
        }
        Expr::Bin(op, kind, a, b) => {
            count_expr(a, loop_var, ops, accesses);
            count_expr(b, loop_var, ops, accesses);
            ops.record_bin(*op, *kind);
        }
        Expr::Neg(kind, a) => {
            count_expr(a, loop_var, ops, accesses);
            if kind.is_float() {
                ops.fadd += 1;
            } else {
                ops.int_alu += 1;
            }
        }
        Expr::Call(f, kind, args) => {
            for a in args {
                count_expr(a, loop_var, ops, accesses);
            }
            ops.record_call(*f, *kind);
        }
        Expr::Cast(_, _, a) => {
            count_expr(a, loop_var, ops, accesses);
            ops.int_alu += 1;
        }
        Expr::Select(c, a, b) => {
            count_expr(c, loop_var, ops, accesses);
            count_expr(a, loop_var, ops, accesses);
            count_expr(b, loop_var, ops, accesses);
            ops.int_alu += 1;
        }
    }
}

fn classify_stride(idx: &Expr, loop_var: &str) -> Stride {
    match crate::dataflow::depend::linear_coeff(idx, loop_var) {
        Some(0) => Stride::Zero,
        Some(1) => Stride::Unit,
        Some(k) => Stride::Affine(k),
        None => Stride::Irregular,
    }
}

/// Detects a loop-carried dependence in this loop body (excluding nested
/// loops, which carry their own). Delegates to the dependence engine in
/// [`crate::dataflow::depend`], which owns the single source of truth for
/// recurrence verdicts.
fn detect_carried(
    stmts: &[Stmt],
    loop_var: &str,
    outer_decls: &HashSet<String>,
) -> Option<CarriedDep> {
    crate::dataflow::depend::conservative_carried(stmts, loop_var, outer_decls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    /// kernel: for t in 0..N { s=0; for j in 0..8 { s += in[t*8+j]*w[j] } out[t]=s }
    fn dot_kernel() -> CFunction {
        CFunction {
            name: "dot".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "in_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(8),
                    broadcast: false,
                },
                Param {
                    name: "w".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(8),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "t".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs: LoopAttrs::none(),
                body: vec![
                    Stmt::Decl {
                        name: "s".into(),
                        ty: CType::Float,
                        init: Some(Expr::ConstF(0.0)),
                    },
                    Stmt::counted_for(
                        LoopId(1),
                        "j",
                        8,
                        vec![Stmt::Assign {
                            lhs: LValue::Var("s".into()),
                            rhs: Expr::bin(
                                CBinOp::Add,
                                CNumKind::F32,
                                Expr::var("s"),
                                Expr::bin(
                                    CBinOp::Mul,
                                    CNumKind::F32,
                                    Expr::index(
                                        "in_1",
                                        Expr::iadd(
                                            Expr::imul(Expr::var("t"), Expr::ConstI(8)),
                                            Expr::var("j"),
                                        ),
                                    ),
                                    Expr::index("w", Expr::var("j")),
                                ),
                            ),
                        }],
                    ),
                    Stmt::Assign {
                        lhs: LValue::Index("out_1".into(), Box::new(Expr::var("t"))),
                        rhs: Expr::var("s"),
                    },
                ],
            }],
        }
    }

    #[test]
    fn loop_nest_shape() {
        let s = summarize(&dot_kernel(), 1024).unwrap();
        assert_eq!(s.loops.len(), 2);
        assert_eq!(s.task_loop, LoopId(0));
        let outer = s.loop_info(LoopId(0)).unwrap();
        assert_eq!(outer.trip_count, 1024);
        assert_eq!(outer.children, vec![LoopId(1)]);
        let inner = s.loop_info(LoopId(1)).unwrap();
        assert_eq!(inner.trip_count, 8);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.parent, Some(LoopId(0)));
    }

    #[test]
    fn inner_reduction_is_detected_and_reducible() {
        let s = summarize(&dot_kernel(), 64).unwrap();
        let inner = s.loop_info(LoopId(1)).unwrap();
        let dep = inner.carried.as_ref().expect("accumulation detected");
        assert_eq!(dep.via, "s");
        assert!(dep.reducible);
        // the cycle is exactly one fadd
        assert_eq!(dep.chain.fadd, 1);
        assert_eq!(dep.chain.fmul, 0);
    }

    #[test]
    fn outer_loop_has_no_carried_dep() {
        // `s` is declared inside the task loop → private per task.
        let s = summarize(&dot_kernel(), 64).unwrap();
        let outer = s.loop_info(LoopId(0)).unwrap();
        assert!(outer.carried.is_none());
    }

    #[test]
    fn access_strides() {
        let s = summarize(&dot_kernel(), 64).unwrap();
        let inner = s.loop_info(LoopId(1)).unwrap();
        let in1 = inner.accesses.iter().find(|a| a.buffer == "in_1").unwrap();
        assert_eq!(in1.stride, Stride::Unit); // coeff of j is 1
        let w = inner.accesses.iter().find(|a| a.buffer == "w").unwrap();
        assert_eq!(w.stride, Stride::Unit);
        let outer = s.loop_info(LoopId(0)).unwrap();
        let out = outer.accesses.iter().find(|a| a.buffer == "out_1").unwrap();
        assert!(out.write);
        assert_eq!(out.stride, Stride::Unit);
    }

    #[test]
    fn op_counts_per_body() {
        let s = summarize(&dot_kernel(), 64).unwrap();
        let inner = s.loop_info(LoopId(1)).unwrap();
        assert_eq!(inner.body_ops.fadd, 1);
        assert_eq!(inner.body_ops.fmul, 1);
        assert_eq!(inner.body_ops.mem_read, 2);
        let total = s.subtree_ops(LoopId(0));
        // per task: 8 * (1 fadd + 1 fmul) plus the out write
        assert_eq!(total.fadd, 8);
        assert_eq!(total.fmul, 8);
        assert_eq!(total.mem_write, 1);
    }

    #[test]
    fn buffer_inventory_and_bytes() {
        let s = summarize(&dot_kernel(), 64).unwrap();
        assert_eq!(s.buffers.len(), 3);
        let (inb, outb) = s.interface_bytes_per_task();
        assert_eq!(inb, 8 * 4 + 8 * 4);
        assert_eq!(outb, 4);
    }

    #[test]
    fn flattened_iters() {
        let s = summarize(&dot_kernel(), 64).unwrap();
        assert_eq!(s.flattened_iters(LoopId(0)), 8);
        assert_eq!(s.flattened_iters(LoopId(1)), 1);
    }

    #[test]
    fn non_constant_inner_bound_rejected() {
        let mut f = dot_kernel();
        if let Some(Stmt::For { body, .. }) = f.body.first_mut() {
            if let Some(Stmt::For {
                bound, trip_count, ..
            }) = body.get_mut(1)
            {
                *bound = Expr::var("k");
                *trip_count = None;
            }
        }
        assert!(summarize(&f, 64).is_err());
    }

    #[test]
    fn affine_and_irregular_strides() {
        assert_eq!(
            classify_stride(
                &Expr::iadd(Expr::imul(Expr::var("i"), Expr::ConstI(3)), Expr::ConstI(1)),
                "i"
            ),
            Stride::Affine(3)
        );
        assert_eq!(
            classify_stride(&Expr::index("tbl", Expr::var("i")), "i"),
            Stride::Irregular
        );
        assert_eq!(classify_stride(&Expr::var("j"), "i"), Stride::Zero);
    }

    #[test]
    fn array_recurrence_detected() {
        // h[j] = h[j] + x  inside loop over i (coeff 0 on both) → carried.
        let body = vec![Stmt::Assign {
            lhs: LValue::Index("h".into(), Box::new(Expr::var("j"))),
            rhs: Expr::bin(
                CBinOp::Add,
                CNumKind::F32,
                Expr::index("h", Expr::var("j")),
                Expr::var("x"),
            ),
        }];
        let dep = detect_carried(&body, "i", &HashSet::new()).expect("carried");
        assert_eq!(dep.via, "h");
        assert!(dep.reducible);
    }

    #[test]
    fn min_accumulation_is_reducible() {
        // best = min(best, d)
        let body = vec![Stmt::Assign {
            lhs: LValue::Var("best".into()),
            rhs: Expr::Call(
                CIntrinsic::Min,
                CNumKind::F32,
                vec![Expr::var("best"), Expr::var("d")],
            ),
        }];
        let dep = detect_carried(&body, "i", &HashSet::new()).expect("carried");
        assert!(dep.reducible);
    }

    #[test]
    fn non_associative_recurrence_not_reducible() {
        // s = s * a + b  → chain fmul+fadd, not reducible
        let body = vec![Stmt::Assign {
            lhs: LValue::Var("s".into()),
            rhs: Expr::bin(
                CBinOp::Add,
                CNumKind::F32,
                Expr::bin(CBinOp::Mul, CNumKind::F32, Expr::var("s"), Expr::var("a")),
                Expr::var("b"),
            ),
        }];
        let dep = detect_carried(&body, "i", &HashSet::new()).expect("carried");
        assert!(!dep.reducible);
        assert_eq!(dep.chain.fadd, 1);
        assert_eq!(dep.chain.fmul, 1);
    }
}

#[cfg(test)]
mod scoping_tests {
    use super::*;
    use crate::ast::*;

    /// for i { int s = 0; for j { s += a[j] } } — `s` is private to each
    /// `i` iteration, so the *outer* loop must not report a carried
    /// dependence through it, while the inner loop must.
    #[test]
    fn per_iteration_decls_are_private_to_the_outer_loop() {
        let f = CFunction {
            name: "k".into(),
            params: vec![Param {
                name: "a".into(),
                ty: CType::Float,
                kind: ParamKind::BufIn,
                elems_per_task: Some(8),
                broadcast: false,
            }],
            body: vec![Stmt::counted_for(
                LoopId(0),
                "i",
                16,
                vec![
                    Stmt::Decl {
                        name: "s".into(),
                        ty: CType::Float,
                        init: Some(Expr::ConstF(0.0)),
                    },
                    Stmt::counted_for(
                        LoopId(1),
                        "j",
                        8,
                        vec![Stmt::Assign {
                            lhs: LValue::Var("s".into()),
                            rhs: Expr::bin(
                                CBinOp::Add,
                                CNumKind::F32,
                                Expr::var("s"),
                                Expr::index("a", Expr::var("j")),
                            ),
                        }],
                    ),
                ],
            )],
        };
        let s = summarize(&f, 16).unwrap();
        assert!(s.loop_info(LoopId(0)).unwrap().carried.is_none());
        assert!(s.loop_info(LoopId(1)).unwrap().carried.is_some());
    }

    /// `if` branches are summed (HLS if-converts both sides).
    #[test]
    fn if_branches_are_summed_in_op_counts() {
        let f = CFunction {
            name: "k".into(),
            params: vec![Param {
                name: "a".into(),
                ty: CType::Float,
                kind: ParamKind::BufIn,
                elems_per_task: Some(1),
                broadcast: false,
            }],
            body: vec![Stmt::counted_for(
                LoopId(0),
                "i",
                4,
                vec![Stmt::If {
                    cond: Expr::bin(
                        CBinOp::Lt,
                        CNumKind::F32,
                        Expr::index("a", Expr::var("i")),
                        Expr::ConstF(0.0),
                    ),
                    then: vec![Stmt::Assign {
                        lhs: LValue::Var("x".into()),
                        rhs: Expr::bin(
                            CBinOp::Mul,
                            CNumKind::F32,
                            Expr::index("a", Expr::var("i")),
                            Expr::ConstF(2.0),
                        ),
                    }],
                    els: vec![Stmt::Assign {
                        lhs: LValue::Var("x".into()),
                        rhs: Expr::bin(
                            CBinOp::Mul,
                            CNumKind::F32,
                            Expr::index("a", Expr::var("i")),
                            Expr::ConstF(3.0),
                        ),
                    }],
                }],
            )],
        };
        let s = summarize(&f, 4).unwrap();
        let l = s.loop_info(LoopId(0)).unwrap();
        // one fcmp (the condition) + two fmul (both branches)
        assert_eq!(l.body_ops.fcmp, 1);
        assert_eq!(l.body_ops.fmul, 2);
        // three reads: cond + both branch bodies
        assert_eq!(l.body_ops.mem_read, 3);
    }

    /// Transitive chains do not fire across genuinely independent arrays.
    #[test]
    fn independent_arrays_are_not_flagged() {
        let body = vec![
            Stmt::Assign {
                lhs: LValue::Var("t".into()),
                rhs: Expr::index("src", Expr::var("i")),
            },
            Stmt::Assign {
                lhs: LValue::Index("dst".into(), Box::new(Expr::var("i"))),
                rhs: Expr::var("t"),
            },
        ];
        assert!(detect_carried(&body, "i", &HashSet::new()).is_none());
    }

    /// Same-element read-then-write at a moving index is not loop-carried,
    /// but a loop-invariant index is.
    #[test]
    fn same_index_carried_only_when_loop_invariant() {
        let moving = vec![
            Stmt::Assign {
                lhs: LValue::Var("v".into()),
                rhs: Expr::index("st", Expr::var("i")),
            },
            Stmt::Assign {
                lhs: LValue::Index("st".into(), Box::new(Expr::var("i"))),
                rhs: Expr::bin(CBinOp::Add, CNumKind::I32, Expr::var("v"), Expr::ConstI(1)),
            },
        ];
        assert!(detect_carried(&moving, "i", &HashSet::new()).is_none());

        let pinned = vec![
            Stmt::Assign {
                lhs: LValue::Var("v".into()),
                rhs: Expr::index("st", Expr::ConstI(0)),
            },
            Stmt::Assign {
                lhs: LValue::Index("st".into(), Box::new(Expr::ConstI(0))),
                rhs: Expr::bin(CBinOp::Add, CNumKind::I32, Expr::var("v"), Expr::ConstI(1)),
            },
        ];
        let dep = detect_carried(&pinned, "i", &HashSet::new()).expect("carried");
        assert_eq!(dep.via, "st");
    }
}
