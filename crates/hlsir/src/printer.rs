//! HLS C source emission.
//!
//! Renders a [`CFunction`] as the C source a user would inspect or hand to
//! the vendor HLS flow, with applied optimization attributes printed as
//! Merlin-style `#pragma ACCEL` directives above each loop (matching the
//! paper's Code 3 plus the Merlin transformation pragmas of §3.2).

use crate::ast::{CFunction, Expr, LValue, ParamKind, PipelineMode, Stmt};
use std::fmt::Write as _;

/// Renders the function as HLS C source text.
///
/// ```
/// use s2fa_hlsir::{ast, printer};
///
/// let f = ast::CFunction {
///     name: "kernel".into(),
///     params: vec![ast::Param {
///         name: "n".into(),
///         ty: ast::CType::Int(32),
///         kind: ast::ParamKind::ScalarIn,
///         elems_per_task: None,
///         broadcast: false,
///     }],
///     body: vec![],
/// };
/// let src = printer::to_c(&f);
/// assert!(src.contains("void kernel(int n)"));
/// ```
pub fn to_c(f: &CFunction) -> String {
    let mut out = String::new();
    let params = f
        .params
        .iter()
        .map(|p| match p.kind {
            ParamKind::ScalarIn => format!("{} {}", p.ty, p.name),
            ParamKind::BufIn => format!("const {} *{}", p.ty, p.name),
            ParamKind::BufOut => format!("{} *{}", p.ty, p.name),
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "void {}({params}) {{", f.name);
    for s in &f.body {
        print_stmt(&mut out, s, 1);
    }
    out.push_str("}\n");
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_stmt(out: &mut String, s: &Stmt, level: usize) {
    match s {
        Stmt::DeclArr { name, ty, len } => {
            indent(out, level);
            let _ = writeln!(out, "{ty} {name}[{len}];");
        }
        Stmt::Decl { name, ty, init } => {
            indent(out, level);
            match init {
                Some(e) => {
                    let _ = writeln!(out, "{ty} {name} = {};", expr_str(e));
                }
                None => {
                    let _ = writeln!(out, "{ty} {name};");
                }
            }
        }
        Stmt::Assign { lhs, rhs } => {
            indent(out, level);
            let l = match lhs {
                LValue::Var(n) => n.clone(),
                LValue::Index(n, i) => format!("{n}[{}]", expr_str(i)),
            };
            let _ = writeln!(out, "{l} = {};", expr_str(rhs));
        }
        Stmt::For {
            id,
            var,
            bound,
            attrs,
            body,
            ..
        } => {
            match attrs.pipeline {
                PipelineMode::On => {
                    indent(out, level);
                    out.push_str("#pragma ACCEL pipeline\n");
                }
                PipelineMode::Flatten => {
                    indent(out, level);
                    out.push_str("#pragma ACCEL pipeline flatten\n");
                }
                PipelineMode::Off => {}
            }
            if attrs.parallel > 1 {
                indent(out, level);
                let _ = writeln!(out, "#pragma ACCEL parallel factor={}", attrs.parallel);
            }
            if let Some(t) = attrs.tile {
                indent(out, level);
                let _ = writeln!(out, "#pragma ACCEL tile factor={t}");
            }
            if attrs.tree_reduce {
                indent(out, level);
                out.push_str("#pragma ACCEL reduction scheme=tree\n");
            }
            indent(out, level);
            let _ = writeln!(
                out,
                "{id}: for (int {var} = 0; {var} < {}; {var}++) {{",
                expr_str(bound)
            );
            for st in body {
                print_stmt(out, st, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        Stmt::If { cond, then, els } => {
            indent(out, level);
            let _ = writeln!(out, "if ({}) {{", expr_str(cond));
            for st in then {
                print_stmt(out, st, level + 1);
            }
            if !els.is_empty() {
                indent(out, level);
                out.push_str("} else {\n");
                for st in els {
                    print_stmt(out, st, level + 1);
                }
            }
            indent(out, level);
            out.push_str("}\n");
        }
    }
}

/// Renders an expression as C text.
pub fn expr_str(e: &Expr) -> String {
    match e {
        Expr::ConstI(v) => v.to_string(),
        Expr::ConstF(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Index(n, i) => format!("{n}[{}]", expr_str(i)),
        Expr::Bin(op, _, a, b) => {
            format!("({} {} {})", expr_str(a), op.c_symbol(), expr_str(b))
        }
        Expr::Neg(_, a) => format!("(-{})", expr_str(a)),
        Expr::Call(f, _, args) => {
            let a = args.iter().map(expr_str).collect::<Vec<_>>().join(", ");
            format!("{}({a})", f.c_name())
        }
        Expr::Cast(_, to, a) => {
            let ty = match to {
                crate::ast::CNumKind::I32 => "int",
                crate::ast::CNumKind::I64 => "long long",
                crate::ast::CNumKind::F32 => "float",
                crate::ast::CNumKind::F64 => "double",
            };
            format!("(({ty}){})", expr_str(a))
        }
        Expr::Select(c, a, b) => {
            format!("({} ? {} : {})", expr_str(c), expr_str(a), expr_str(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn kernel_with_loop(attrs: LoopAttrs) -> CFunction {
        CFunction {
            name: "kernel".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "in_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(4),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(4),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "i".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs,
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::bin(
                        CBinOp::Mul,
                        CNumKind::F32,
                        Expr::index("in_1", Expr::var("i")),
                        Expr::ConstF(2.0),
                    ),
                }],
            }],
        }
    }

    #[test]
    fn signature_and_body() {
        let src = to_c(&kernel_with_loop(LoopAttrs::none()));
        assert!(src.contains("void kernel(int n, const float *in_1, float *out_1)"));
        assert!(src.contains("L0: for (int i = 0; i < n; i++) {"));
        assert!(src.contains("out_1[i] = (in_1[i] * 2.0);"));
        assert!(!src.contains("#pragma"));
    }

    #[test]
    fn pragmas_reflect_attrs() {
        let src = to_c(&kernel_with_loop(LoopAttrs {
            pipeline: PipelineMode::On,
            parallel: 8,
            tile: Some(16),
            tree_reduce: true,
        }));
        assert!(src.contains("#pragma ACCEL pipeline\n"));
        assert!(src.contains("#pragma ACCEL parallel factor=8"));
        assert!(src.contains("#pragma ACCEL tile factor=16"));
        assert!(src.contains("#pragma ACCEL reduction scheme=tree"));
    }

    #[test]
    fn flatten_pragma() {
        let src = to_c(&kernel_with_loop(LoopAttrs {
            pipeline: PipelineMode::Flatten,
            ..LoopAttrs::none()
        }));
        assert!(src.contains("#pragma ACCEL pipeline flatten"));
    }

    #[test]
    fn expressions_render() {
        let e = Expr::Select(
            Box::new(Expr::bin(
                CBinOp::Lt,
                CNumKind::I32,
                Expr::var("a"),
                Expr::ConstI(3),
            )),
            Box::new(Expr::Call(
                CIntrinsic::Sqrt,
                CNumKind::F64,
                vec![Expr::var("x")],
            )),
            Box::new(Expr::Cast(
                CNumKind::I32,
                CNumKind::F64,
                Box::new(Expr::var("y")),
            )),
        );
        assert_eq!(expr_str(&e), "((a < 3) ? sqrtf(x) : ((double)y))");
    }
}
