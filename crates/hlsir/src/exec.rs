//! Functional executor for the HLS C IR.
//!
//! Executes a [`CFunction`] over in-memory buffers with *exactly* the
//! numeric semantics of the `s2fa-sjvm` interpreter (32-bit wrapping ints,
//! `f32` rounding for `float`, 64-bit bitwise ops), so that
//! interpreter-vs-IR equivalence is a meaningful correctness check for the
//! bytecode-to-C compiler. It also stands in for RTL co-simulation when the
//! Blaze runtime "offloads" a task batch.

use crate::ast::{CBinOp, CFunction, CIntrinsic, CNumKind, Expr, LValue, LoopId, ParamKind, Stmt};
use crate::HlsirError;
use std::collections::{BTreeMap, BTreeSet};

/// A scalar value in the executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CVal {
    /// Integral value.
    I(i64),
    /// Floating value.
    F(f64),
}

impl CVal {
    fn as_i(self) -> Result<i64, HlsirError> {
        match self {
            CVal::I(v) => Ok(v),
            CVal::F(v) => Ok(v as i64),
        }
    }

    fn as_f(self) -> Result<f64, HlsirError> {
        match self {
            CVal::F(v) => Ok(v),
            CVal::I(v) => Ok(v as f64),
        }
    }
}

/// Observations collected by [`Executor::run_observed`]: the dynamic
/// ground truth the static E3xx lint rules are validated against.
#[derive(Debug, Clone, Default)]
pub struct Observed {
    /// Reads of never-written storage: `(name, Some(element))` for local
    /// array elements, `(name, None)` for scalars declared without an
    /// initializer. Execution continues with the zero default (matching
    /// the untracked semantics), so a run both observes the hazard and
    /// produces comparable outputs.
    pub uninit_reads: BTreeSet<(String, Option<i64>)>,
}

/// Executes [`CFunction`] bodies over caller-provided buffers.
#[derive(Debug)]
pub struct Executor<'f> {
    f: &'f CFunction,
    fuel: u64,
    orders: BTreeMap<LoopId, Vec<i64>>,
}

/// Default statement budget for one [`Executor::run`].
pub const DEFAULT_FUEL: u64 = 500_000_000;

impl<'f> Executor<'f> {
    /// Creates an executor for the function.
    pub fn new(f: &'f CFunction) -> Self {
        Executor {
            f,
            fuel: DEFAULT_FUEL,
            orders: BTreeMap::new(),
        }
    }

    /// Replaces the statement budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Overrides the iteration order of one loop: instead of `0..bound`
    /// the loop visits exactly the given induction values, in order. Used
    /// by the interleaving oracle — a loop the race detector clears must
    /// produce identical outputs under every permutation of `0..bound`.
    pub fn with_iteration_order(mut self, id: LoopId, order: Vec<i64>) -> Self {
        self.orders.insert(id, order);
        self
    }

    /// Runs the kernel.
    ///
    /// `scalars` must bind every [`ParamKind::ScalarIn`] parameter;
    /// `buffers` must bind every buffer parameter (outputs are overwritten
    /// in place and must be pre-sized by the caller).
    ///
    /// # Errors
    ///
    /// Returns [`HlsirError::Exec`] on missing bindings, out-of-bounds
    /// accesses, or division by zero.
    pub fn run(
        &self,
        scalars: &BTreeMap<String, CVal>,
        buffers: &mut BTreeMap<String, Vec<CVal>>,
    ) -> Result<(), HlsirError> {
        for p in &self.f.params {
            match p.kind {
                ParamKind::ScalarIn => {
                    if !scalars.contains_key(&p.name) {
                        return Err(HlsirError::Exec(format!(
                            "missing scalar binding `{}`",
                            p.name
                        )));
                    }
                }
                _ => {
                    if !buffers.contains_key(&p.name) {
                        return Err(HlsirError::Exec(format!(
                            "missing buffer binding `{}`",
                            p.name
                        )));
                    }
                }
            }
        }
        let mut env = Env {
            scalars: scalars.clone(),
            arrays: BTreeMap::new(),
            buffers,
            fuel: self.fuel,
            orders: &self.orders,
            track: None,
        };
        env.stmts(&self.f.body)
    }

    /// Runs the kernel like [`run`](Self::run) while tracking which reads
    /// hit never-initialized storage.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`run`](Self::run).
    pub fn run_observed(
        &self,
        scalars: &BTreeMap<String, CVal>,
        buffers: &mut BTreeMap<String, Vec<CVal>>,
    ) -> Result<Observed, HlsirError> {
        for p in &self.f.params {
            let bound = match p.kind {
                ParamKind::ScalarIn => scalars.contains_key(&p.name),
                _ => buffers.contains_key(&p.name),
            };
            if !bound {
                return Err(HlsirError::Exec(format!("missing binding `{}`", p.name)));
            }
        }
        let mut env = Env {
            scalars: scalars.clone(),
            arrays: BTreeMap::new(),
            buffers,
            fuel: self.fuel,
            orders: &self.orders,
            track: Some(Track::default()),
        };
        env.stmts(&self.f.body)?;
        Ok(Observed {
            uninit_reads: env.track.take().unwrap_or_default().reads,
        })
    }
}

/// Initialization state threaded through an observed run.
#[derive(Debug, Default)]
struct Track {
    /// Scalars currently holding only their zero default.
    uninit_scalars: BTreeSet<String>,
    /// Per-element freshness of local arrays (true = never written).
    array_uninit: BTreeMap<String, Vec<bool>>,
    /// Accumulated uninitialized reads.
    reads: BTreeSet<(String, Option<i64>)>,
}

struct Env<'b, 'o> {
    scalars: BTreeMap<String, CVal>,
    /// Kernel-local arrays.
    arrays: BTreeMap<String, Vec<CVal>>,
    /// Interface buffers (owned by the caller).
    buffers: &'b mut BTreeMap<String, Vec<CVal>>,
    fuel: u64,
    /// Per-loop iteration-order overrides.
    orders: &'o BTreeMap<LoopId, Vec<i64>>,
    /// Initialization tracking (observed runs only).
    track: Option<Track>,
}

impl Env<'_, '_> {
    fn burn(&mut self) -> Result<(), HlsirError> {
        if self.fuel == 0 {
            return Err(HlsirError::Exec("statement budget exhausted".into()));
        }
        self.fuel -= 1;
        Ok(())
    }

    fn stmts(&mut self, list: &[Stmt]) -> Result<(), HlsirError> {
        for s in list {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), HlsirError> {
        self.burn()?;
        match s {
            Stmt::DeclArr { name, ty, len } => {
                let zero = if ty.is_float() {
                    CVal::F(0.0)
                } else {
                    CVal::I(0)
                };
                self.arrays.insert(name.clone(), vec![zero; *len as usize]);
                if let Some(t) = &mut self.track {
                    t.array_uninit
                        .insert(name.clone(), vec![true; *len as usize]);
                }
            }
            Stmt::Decl { name, ty, init } => {
                let v = match init {
                    Some(e) => self.eval(e)?,
                    None => {
                        if ty.is_float() {
                            CVal::F(0.0)
                        } else {
                            CVal::I(0)
                        }
                    }
                };
                if let Some(t) = &mut self.track {
                    if init.is_none() {
                        t.uninit_scalars.insert(name.clone());
                    } else {
                        t.uninit_scalars.remove(name);
                    }
                }
                self.scalars.insert(name.clone(), v);
            }
            Stmt::Assign { lhs, rhs } => {
                let v = self.eval(rhs)?;
                match lhs {
                    LValue::Var(n) => {
                        if let Some(t) = &mut self.track {
                            t.uninit_scalars.remove(n);
                        }
                        self.scalars.insert(n.clone(), v);
                    }
                    LValue::Index(n, idx) => {
                        let i = self.eval(idx)?.as_i()?;
                        if let Some(t) = &mut self.track {
                            if let Some(fresh) = t.array_uninit.get_mut(n) {
                                if let Some(slot) = fresh.get_mut(i as usize) {
                                    *slot = false;
                                }
                            }
                        }
                        let arr = self.array_mut(n)?;
                        let len = arr.len();
                        *arr.get_mut(i as usize).ok_or_else(|| {
                            HlsirError::Exec(format!("`{n}[{i}]` out of bounds ({len})"))
                        })? = v;
                    }
                }
            }
            Stmt::For {
                id,
                var,
                bound,
                body,
                ..
            } => {
                let n = self.eval(bound)?.as_i()?;
                if let Some(t) = &mut self.track {
                    t.uninit_scalars.remove(var);
                }
                if let Some(order) = self.orders.get(id) {
                    for &i in order {
                        self.scalars.insert(var.clone(), CVal::I(i));
                        self.stmts(body)?;
                    }
                } else {
                    for i in 0..n {
                        self.scalars.insert(var.clone(), CVal::I(i));
                        self.stmts(body)?;
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                let c = self.eval(cond)?.as_i()?;
                if c != 0 {
                    self.stmts(then)?;
                } else {
                    self.stmts(els)?;
                }
            }
        }
        Ok(())
    }

    fn array_mut(&mut self, name: &str) -> Result<&mut Vec<CVal>, HlsirError> {
        if let Some(a) = self.arrays.get_mut(name) {
            return Ok(a);
        }
        self.buffers
            .get_mut(name)
            .ok_or_else(|| HlsirError::Exec(format!("unknown array `{name}`")))
    }

    fn array(&self, name: &str) -> Result<&[CVal], HlsirError> {
        if let Some(a) = self.arrays.get(name) {
            return Ok(a);
        }
        self.buffers
            .get(name)
            .map(|v| v.as_slice())
            .ok_or_else(|| HlsirError::Exec(format!("unknown array `{name}`")))
    }

    fn eval(&mut self, e: &Expr) -> Result<CVal, HlsirError> {
        Ok(match e {
            Expr::ConstI(v) => CVal::I(*v),
            Expr::ConstF(v) => CVal::F(*v),
            Expr::Var(n) => {
                if let Some(t) = &mut self.track {
                    if t.uninit_scalars.contains(n) {
                        t.reads.insert((n.clone(), None));
                    }
                }
                *self
                    .scalars
                    .get(n)
                    .ok_or_else(|| HlsirError::Exec(format!("unknown variable `{n}`")))?
            }
            Expr::Index(n, idx) => {
                let i = self.eval(idx)?.as_i()?;
                if let Some(t) = &mut self.track {
                    if t.array_uninit
                        .get(n)
                        .and_then(|f| f.get(i as usize))
                        .copied()
                        .unwrap_or(false)
                    {
                        t.reads.insert((n.clone(), Some(i)));
                    }
                }
                let arr = self.array(n)?;
                *arr.get(i as usize).ok_or_else(|| {
                    HlsirError::Exec(format!("`{n}[{i}]` out of bounds ({})", arr.len()))
                })?
            }
            Expr::Bin(op, kind, a, b) => {
                let va = self.eval(a)?;
                let vb = self.eval(b)?;
                eval_bin(*op, *kind, va, vb)?
            }
            Expr::Neg(kind, a) => {
                let v = self.eval(a)?;
                if kind.is_float() {
                    CVal::F(round(-v.as_f()?, *kind))
                } else {
                    CVal::I(wrap(v.as_i()?.wrapping_neg(), *kind))
                }
            }
            Expr::Call(f, kind, args) => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a)?);
                }
                eval_call(*f, *kind, &vals)?
            }
            Expr::Cast(from, to, a) => {
                let v = self.eval(a)?;
                cast(v, *from, *to)?
            }
            Expr::Select(c, a, b) => {
                let cv = self.eval(c)?.as_i()?;
                if cv != 0 {
                    self.eval(a)?
                } else {
                    self.eval(b)?
                }
            }
        })
    }
}

fn wrap(v: i64, k: CNumKind) -> i64 {
    match k {
        CNumKind::I32 => v as i32 as i64,
        _ => v,
    }
}

fn round(v: f64, k: CNumKind) -> f64 {
    match k {
        CNumKind::F32 => v as f32 as f64,
        _ => v,
    }
}

fn eval_bin(op: CBinOp, kind: CNumKind, a: CVal, b: CVal) -> Result<CVal, HlsirError> {
    if op.is_cmp() {
        let s = if kind.is_float() {
            let (x, y) = (a.as_f()?, b.as_f()?);
            if x < y {
                -1
            } else if x > y {
                1
            } else {
                0
            }
        } else {
            a.as_i()?.cmp(&b.as_i()?) as i32
        };
        let hit = match op {
            CBinOp::Lt => s < 0,
            CBinOp::Le => s <= 0,
            CBinOp::Gt => s > 0,
            CBinOp::Ge => s >= 0,
            CBinOp::Eq => s == 0,
            CBinOp::Ne => s != 0,
            _ => unreachable!(),
        };
        return Ok(CVal::I(hit as i64));
    }
    if kind.is_float() {
        let x = round(a.as_f()?, kind);
        let y = round(b.as_f()?, kind);
        let r = match op {
            CBinOp::Add => x + y,
            CBinOp::Sub => x - y,
            CBinOp::Mul => x * y,
            CBinOp::Div => x / y,
            CBinOp::Rem => x % y,
            other => {
                return Err(HlsirError::Exec(format!(
                    "bitwise operator {other:?} on floats"
                )))
            }
        };
        Ok(CVal::F(round(r, kind)))
    } else {
        let x = a.as_i()?;
        let y = b.as_i()?;
        let r = match op {
            CBinOp::Add => x.wrapping_add(y),
            CBinOp::Sub => x.wrapping_sub(y),
            CBinOp::Mul => x.wrapping_mul(y),
            CBinOp::Div => {
                if y == 0 {
                    return Err(HlsirError::Exec("integer division by zero".into()));
                }
                x.wrapping_div(y)
            }
            CBinOp::Rem => {
                if y == 0 {
                    return Err(HlsirError::Exec("integer remainder by zero".into()));
                }
                x.wrapping_rem(y)
            }
            CBinOp::Shl => x.wrapping_shl((y & 63) as u32),
            CBinOp::Shr => x.wrapping_shr((y & 63) as u32),
            CBinOp::UShr => ((x as u64).wrapping_shr((y & 63) as u32)) as i64,
            CBinOp::And => x & y,
            CBinOp::Or => x | y,
            CBinOp::Xor => x ^ y,
            _ => unreachable!("comparisons handled above"),
        };
        let r = match op {
            // Shifts and bitwise ops act on the 64-bit representation (same
            // deviation as the sjvm interpreter); arithmetic wraps per kind.
            CBinOp::Shl | CBinOp::Shr | CBinOp::UShr | CBinOp::And | CBinOp::Or | CBinOp::Xor => r,
            _ => wrap(r, kind),
        };
        Ok(CVal::I(r))
    }
}

fn eval_call(f: CIntrinsic, kind: CNumKind, args: &[CVal]) -> Result<CVal, HlsirError> {
    Ok(match f {
        CIntrinsic::Exp => CVal::F(args[0].as_f()?.exp()),
        CIntrinsic::Log => CVal::F(args[0].as_f()?.ln()),
        CIntrinsic::Sqrt => CVal::F(args[0].as_f()?.sqrt()),
        CIntrinsic::Abs => {
            if kind.is_float() {
                CVal::F(args[0].as_f()?.abs())
            } else {
                CVal::I(args[0].as_i()?.wrapping_abs())
            }
        }
        CIntrinsic::Min | CIntrinsic::Max => {
            let take_min = matches!(f, CIntrinsic::Min);
            if kind.is_float() {
                let (x, y) = (args[0].as_f()?, args[1].as_f()?);
                CVal::F(if take_min { x.min(y) } else { x.max(y) })
            } else {
                let (x, y) = (args[0].as_i()?, args[1].as_i()?);
                CVal::I(if take_min { x.min(y) } else { x.max(y) })
            }
        }
    })
}

fn cast(v: CVal, from: CNumKind, to: CNumKind) -> Result<CVal, HlsirError> {
    Ok(match (from.is_float(), to.is_float()) {
        (false, false) => CVal::I(wrap(v.as_i()?, to)),
        (false, true) => CVal::F(round(v.as_i()? as f64, to)),
        (true, false) => {
            let f = v.as_f()?;
            let i = if f.is_nan() { 0 } else { f as i64 };
            CVal::I(wrap(i, to))
        }
        (true, true) => CVal::F(round(v.as_f()?, to)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn scale_kernel() -> CFunction {
        // out[i] = in[i] * 2.0 for i in 0..n
        CFunction {
            name: "scale".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "in_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "i".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs: LoopAttrs::none(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::bin(
                        CBinOp::Mul,
                        CNumKind::F32,
                        Expr::index("in_1", Expr::var("i")),
                        Expr::ConstF(2.0),
                    ),
                }],
            }],
        }
    }

    #[test]
    fn runs_counted_loop() {
        let f = scale_kernel();
        let mut buffers = BTreeMap::new();
        buffers.insert(
            "in_1".to_string(),
            vec![CVal::F(1.0), CVal::F(2.5), CVal::F(-3.0)],
        );
        buffers.insert("out_1".to_string(), vec![CVal::F(0.0); 3]);
        let mut scalars = BTreeMap::new();
        scalars.insert("n".to_string(), CVal::I(3));
        Executor::new(&f).run(&scalars, &mut buffers).unwrap();
        assert_eq!(
            buffers["out_1"],
            vec![CVal::F(2.0), CVal::F(5.0), CVal::F(-6.0)]
        );
    }

    #[test]
    fn missing_binding_is_an_error() {
        let f = scale_kernel();
        let mut buffers = BTreeMap::new();
        let scalars = BTreeMap::new();
        let e = Executor::new(&f).run(&scalars, &mut buffers).unwrap_err();
        assert!(e.to_string().contains("missing scalar"));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let f = scale_kernel();
        let mut buffers = BTreeMap::new();
        buffers.insert("in_1".to_string(), vec![CVal::F(1.0)]);
        buffers.insert("out_1".to_string(), vec![CVal::F(0.0)]);
        let mut scalars = BTreeMap::new();
        scalars.insert("n".to_string(), CVal::I(5));
        assert!(Executor::new(&f).run(&scalars, &mut buffers).is_err());
    }

    #[test]
    fn int_semantics_match_jvm() {
        assert_eq!(
            eval_bin(
                CBinOp::Add,
                CNumKind::I32,
                CVal::I(i32::MAX as i64),
                CVal::I(1)
            )
            .unwrap(),
            CVal::I(i32::MIN as i64)
        );
        assert_eq!(
            eval_bin(CBinOp::Xor, CNumKind::I32, CVal::I(-1), CVal::I(0xff)).unwrap(),
            CVal::I(-256)
        );
    }

    #[test]
    fn f32_rounding() {
        let r = eval_bin(CBinOp::Add, CNumKind::F32, CVal::F(0.1), CVal::F(0.2)).unwrap();
        assert_eq!(r, CVal::F((0.1f32 + 0.2f32) as f64));
    }

    #[test]
    fn div_by_zero_is_an_error() {
        assert!(eval_bin(CBinOp::Div, CNumKind::I32, CVal::I(1), CVal::I(0)).is_err());
    }

    #[test]
    fn select_and_compare() {
        let e = Expr::Select(
            Box::new(Expr::bin(
                CBinOp::Gt,
                CNumKind::F64,
                Expr::ConstF(2.0),
                Expr::ConstF(1.0),
            )),
            Box::new(Expr::ConstI(10)),
            Box::new(Expr::ConstI(20)),
        );
        let f = CFunction {
            name: "t".into(),
            params: vec![],
            body: vec![Stmt::Decl {
                name: "x".into(),
                ty: CType::Int(32),
                init: Some(e),
            }],
        };
        let mut env_bufs = BTreeMap::new();
        Executor::new(&f)
            .run(&BTreeMap::new(), &mut env_bufs)
            .unwrap();
    }

    #[test]
    fn observed_run_reports_uninit_reads() {
        // int s; acc[4]; out[0] = s + acc[2] — both reads are fresh.
        let f = CFunction {
            name: "u".into(),
            params: vec![Param {
                name: "out_1".into(),
                ty: CType::Float,
                kind: ParamKind::BufOut,
                elems_per_task: Some(1),
                broadcast: false,
            }],
            body: vec![
                Stmt::Decl {
                    name: "s".into(),
                    ty: CType::Int(32),
                    init: None,
                },
                Stmt::DeclArr {
                    name: "acc".into(),
                    ty: CType::Float,
                    len: 4,
                },
                Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::iadd(Expr::var("s"), Expr::index("acc", Expr::ConstI(2))),
                },
            ],
        };
        let mut buffers = BTreeMap::new();
        buffers.insert("out_1".to_string(), vec![CVal::F(0.0)]);
        let obs = Executor::new(&f)
            .run_observed(&BTreeMap::new(), &mut buffers)
            .unwrap();
        assert!(obs.uninit_reads.contains(&("s".to_string(), None)));
        assert!(obs.uninit_reads.contains(&("acc".to_string(), Some(2))));
        assert_eq!(obs.uninit_reads.len(), 2);
    }

    #[test]
    fn observed_run_is_clean_after_writes() {
        // acc[1]; acc[0] = 3; out[0] = acc[0] — no fresh reads.
        let f = CFunction {
            name: "c".into(),
            params: vec![Param {
                name: "out_1".into(),
                ty: CType::Float,
                kind: ParamKind::BufOut,
                elems_per_task: Some(1),
                broadcast: false,
            }],
            body: vec![
                Stmt::DeclArr {
                    name: "acc".into(),
                    ty: CType::Float,
                    len: 1,
                },
                Stmt::Assign {
                    lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::ConstI(3),
                },
                Stmt::Assign {
                    lhs: LValue::Index("out_1".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::index("acc", Expr::ConstI(0)),
                },
            ],
        };
        let mut buffers = BTreeMap::new();
        buffers.insert("out_1".to_string(), vec![CVal::F(0.0)]);
        let obs = Executor::new(&f)
            .run_observed(&BTreeMap::new(), &mut buffers)
            .unwrap();
        assert!(obs.uninit_reads.is_empty());
    }

    #[test]
    fn iteration_order_override_permutes_the_loop() {
        // out[i] = in[i] * 2 visited in reverse order: same result.
        let f = scale_kernel();
        let mut fwd = BTreeMap::new();
        fwd.insert(
            "in_1".to_string(),
            vec![CVal::F(1.0), CVal::F(2.5), CVal::F(-3.0)],
        );
        fwd.insert("out_1".to_string(), vec![CVal::F(0.0); 3]);
        let mut rev = fwd.clone();
        let mut scalars = BTreeMap::new();
        scalars.insert("n".to_string(), CVal::I(3));
        Executor::new(&f).run(&scalars, &mut fwd).unwrap();
        Executor::new(&f)
            .with_iteration_order(LoopId(0), vec![2, 1, 0])
            .run(&scalars, &mut rev)
            .unwrap();
        assert_eq!(fwd["out_1"], rev["out_1"]);
    }

    #[test]
    fn fuel_bounds_execution() {
        let f = scale_kernel();
        let mut buffers = BTreeMap::new();
        buffers.insert("in_1".to_string(), vec![CVal::F(0.0); 100]);
        buffers.insert("out_1".to_string(), vec![CVal::F(0.0); 100]);
        let mut scalars = BTreeMap::new();
        scalars.insert("n".to_string(), CVal::I(100));
        let e = Executor::new(&f)
            .with_fuel(10)
            .run(&scalars, &mut buffers)
            .unwrap_err();
        assert!(e.to_string().contains("budget"));
    }
}
