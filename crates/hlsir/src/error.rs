//! Error type for HLS IR operations.

use std::fmt;

/// Errors from IR analysis or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum HlsirError {
    /// The executor hit a dynamic fault.
    Exec(String),
    /// Analysis found IR outside the supported subset.
    Analysis(String),
}

impl fmt::Display for HlsirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsirError::Exec(m) => write!(f, "ir execution fault: {m}"),
            HlsirError::Analysis(m) => write!(f, "ir analysis error: {m}"),
        }
    }
}

impl std::error::Error for HlsirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(HlsirError::Exec("x".into()).to_string().contains("fault"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<HlsirError>();
    }
}
