#![warn(missing_docs)]

//! # s2fa-hlsir — the HLS C intermediate representation
//!
//! S2FA's bytecode-to-C compiler targets *HLS C*: sequential C with
//! constant-size arrays, no object orientation, and vendor pragmas. This
//! crate defines that target:
//!
//! * [`ast`] — the C AST ([`CFunction`], [`Stmt`], [`Expr`]) with per-loop
//!   optimization attributes ([`LoopAttrs`]) that the Merlin-style
//!   transformation library (`s2fa-merlin`) manipulates;
//! * [`printer`] — emission of compilable-looking HLS C source with
//!   `#pragma ACCEL` directives, the artifact a user would hand to the
//!   vendor flow;
//! * [`analysis`] — the ROSE/polyhedral substitute: loop-nest extraction,
//!   trip counts, per-iteration operation counts, access-stride
//!   classification, and loop-carried-dependence detection, summarized in a
//!   [`KernelSummary`] that drives design-space identification (paper §4.1)
//!   and the HLS performance model (`s2fa-hlssim`);
//! * [`exec`] — a functional executor for the IR, used to prove that the
//!   generated C is equivalent to the original bytecode (same numeric
//!   semantics as the `s2fa-sjvm` interpreter);
//! * [`dataflow`] — CFG lowering, a generic fixpoint solver, reaching
//!   definitions / liveness / def-use chains, and the affine
//!   array-dependence engine behind the E3xx lint rules and the
//!   dependence-aware DSE prescreen.

pub mod analysis;
pub mod ast;
pub mod dataflow;
pub mod exec;
pub mod opcount;
pub mod printer;

mod error;

pub use analysis::{Access, BufferDir, BufferInfo, CarriedDep, KernelSummary, LoopInfo, Stride};
pub use ast::{
    CBinOp, CFunction, CIntrinsic, CNumKind, CType, Expr, LValue, LoopAttrs, LoopId, Param,
    ParamKind, PipelineMode, Stmt,
};
pub use dataflow::{KernelDataflow, LoopDataflow};
pub use error::HlsirError;
pub use exec::{CVal, Executor, Observed};
pub use opcount::OpCounts;
