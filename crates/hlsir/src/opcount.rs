//! Operation counts — the raw material of the HLS performance model.

use crate::ast::{CBinOp, CIntrinsic, CNumKind};
use std::ops::{Add, AddAssign};

/// Counts of each operation class in a region of IR (typically one loop
/// body, per iteration, excluding nested loops).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Integer add/sub/logic/shift/compare.
    pub int_alu: u32,
    /// Integer multiplies.
    pub int_mul: u32,
    /// Integer divides/remainders.
    pub int_div: u32,
    /// Floating add/sub.
    pub fadd: u32,
    /// Floating multiplies.
    pub fmul: u32,
    /// Floating divides.
    pub fdiv: u32,
    /// Floating comparisons/select.
    pub fcmp: u32,
    /// `sqrt` calls.
    pub fsqrt: u32,
    /// `exp`/`log` calls.
    pub ftrans: u32,
    /// Buffer (array) reads.
    pub mem_read: u32,
    /// Buffer (array) writes.
    pub mem_write: u32,
}

impl OpCounts {
    /// An empty count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total arithmetic operations (excluding memory).
    pub fn total_arith(&self) -> u32 {
        self.int_alu
            + self.int_mul
            + self.int_div
            + self.fadd
            + self.fmul
            + self.fdiv
            + self.fcmp
            + self.fsqrt
            + self.ftrans
    }

    /// Total floating-point operations.
    pub fn total_float(&self) -> u32 {
        self.fadd + self.fmul + self.fdiv + self.fcmp + self.fsqrt + self.ftrans
    }

    /// Total memory operations.
    pub fn total_mem(&self) -> u32 {
        self.mem_read + self.mem_write
    }

    /// Records one binary operation of the given kind.
    pub fn record_bin(&mut self, op: CBinOp, kind: CNumKind) {
        if kind.is_float() {
            match op {
                CBinOp::Add | CBinOp::Sub => self.fadd += 1,
                CBinOp::Mul => self.fmul += 1,
                CBinOp::Div | CBinOp::Rem => self.fdiv += 1,
                _ => self.fcmp += 1,
            }
        } else {
            match op {
                CBinOp::Mul => self.int_mul += 1,
                CBinOp::Div | CBinOp::Rem => self.int_div += 1,
                _ => self.int_alu += 1,
            }
        }
    }

    /// Records one intrinsic call of the given kind.
    pub fn record_call(&mut self, f: CIntrinsic, kind: CNumKind) {
        match f {
            CIntrinsic::Exp | CIntrinsic::Log => self.ftrans += 1,
            CIntrinsic::Sqrt => self.fsqrt += 1,
            CIntrinsic::Abs | CIntrinsic::Min | CIntrinsic::Max => {
                if kind.is_float() {
                    self.fcmp += 1;
                } else {
                    self.int_alu += 1;
                }
            }
        }
    }

    /// Scales every count by `factor` (used when flattening sub-loops).
    pub fn scaled(&self, factor: u32) -> OpCounts {
        OpCounts {
            int_alu: self.int_alu * factor,
            int_mul: self.int_mul * factor,
            int_div: self.int_div * factor,
            fadd: self.fadd * factor,
            fmul: self.fmul * factor,
            fdiv: self.fdiv * factor,
            fcmp: self.fcmp * factor,
            fsqrt: self.fsqrt * factor,
            ftrans: self.ftrans * factor,
            mem_read: self.mem_read * factor,
            mem_write: self.mem_write * factor,
        }
    }
}

impl Add for OpCounts {
    type Output = OpCounts;

    fn add(mut self, rhs: OpCounts) -> OpCounts {
        self += rhs;
        self
    }
}

impl AddAssign for OpCounts {
    fn add_assign(&mut self, rhs: OpCounts) {
        self.int_alu += rhs.int_alu;
        self.int_mul += rhs.int_mul;
        self.int_div += rhs.int_div;
        self.fadd += rhs.fadd;
        self.fmul += rhs.fmul;
        self.fdiv += rhs.fdiv;
        self.fcmp += rhs.fcmp;
        self.fsqrt += rhs.fsqrt;
        self.ftrans += rhs.ftrans;
        self.mem_read += rhs.mem_read;
        self.mem_write += rhs.mem_write;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut c = OpCounts::new();
        c.record_bin(CBinOp::Add, CNumKind::F32);
        c.record_bin(CBinOp::Mul, CNumKind::F32);
        c.record_bin(CBinOp::Add, CNumKind::I32);
        c.record_bin(CBinOp::Lt, CNumKind::F64);
        c.record_call(CIntrinsic::Exp, CNumKind::F64);
        assert_eq!(c.fadd, 1);
        assert_eq!(c.fmul, 1);
        assert_eq!(c.int_alu, 1);
        assert_eq!(c.fcmp, 1);
        assert_eq!(c.ftrans, 1);
        assert_eq!(c.total_arith(), 5);
        assert_eq!(c.total_float(), 4);
    }

    #[test]
    fn add_and_scale() {
        let mut a = OpCounts::new();
        a.fadd = 2;
        a.mem_read = 3;
        let b = a;
        let sum = a + b;
        assert_eq!(sum.fadd, 4);
        assert_eq!(sum.mem_read, 6);
        let s = sum.scaled(10);
        assert_eq!(s.fadd, 40);
        assert_eq!(s.total_mem(), 60);
    }

    #[test]
    fn int_div_classified() {
        let mut c = OpCounts::new();
        c.record_bin(CBinOp::Rem, CNumKind::I32);
        c.record_bin(CBinOp::Div, CNumKind::I64);
        assert_eq!(c.int_div, 2);
    }
}
