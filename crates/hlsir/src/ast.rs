//! The HLS C abstract syntax tree.
//!
//! The AST is deliberately restricted to the subset an HLS frontend accepts
//! from S2FA's code generator: `for` loops counting from 0 to a bound,
//! constant-size local arrays, flat pointer parameters, and expressions
//! over numeric scalars. Loops carry a stable [`LoopId`] and a mutable
//! [`LoopAttrs`] record — the handle through which the Merlin-style
//! transformations and HLS pragmas are applied.

use std::fmt;

/// Scalar C types used on the accelerator interface and in kernel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CType {
    /// Signed integer of 8, 16, 32 or 64 bits.
    Int(u16),
    /// Unsigned integer of 8, 16, 32 or 64 bits.
    UInt(u16),
    /// 32-bit IEEE float.
    Float,
    /// 64-bit IEEE float.
    Double,
}

impl CType {
    /// Bit width of the type.
    pub fn bits(self) -> u32 {
        match self {
            CType::Int(b) | CType::UInt(b) => b as u32,
            CType::Float => 32,
            CType::Double => 64,
        }
    }

    /// True for `Float`/`Double`.
    pub fn is_float(self) -> bool {
        matches!(self, CType::Float | CType::Double)
    }

    /// The C spelling of the type.
    pub fn c_name(self) -> &'static str {
        match self {
            CType::Int(8) => "char",
            CType::Int(16) => "short",
            CType::Int(32) => "int",
            CType::Int(64) => "long long",
            CType::UInt(8) => "unsigned char",
            CType::UInt(16) => "unsigned short",
            CType::UInt(32) => "unsigned int",
            CType::UInt(64) => "unsigned long long",
            CType::Float => "float",
            CType::Double => "double",
            CType::Int(_) | CType::UInt(_) => "int",
        }
    }

    /// The numeric evaluation kind of this type.
    pub fn num_kind(self) -> CNumKind {
        match self {
            CType::Float => CNumKind::F32,
            CType::Double => CNumKind::F64,
            CType::Int(64) | CType::UInt(64) => CNumKind::I64,
            _ => CNumKind::I32,
        }
    }
}

impl fmt::Display for CType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.c_name())
    }
}

/// Numeric evaluation kind attached to arithmetic nodes; determines the
/// wrap/rounding semantics (mirrors `s2fa-sjvm`'s `NumKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CNumKind {
    /// 32-bit wrapping integer arithmetic.
    I32,
    /// 64-bit wrapping integer arithmetic.
    I64,
    /// `float` arithmetic (rounds through f32).
    F32,
    /// `double` arithmetic.
    F64,
}

impl CNumKind {
    /// True for floating kinds.
    pub fn is_float(self) -> bool {
        matches!(self, CNumKind::F32 | CNumKind::F64)
    }

    /// Bit width of values of this kind.
    pub fn bits(self) -> u32 {
        match self {
            CNumKind::I32 | CNumKind::F32 => 32,
            CNumKind::I64 | CNumKind::F64 => 64,
        }
    }
}

/// Binary operators (comparisons produce a 0/1 `I32`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// Addition `+`.
    Add,
    /// Subtraction `-`.
    Sub,
    /// Multiplication `*`.
    Mul,
    /// Division `/`.
    Div,
    /// Remainder `%`.
    Rem,
    /// Shift left `<<`.
    Shl,
    /// Arithmetic shift right `>>`.
    Shr,
    /// Logical shift right (`>>>` in Java).
    UShr,
    /// Bitwise and `&`.
    And,
    /// Bitwise or `|`.
    Or,
    /// Bitwise xor `^`.
    Xor,
    /// Less-than comparison (yields 0/1).
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
}

impl CBinOp {
    /// True for the six comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge | CBinOp::Eq | CBinOp::Ne
        )
    }

    /// The C spelling of the operator.
    pub fn c_symbol(self) -> &'static str {
        match self {
            CBinOp::Add => "+",
            CBinOp::Sub => "-",
            CBinOp::Mul => "*",
            CBinOp::Div => "/",
            CBinOp::Rem => "%",
            CBinOp::Shl => "<<",
            CBinOp::Shr => ">>",
            CBinOp::UShr => ">>",
            CBinOp::And => "&",
            CBinOp::Or => "|",
            CBinOp::Xor => "^",
            CBinOp::Lt => "<",
            CBinOp::Le => "<=",
            CBinOp::Gt => ">",
            CBinOp::Ge => ">=",
            CBinOp::Eq => "==",
            CBinOp::Ne => "!=",
        }
    }
}

/// Math intrinsics available in the HLS math library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CIntrinsic {
    /// `expf(x)`.
    Exp,
    /// `logf(x)`.
    Log,
    /// `sqrtf(x)`.
    Sqrt,
    /// `fabs(x)`.
    Abs,
    /// `fmin(a, b)`.
    Min,
    /// `fmax(a, b)`.
    Max,
}

impl CIntrinsic {
    /// Number of arguments.
    pub fn arity(self) -> usize {
        match self {
            CIntrinsic::Exp | CIntrinsic::Log | CIntrinsic::Sqrt | CIntrinsic::Abs => 1,
            CIntrinsic::Min | CIntrinsic::Max => 2,
        }
    }

    /// The C function name.
    pub fn c_name(self) -> &'static str {
        match self {
            CIntrinsic::Exp => "expf",
            CIntrinsic::Log => "logf",
            CIntrinsic::Sqrt => "sqrtf",
            CIntrinsic::Abs => "fabs",
            CIntrinsic::Min => "fmin",
            CIntrinsic::Max => "fmax",
        }
    }
}

/// An rvalue expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    ConstI(i64),
    /// Floating literal.
    ConstF(f64),
    /// Scalar variable reference.
    Var(String),
    /// Array element read `base[idx]`.
    Index(String, Box<Expr>),
    /// Binary operation with explicit numeric kind.
    Bin(CBinOp, CNumKind, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(CNumKind, Box<Expr>),
    /// Math intrinsic call.
    Call(CIntrinsic, CNumKind, Vec<Expr>),
    /// Numeric conversion.
    Cast(CNumKind, CNumKind, Box<Expr>),
    /// Ternary `cond ? a : b`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Variable reference helper.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Array read helper.
    pub fn index(base: impl Into<String>, idx: Expr) -> Expr {
        Expr::Index(base.into(), Box::new(idx))
    }

    /// Binary operation helper.
    pub fn bin(op: CBinOp, kind: CNumKind, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, kind, Box::new(a), Box::new(b))
    }

    /// Integer-kind addition helper (common in index arithmetic).
    pub fn iadd(a: Expr, b: Expr) -> Expr {
        Expr::bin(CBinOp::Add, CNumKind::I32, a, b)
    }

    /// Integer-kind multiplication helper.
    pub fn imul(a: Expr, b: Expr) -> Expr {
        Expr::bin(CBinOp::Mul, CNumKind::I32, a, b)
    }

    /// Collects the names of all variables read by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::ConstI(_) | Expr::ConstF(_) => {}
            Expr::Var(n) => out.push(n.clone()),
            Expr::Index(base, idx) => {
                out.push(base.clone());
                idx.free_vars(out);
            }
            Expr::Bin(_, _, a, b) => {
                a.free_vars(out);
                b.free_vars(out);
            }
            Expr::Neg(_, a) => a.free_vars(out),
            Expr::Call(_, _, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::Cast(_, _, a) => a.free_vars(out),
            Expr::Select(c, a, b) => {
                c.free_vars(out);
                a.free_vars(out);
                b.free_vars(out);
            }
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(String),
    /// Array element `base[idx]`.
    Index(String, Box<Expr>),
}

impl LValue {
    /// The variable or array name being written.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) | LValue::Index(n, _) => n,
        }
    }
}

/// Pipeline directive state of a loop (Table 1's pipeline factor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PipelineMode {
    /// No pipelining: iterations execute sequentially.
    #[default]
    Off,
    /// Fine-grained pipelining of this loop.
    On,
    /// Merlin `flatten`: pipeline this loop and fully unroll all sub-loops.
    Flatten,
}

impl fmt::Display for PipelineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineMode::Off => write!(f, "off"),
            PipelineMode::On => write!(f, "on"),
            PipelineMode::Flatten => write!(f, "flatten"),
        }
    }
}

/// Optimization attributes attached to a loop (the applied directive state;
/// printed as `#pragma ACCEL` lines above the loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LoopAttrs {
    /// Pipeline directive.
    pub pipeline: PipelineMode,
    /// Parallel (unroll / PE replication) factor; 1 = off.
    pub parallel: u32,
    /// Tiling factor; `None` = off.
    pub tile: Option<u32>,
    /// Whether a tree-reduction rewrite was applied to the loop's
    /// accumulation (changes the recurrence latency seen by HLS).
    pub tree_reduce: bool,
}

impl LoopAttrs {
    /// Attributes with every optimization disabled (the area-driven state).
    pub fn none() -> LoopAttrs {
        LoopAttrs::default()
    }

    /// Effective parallel factor (always at least 1).
    pub fn parallel_factor(&self) -> u32 {
        self.parallel.max(1)
    }
}

/// Stable loop identifier, assigned by the code generator and preserved by
/// transformations so design-space factors stay attached to "their" loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `ty name[len];` — constant-size local array (all JVM `new` sites
    /// compile to these, per paper §3.3).
    DeclArr {
        /// Array name.
        name: String,
        /// Element type.
        ty: CType,
        /// Constant length.
        len: u32,
    },
    /// `ty name = init;`
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: CType,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `lhs = rhs;`
    Assign {
        /// The assigned location.
        lhs: LValue,
        /// The assigned value.
        rhs: Expr,
    },
    /// `for (int var = 0; var < bound; var++) { body }`
    For {
        /// Stable loop identifier.
        id: LoopId,
        /// Induction variable name.
        var: String,
        /// Loop bound; constant for every loop S2FA generates.
        bound: Expr,
        /// Statically resolved trip count, if the bound is constant.
        trip_count: Option<u32>,
        /// Applied optimization directives.
        attrs: LoopAttrs,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `if (cond) { then } else { els }`
    If {
        /// Branch condition (non-zero = taken).
        cond: Expr,
        /// Taken branch.
        then: Vec<Stmt>,
        /// Fallthrough branch (may be empty).
        els: Vec<Stmt>,
    },
}

impl Stmt {
    /// Constant-bound counted loop helper.
    pub fn counted_for(id: LoopId, var: impl Into<String>, tc: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            id,
            var: var.into(),
            bound: Expr::ConstI(tc as i64),
            trip_count: Some(tc),
            attrs: LoopAttrs::default(),
            body,
        }
    }
}

/// Role of a top-level kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Scalar passed by value (e.g. the batch size `N`).
    ScalarIn,
    /// Input buffer (read-only pointer).
    BufIn,
    /// Output buffer (write-only pointer).
    BufOut,
}

/// A kernel parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Element type.
    pub ty: CType,
    /// Role on the interface.
    pub kind: ParamKind,
    /// For buffers: number of elements *per task* (the flattened width of
    /// one RDD record). `None` for scalars.
    pub elems_per_task: Option<u32>,
    /// True for broadcast buffers: one copy shared by every task of the
    /// batch (captured closure state), cached on-chip by the generated
    /// design.
    pub broadcast: bool,
}

/// A generated HLS C kernel function.
///
/// By construction (paper §3.2), the outermost statement of `body` is the
/// template loop over tasks inserted to realize the RDD operator semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct CFunction {
    /// Kernel name.
    pub name: String,
    /// Interface parameters. The first is always the task count `N`.
    pub params: Vec<Param>,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl CFunction {
    /// Visits every loop in the function, outer loops before inner.
    pub fn visit_loops<'a>(&'a self, mut f: impl FnMut(&'a Stmt)) {
        fn walk<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
            for s in stmts {
                match s {
                    Stmt::For { body, .. } => {
                        f(s);
                        walk(body, f);
                    }
                    Stmt::If { then, els, .. } => {
                        walk(then, f);
                        walk(els, f);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, &mut f);
    }

    /// Mutable loop lookup by id.
    pub fn loop_mut(&mut self, id: LoopId) -> Option<&mut Stmt> {
        fn walk(stmts: &mut [Stmt], id: LoopId) -> Option<&mut Stmt> {
            for s in stmts {
                match s {
                    Stmt::For { id: lid, .. } if *lid == id => return Some(s),
                    Stmt::For { body, .. } => {
                        if let Some(hit) = walk(body, id) {
                            return Some(hit);
                        }
                    }
                    Stmt::If { then, els, .. } => {
                        if let Some(hit) = walk(then, id) {
                            return Some(hit);
                        }
                        if let Some(hit) = walk(els, id) {
                            return Some(hit);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        walk(&mut self.body, id)
    }

    /// Immutable loop lookup by id.
    pub fn loop_stmt(&self, id: LoopId) -> Option<&Stmt> {
        let mut found = None;
        self.visit_loops(|s| {
            if let Stmt::For { id: lid, .. } = s {
                if *lid == id && found.is_none() {
                    found = Some(s);
                }
            }
        });
        found
    }

    /// Ids of all loops, outer before inner.
    pub fn loop_ids(&self) -> Vec<LoopId> {
        let mut ids = Vec::new();
        self.visit_loops(|s| {
            if let Stmt::For { id, .. } = s {
                ids.push(*id);
            }
        });
        ids
    }

    /// The buffer parameters (everything except scalars).
    pub fn buffers(&self) -> impl Iterator<Item = &Param> {
        self.params.iter().filter(|p| p.kind != ParamKind::ScalarIn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fn() -> CFunction {
        CFunction {
            name: "kernel".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "in_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufIn,
                    elems_per_task: Some(8),
                    broadcast: false,
                },
                Param {
                    name: "out_1".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::counted_for(
                LoopId(0),
                "i",
                128,
                vec![Stmt::counted_for(
                    LoopId(1),
                    "j",
                    8,
                    vec![Stmt::Assign {
                        lhs: LValue::Index("out_1".into(), Box::new(Expr::var("i"))),
                        rhs: Expr::index("in_1", Expr::var("j")),
                    }],
                )],
            )],
        }
    }

    #[test]
    fn loop_traversal_is_outer_first() {
        let f = sample_fn();
        assert_eq!(f.loop_ids(), vec![LoopId(0), LoopId(1)]);
    }

    #[test]
    fn loop_lookup() {
        let mut f = sample_fn();
        assert!(f.loop_stmt(LoopId(1)).is_some());
        assert!(f.loop_stmt(LoopId(9)).is_none());
        if let Some(Stmt::For { attrs, .. }) = f.loop_mut(LoopId(1)) {
            attrs.parallel = 4;
        }
        if let Some(Stmt::For { attrs, .. }) = f.loop_stmt(LoopId(1)) {
            assert_eq!(attrs.parallel, 4);
        } else {
            panic!("loop vanished");
        }
    }

    #[test]
    fn buffers_excludes_scalars() {
        let f = sample_fn();
        let names: Vec<_> = f.buffers().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["in_1", "out_1"]);
    }

    #[test]
    fn free_vars_of_nested_expr() {
        let e = Expr::bin(
            CBinOp::Add,
            CNumKind::F32,
            Expr::index("a", Expr::var("i")),
            Expr::Select(
                Box::new(Expr::var("c")),
                Box::new(Expr::var("x")),
                Box::new(Expr::ConstF(0.0)),
            ),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["a", "i", "c", "x"]);
    }

    #[test]
    fn ctype_properties() {
        assert_eq!(CType::Float.bits(), 32);
        assert!(CType::Double.is_float());
        assert_eq!(CType::Int(8).c_name(), "char");
        assert_eq!(CType::UInt(64).num_kind(), CNumKind::I64);
        assert_eq!(CType::Int(16).num_kind(), CNumKind::I32);
    }

    #[test]
    fn cmp_ops_classified() {
        assert!(CBinOp::Le.is_cmp());
        assert!(!CBinOp::Add.is_cmp());
        assert_eq!(CBinOp::Ne.c_symbol(), "!=");
    }

    #[test]
    fn pipeline_mode_default_is_off() {
        assert_eq!(PipelineMode::default(), PipelineMode::Off);
        assert_eq!(LoopAttrs::none().parallel_factor(), 1);
    }
}
