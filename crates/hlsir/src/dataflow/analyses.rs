//! Concrete dataflow analyses: reaching definitions, liveness, and
//! def-use/use-def chains.
//!
//! All three answer per-statement queries by replaying the fixpoint
//! block sets through the statements of each block once, so queries are
//! O(1) lookups after construction.

use super::cfg::{BlockId, Cfg, StmtId, VarId};
use super::solver::{solve, BitSet, DataflowProblem, Direction};
use std::collections::HashMap;

/// One definition site in the reaching-definitions universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefSite {
    /// The defined variable.
    pub var: VarId,
    /// The defining statement; `None` for the synthetic entry definition
    /// of a parameter or interface buffer.
    pub stmt: Option<StmtId>,
    /// True when the definition carries no value (uninitialized
    /// declaration): a read reached *only* by such sites reads garbage.
    pub uninit: bool,
    /// True when the definition may not overwrite (whole-array write):
    /// it generates without killing.
    pub may: bool,
}

/// Reaching definitions: which def sites can reach each statement.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// The def-site universe.
    pub sites: Vec<DefSite>,
    /// Per-statement set of sites reaching the program point just before
    /// the statement executes (indexed by [`StmtId`]).
    pub before: Vec<BitSet>,
    sites_of_var: HashMap<VarId, Vec<usize>>,
    sites_of_stmt: HashMap<StmtId, Vec<usize>>,
}

struct ReachingProblem<'a> {
    cfg: &'a Cfg,
    sites: &'a [DefSite],
    sites_of_var: &'a HashMap<VarId, Vec<usize>>,
    sites_of_stmt: &'a HashMap<StmtId, Vec<usize>>,
    entry_sites: Vec<usize>,
}

impl ReachingProblem<'_> {
    fn apply_stmt(&self, set: &mut BitSet, sid: StmtId) {
        let info = self.cfg.stmt(sid);
        for v in &info.defs {
            // Must-def: kill every other site of the variable.
            if let Some(all) = self.sites_of_var.get(v) {
                for &s in all {
                    set.unset(s);
                }
            }
        }
        if let Some(own) = self.sites_of_stmt.get(&sid) {
            for &s in own {
                set.set(s);
            }
        }
    }
}

impl DataflowProblem for ReachingProblem<'_> {
    fn direction(&self) -> Direction {
        Direction::Forward
    }
    fn bits(&self) -> usize {
        self.sites.len()
    }
    fn boundary(&self, set: &mut BitSet) {
        for &s in &self.entry_sites {
            set.set(s);
        }
    }
    fn transfer(&self, cfg: &Cfg, block: BlockId, input: &BitSet, out: &mut BitSet) {
        out.clear();
        out.union_with(input);
        for &sid in &cfg.blocks[block.0 as usize].stmts {
            self.apply_stmt(out, sid);
        }
    }
}

impl ReachingDefs {
    /// Runs the analysis over a CFG.
    pub fn compute(cfg: &Cfg) -> ReachingDefs {
        let mut sites: Vec<DefSite> = Vec::new();
        let mut sites_of_var: HashMap<VarId, Vec<usize>> = HashMap::new();
        let mut sites_of_stmt: HashMap<StmtId, Vec<usize>> = HashMap::new();
        let mut entry_sites = Vec::new();
        for &v in &cfg.entry_defs {
            let idx = sites.len();
            sites.push(DefSite {
                var: v,
                stmt: None,
                uninit: false,
                may: false,
            });
            sites_of_var.entry(v).or_default().push(idx);
            entry_sites.push(idx);
        }
        for (i, info) in cfg.stmts.iter().enumerate() {
            let sid = StmtId(i as u32);
            for &v in &info.defs {
                let idx = sites.len();
                sites.push(DefSite {
                    var: v,
                    stmt: Some(sid),
                    uninit: info.uninit,
                    may: false,
                });
                sites_of_var.entry(v).or_default().push(idx);
                sites_of_stmt.entry(sid).or_default().push(idx);
            }
            for &v in &info.may_defs {
                let idx = sites.len();
                sites.push(DefSite {
                    var: v,
                    stmt: Some(sid),
                    uninit: info.uninit,
                    may: true,
                });
                sites_of_var.entry(v).or_default().push(idx);
                sites_of_stmt.entry(sid).or_default().push(idx);
            }
        }

        let problem = ReachingProblem {
            cfg,
            sites: &sites,
            sites_of_var: &sites_of_var,
            sites_of_stmt: &sites_of_stmt,
            entry_sites,
        };
        let sol = solve(cfg, &problem);

        // Replay each block once to get the set before every statement.
        // Note: a must-def statement's *own* kill+gen is applied after its
        // uses are evaluated, so `before` is the right set for its reads.
        let mut before: Vec<BitSet> = (0..cfg.stmt_count())
            .map(|_| BitSet::new(sites.len()))
            .collect();
        for (bi, block) in cfg.blocks.iter().enumerate() {
            let mut cur = sol.input[bi].clone();
            for &sid in &block.stmts {
                before[sid.0 as usize].union_with(&cur);
                problem.apply_stmt(&mut cur, sid);
            }
        }

        ReachingDefs {
            sites,
            before,
            sites_of_var,
            sites_of_stmt,
        }
    }

    /// The def sites of `var` reaching the point just before `stmt`.
    pub fn reaching(&self, stmt: StmtId, var: VarId) -> Vec<&DefSite> {
        let set = &self.before[stmt.0 as usize];
        self.sites_of_var
            .get(&var)
            .map(|all| {
                all.iter()
                    .filter(|&&s| set.get(s))
                    .map(|&s| &self.sites[s])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Indices (into [`ReachingDefs::sites`]) of `var`'s sites reaching
    /// just before `stmt`.
    pub fn reaching_indices(&self, stmt: StmtId, var: VarId) -> Vec<usize> {
        let set = &self.before[stmt.0 as usize];
        self.sites_of_var
            .get(&var)
            .map(|all| all.iter().filter(|&&s| set.get(s)).copied().collect())
            .unwrap_or_default()
    }

    /// The def-site indices generated by `stmt`.
    pub fn sites_of_stmt(&self, stmt: StmtId) -> &[usize] {
        self.sites_of_stmt
            .get(&stmt)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Liveness: which variables are live after each statement.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Per-statement set of variables live just *after* the statement
    /// executes (indexed by [`StmtId`]).
    pub after: Vec<BitSet>,
}

fn live_apply(cfg: &Cfg, set: &mut BitSet, sid: StmtId) {
    let info = cfg.stmt(sid);
    for v in &info.defs {
        set.unset(v.0 as usize);
    }
    // May-defs do not kill.
    for v in &info.uses {
        set.set(v.0 as usize);
    }
}

struct LivenessSized<'a> {
    cfg: &'a Cfg,
}

impl DataflowProblem for LivenessSized<'_> {
    fn direction(&self) -> Direction {
        Direction::Backward
    }
    fn bits(&self) -> usize {
        self.cfg.vars.len()
    }
    fn boundary(&self, set: &mut BitSet) {
        for v in &self.cfg.exit_live {
            set.set(v.0 as usize);
        }
    }
    fn transfer(&self, cfg: &Cfg, block: BlockId, input: &BitSet, out: &mut BitSet) {
        out.clear();
        out.union_with(input);
        for &sid in cfg.blocks[block.0 as usize].stmts.iter().rev() {
            live_apply(cfg, out, sid);
        }
    }
}

impl Liveness {
    /// Runs the analysis over a CFG.
    pub fn compute(cfg: &Cfg) -> Liveness {
        let problem = LivenessSized { cfg };
        let sol = solve(cfg, &problem);
        let mut after: Vec<BitSet> = (0..cfg.stmt_count())
            .map(|_| BitSet::new(cfg.vars.len()))
            .collect();
        for (bi, block) in cfg.blocks.iter().enumerate() {
            // For a backward problem, the block's input set is the set at
            // the point control *leaves* the block.
            let mut cur = sol.input[bi].clone();
            for &sid in block.stmts.iter().rev() {
                after[sid.0 as usize].union_with(&cur);
                live_apply(cfg, &mut cur, sid);
            }
        }
        Liveness { after }
    }

    /// True when `var` is live just after `stmt`.
    pub fn live_after(&self, stmt: StmtId, var: VarId) -> bool {
        self.after[stmt.0 as usize].get(var.0 as usize)
    }
}

/// Def-use and use-def chains derived from reaching definitions.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// For each def site (indexed like [`ReachingDefs::sites`]), the
    /// statements that may read its value.
    pub uses_of_site: Vec<Vec<StmtId>>,
    /// For each (reading statement, variable), the def-site indices that
    /// may supply the value.
    pub sites_for_use: HashMap<(StmtId, VarId), Vec<usize>>,
}

impl DefUse {
    /// Builds the chains from a completed reaching-defs analysis.
    pub fn compute(cfg: &Cfg, rd: &ReachingDefs) -> DefUse {
        let mut uses_of_site: Vec<Vec<StmtId>> = vec![Vec::new(); rd.sites.len()];
        let mut sites_for_use: HashMap<(StmtId, VarId), Vec<usize>> = HashMap::new();
        for (i, info) in cfg.stmts.iter().enumerate() {
            let sid = StmtId(i as u32);
            let mut seen: Vec<VarId> = Vec::new();
            for &v in &info.uses {
                if seen.contains(&v) {
                    continue;
                }
                seen.push(v);
                let sites = rd.reaching_indices(sid, v);
                for &s in &sites {
                    if !uses_of_site[s].contains(&sid) {
                        uses_of_site[s].push(sid);
                    }
                }
                sites_for_use.insert((sid, v), sites);
            }
        }
        DefUse {
            uses_of_site,
            sites_for_use,
        }
    }

    /// The def-site indices that may supply `var` at `stmt`.
    pub fn defs_of_use(&self, stmt: StmtId, var: VarId) -> &[usize] {
        self.sites_for_use
            .get(&(stmt, var))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn lower(body: Vec<Stmt>, params: Vec<Param>) -> Cfg {
        Cfg::build(&CFunction {
            name: "k".into(),
            params,
            body,
        })
    }

    fn scalar_param(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: CType::Float,
            kind: ParamKind::ScalarIn,
            elems_per_task: None,
            broadcast: false,
        }
    }

    fn out_param(name: &str) -> Param {
        Param {
            name: name.into(),
            ty: CType::Float,
            kind: ParamKind::BufOut,
            elems_per_task: Some(1),
            broadcast: false,
        }
    }

    #[test]
    fn uninit_decl_reaches_until_killed() {
        // s0: float x;  s1: x = 1.0;  s2: y = x
        let cfg = lower(
            vec![
                Stmt::Decl {
                    name: "x".into(),
                    ty: CType::Float,
                    init: None,
                },
                Stmt::Assign {
                    lhs: LValue::Var("x".into()),
                    rhs: Expr::ConstF(1.0),
                },
                Stmt::Decl {
                    name: "y".into(),
                    ty: CType::Float,
                    init: Some(Expr::var("x")),
                },
            ],
            vec![],
        );
        let rd = ReachingDefs::compute(&cfg);
        let x = cfg.vars.scalar("x").unwrap();
        // Before s1 the only def is the uninit decl.
        let at_s1 = rd.reaching(StmtId(1), x);
        assert_eq!(at_s1.len(), 1);
        assert!(at_s1[0].uninit);
        // Before s2 only the assignment reaches (the decl was killed).
        let at_s2 = rd.reaching(StmtId(2), x);
        assert_eq!(at_s2.len(), 1);
        assert!(!at_s2[0].uninit);
        assert_eq!(at_s2[0].stmt, Some(StmtId(1)));
    }

    #[test]
    fn branch_defs_merge() {
        // s0: float x; s1: if (c) { s2: x = 1 } else {} ; s3: y = x
        let cfg = lower(
            vec![
                Stmt::Decl {
                    name: "x".into(),
                    ty: CType::Float,
                    init: None,
                },
                Stmt::If {
                    cond: Expr::var("c"),
                    then: vec![Stmt::Assign {
                        lhs: LValue::Var("x".into()),
                        rhs: Expr::ConstF(1.0),
                    }],
                    els: vec![],
                },
                Stmt::Decl {
                    name: "y".into(),
                    ty: CType::Float,
                    init: Some(Expr::var("x")),
                },
            ],
            vec![scalar_param("c")],
        );
        let rd = ReachingDefs::compute(&cfg);
        let x = cfg.vars.scalar("x").unwrap();
        // Both the uninit decl (via the else edge) and the then-arm
        // assignment reach the read.
        let at_use = rd.reaching(StmtId(3), x);
        assert_eq!(at_use.len(), 2);
        assert!(at_use.iter().any(|d| d.uninit));
        assert!(at_use.iter().any(|d| !d.uninit));
    }

    #[test]
    fn loop_body_decl_privatizes() {
        // for i { float s = 0; s = s + 1; } — the decl kills the
        // back-edge def, so the read of s sees only this iteration's defs.
        let cfg = lower(
            vec![Stmt::counted_for(
                LoopId(0),
                "i",
                4,
                vec![
                    Stmt::Decl {
                        name: "s".into(),
                        ty: CType::Float,
                        init: Some(Expr::ConstF(0.0)),
                    },
                    Stmt::Assign {
                        lhs: LValue::Var("s".into()),
                        rhs: Expr::bin(
                            CBinOp::Add,
                            CNumKind::F32,
                            Expr::var("s"),
                            Expr::ConstF(1.0),
                        ),
                    },
                ],
            )],
            vec![],
        );
        let rd = ReachingDefs::compute(&cfg);
        let s = cfg.vars.scalar("s").unwrap();
        // s0 = header, s1 = decl, s2 = assign. At the read in s2 only the
        // decl (s1) reaches — the back-edge def (s2 itself) was killed.
        let at_use = rd.reaching(StmtId(2), s);
        assert_eq!(at_use.len(), 1);
        assert_eq!(at_use[0].stmt, Some(StmtId(1)));
    }

    #[test]
    fn carried_scalar_def_reaches_via_back_edge() {
        // float s = 0; for i { s = s + 1; } — at the read of s inside the
        // body, both the init and the previous iteration's def reach.
        let cfg = lower(
            vec![
                Stmt::Decl {
                    name: "s".into(),
                    ty: CType::Float,
                    init: Some(Expr::ConstF(0.0)),
                },
                Stmt::counted_for(
                    LoopId(0),
                    "i",
                    4,
                    vec![Stmt::Assign {
                        lhs: LValue::Var("s".into()),
                        rhs: Expr::bin(
                            CBinOp::Add,
                            CNumKind::F32,
                            Expr::var("s"),
                            Expr::ConstF(1.0),
                        ),
                    }],
                ),
            ],
            vec![],
        );
        let rd = ReachingDefs::compute(&cfg);
        let s = cfg.vars.scalar("s").unwrap();
        // s0 = decl, s1 = header, s2 = assign.
        let at_use = rd.reaching(StmtId(2), s);
        let stmts: Vec<_> = at_use.iter().map(|d| d.stmt).collect();
        assert!(stmts.contains(&Some(StmtId(0))));
        assert!(stmts.contains(&Some(StmtId(2)))); // via the back edge
    }

    #[test]
    fn liveness_kills_dead_stores() {
        // s0: float t = 1; s1: t = 2; s2: out[0] = t — the first store is
        // dead, the second is live.
        let cfg = lower(
            vec![
                Stmt::Decl {
                    name: "t".into(),
                    ty: CType::Float,
                    init: Some(Expr::ConstF(1.0)),
                },
                Stmt::Assign {
                    lhs: LValue::Var("t".into()),
                    rhs: Expr::ConstF(2.0),
                },
                Stmt::Assign {
                    lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::var("t"),
                },
            ],
            vec![out_param("out")],
        );
        let lv = Liveness::compute(&cfg);
        let t = cfg.vars.scalar("t").unwrap();
        assert!(!lv.live_after(StmtId(0), t));
        assert!(lv.live_after(StmtId(1), t));
        // The output buffer is live at exit.
        let out = cfg.vars.scalar("out[*]").expect("whole-array var interned");
        assert!(lv.live_after(StmtId(2), out));
    }

    #[test]
    fn def_use_chains_link_across_loop() {
        // float s = 0; for i { s = s + 1 } ; out[0] = s
        let cfg = lower(
            vec![
                Stmt::Decl {
                    name: "s".into(),
                    ty: CType::Float,
                    init: Some(Expr::ConstF(0.0)),
                },
                Stmt::counted_for(
                    LoopId(0),
                    "i",
                    4,
                    vec![Stmt::Assign {
                        lhs: LValue::Var("s".into()),
                        rhs: Expr::bin(
                            CBinOp::Add,
                            CNumKind::F32,
                            Expr::var("s"),
                            Expr::ConstF(1.0),
                        ),
                    }],
                ),
                Stmt::Assign {
                    lhs: LValue::Index("out".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::var("s"),
                },
            ],
            vec![out_param("out")],
        );
        let rd = ReachingDefs::compute(&cfg);
        let du = DefUse::compute(&cfg, &rd);
        let s = cfg.vars.scalar("s").unwrap();
        // The loop-body def (s2) feeds both the in-loop read and the
        // final store (s3).
        let site_s2 = rd
            .sites
            .iter()
            .position(|d| d.stmt == Some(StmtId(2)))
            .unwrap();
        assert!(du.uses_of_site[site_s2].contains(&StmtId(2)));
        assert!(du.uses_of_site[site_s2].contains(&StmtId(3)));
        // The final store's read of s may come from the init or the loop.
        let defs = du.defs_of_use(StmtId(3), s);
        assert_eq!(defs.len(), 2);
    }
}
