//! Dataflow analysis over the HLS IR — the static-analysis substrate
//! S2FA's design-space identification implies (§4.1: ROSE + polyhedral
//! facts) and the ROADMAP's optimizer-pass framework needs.
//!
//! Layered bottom-up:
//!
//! * [`cfg`] — a control-flow graph lowered from the structured AST, with
//!   stable pre-order statement ids, loop back-edges, and a variable table
//!   that resolves constant-indexed local arrays per element;
//! * [`solver`] — a generic forward/backward iterative fixpoint solver
//!   over bitsets;
//! * [`analyses`] — reaching definitions (with explicit *uninitialized*
//!   definition sites), liveness, and def-use/use-def chains;
//! * [`depend`] — the affine array-dependence engine: GCD + Banerjee
//!   bounds + budgeted exact search over static iteration domains,
//!   distinguishing loop-independent from loop-carried dependences, plus
//!   the conservative recurrence scan that bounds the estimator's II.
//!
//! [`kernel_dataflow`] condenses the dependence facts every consumer
//! (lint's E3xx rules, the DSE prescreen, the estimator's II bound) needs
//! into one [`KernelDataflow`]; [`attach`] hangs it on a
//! [`KernelSummary`]. Nothing consults these facts unless they are
//! attached, so the default estimation path is bit-identical to the
//! pre-dataflow behavior.

pub mod analyses;
pub mod cfg;
pub mod depend;
pub mod solver;

pub use analyses::{DefSite, DefUse, Liveness, ReachingDefs};
pub use cfg::{ArrayMode, Cfg, StmtId, StmtKind, VarId};
pub use depend::{
    affine_form, collect_sites, cross_iteration_overlap, exact_distance, find_write_race,
    replication_safe, AccessSite, AffineForm, RaceFinding, Tri,
};
pub use solver::{solve, BitSet, DataflowProblem, Direction, Solution};

use crate::analysis::{CarriedDep, KernelSummary};
use crate::ast::{CFunction, LoopId, Stmt};
use std::collections::BTreeMap;

/// Dependence facts for one loop.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopDataflow {
    /// A proven cross-iteration write-write race: replicating or fully
    /// parallelizing this loop yields a nondeterministic design (E303).
    pub write_race: Option<RaceFinding>,
    /// True when iterations provably commute: every cross-iteration
    /// write-write and write-read pair is disproven and no shared scalar
    /// is written. Cleared loops must produce identical outputs under any
    /// iteration interleaving (the property the sjvm oracle checks).
    pub replication_safe: bool,
    /// A carried dependence only the transitive scalar pass found (a
    /// multi-statement cycle like `t = s; s = t + a[i]`); consulted when
    /// the conservative scan reported none.
    pub extra_carried: Option<CarriedDep>,
    /// Exact dependence distance of the loop's array recurrence, when the
    /// affine test could compute one. `Some(d)` with `d > 1` relaxes the
    /// recurrence II bound by `d`.
    pub carried_distance: Option<u32>,
}

/// Per-loop dependence facts for a whole kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDataflow {
    /// Facts keyed by loop id.
    pub loops: BTreeMap<LoopId, LoopDataflow>,
}

impl KernelDataflow {
    /// Facts for one loop.
    pub fn loop_facts(&self, id: LoopId) -> Option<&LoopDataflow> {
        self.loops.get(&id)
    }
}

/// Computes dependence facts for every loop of a kernel. `summary`
/// supplies the conservative per-loop verdicts (whose `via` seeds the
/// distance computation) and the task-loop batch hint used as the trip
/// count of runtime-bounded loops.
pub fn kernel_dataflow(f: &CFunction, summary: &KernelSummary) -> KernelDataflow {
    let sites = collect_sites(&f.body);
    let mut loops = BTreeMap::new();
    f.visit_loops(|s| {
        let Stmt::For { id, var, body, .. } = s else {
            return;
        };
        let write_race = find_write_race(&sites, body, *id, summary.tasks_hint);
        let safe = replication_safe(&sites, body, *id, summary.tasks_hint);
        let conservative = summary.loop_info(*id).and_then(|l| l.carried.as_ref());
        let extra_carried = if conservative.is_none() {
            depend::transitive_scalar_carried(body)
        } else {
            None
        };
        let carried_distance = conservative
            .and_then(|c| exact_distance(body, var, &c.via))
            .filter(|&d| d > 1);
        loops.insert(
            *id,
            LoopDataflow {
                write_race,
                replication_safe: safe,
                extra_carried,
                carried_distance,
            },
        );
    });
    KernelDataflow { loops }
}

/// Computes and attaches dependence facts to a summary (in place). After
/// this, `summary.effective_carried` and the prescreen's race rule see
/// the exact verdicts.
pub fn attach(summary: &mut KernelSummary, f: &CFunction) {
    let facts = kernel_dataflow(f, summary);
    summary.dataflow = Some(facts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::summarize;
    use crate::ast::{CType, Expr, LValue, LoopAttrs, Param, ParamKind};

    fn kernel_with_body(body: Vec<Stmt>) -> CFunction {
        CFunction {
            name: "k".into(),
            params: vec![
                Param {
                    name: "n".into(),
                    ty: CType::Int(32),
                    kind: ParamKind::ScalarIn,
                    elems_per_task: None,
                    broadcast: false,
                },
                Param {
                    name: "out".into(),
                    ty: CType::Float,
                    kind: ParamKind::BufOut,
                    elems_per_task: Some(1),
                    broadcast: false,
                },
            ],
            body: vec![Stmt::For {
                id: LoopId(0),
                var: "t".into(),
                bound: Expr::var("n"),
                trip_count: None,
                attrs: LoopAttrs::none(),
                body,
            }],
        }
    }

    #[test]
    fn attach_populates_every_loop() {
        // Task loop over t; inner racy loop writing acc[0].
        let f = kernel_with_body(vec![
            Stmt::DeclArr {
                name: "acc".into(),
                ty: CType::Float,
                len: 4,
            },
            Stmt::For {
                id: LoopId(1),
                var: "i".into(),
                bound: Expr::ConstI(8),
                trip_count: Some(8),
                attrs: LoopAttrs::none(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("acc".into(), Box::new(Expr::ConstI(0))),
                    rhs: Expr::var("i"),
                }],
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::var("t"))),
                rhs: Expr::index("acc", Expr::ConstI(0)),
            },
        ]);
        let mut s = summarize(&f, 16).unwrap();
        assert!(s.dataflow.is_none());
        attach(&mut s, &f);
        let df = s.dataflow.as_ref().unwrap();
        assert_eq!(df.loops.len(), 2);
        let inner = df.loop_facts(LoopId(1)).unwrap();
        assert!(inner.write_race.is_some(), "acc[0] overwrite races");
        assert!(!inner.replication_safe);
        // The task loop writes disjoint out[t] but reads acc (written
        // inside) — conservative machinery decides; the key invariant is
        // that facts exist for it.
        assert!(df.loop_facts(LoopId(0)).is_some());
    }

    #[test]
    fn distance_relaxation_is_recorded() {
        // for i in 1..: a[i] = a[i-2] + 1 under the task loop. Use a
        // counted inner loop so the conservative scan sees the recurrence.
        let f = kernel_with_body(vec![
            Stmt::DeclArr {
                name: "a".into(),
                ty: CType::Float,
                len: 16,
            },
            Stmt::For {
                id: LoopId(1),
                var: "i".into(),
                bound: Expr::ConstI(16),
                trip_count: Some(16),
                attrs: LoopAttrs::none(),
                body: vec![Stmt::Assign {
                    lhs: LValue::Index("a".into(), Box::new(Expr::var("i"))),
                    rhs: Expr::iadd(
                        Expr::index(
                            "a",
                            Expr::bin(
                                crate::ast::CBinOp::Sub,
                                crate::ast::CNumKind::I32,
                                Expr::var("i"),
                                Expr::ConstI(2),
                            ),
                        ),
                        Expr::ConstI(1),
                    ),
                }],
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::var("t"))),
                rhs: Expr::index("a", Expr::ConstI(0)),
            },
        ]);
        let mut s = summarize(&f, 16).unwrap();
        attach(&mut s, &f);
        let inner = s.dataflow.as_ref().unwrap().loop_facts(LoopId(1)).unwrap();
        assert_eq!(inner.carried_distance, Some(2));
        assert_eq!(s.carried_distance(LoopId(1)), 2);
        // Distance-1 recurrences record no relaxation.
        assert_eq!(s.carried_distance(LoopId(0)), 1);
    }

    #[test]
    fn effective_carried_falls_back_to_transitive_verdict() {
        // t2 = s; s = t2 + out-of-loop data: the conservative scan misses
        // the two-statement cycle, the dataflow facts supply it.
        let f = kernel_with_body(vec![
            Stmt::For {
                id: LoopId(1),
                var: "i".into(),
                bound: Expr::ConstI(8),
                trip_count: Some(8),
                attrs: LoopAttrs::none(),
                body: vec![
                    Stmt::Assign {
                        lhs: LValue::Var("tmp".into()),
                        rhs: Expr::var("s"),
                    },
                    Stmt::Assign {
                        lhs: LValue::Var("s".into()),
                        rhs: Expr::bin(
                            crate::ast::CBinOp::Add,
                            crate::ast::CNumKind::F32,
                            Expr::var("tmp"),
                            Expr::ConstF(1.0),
                        ),
                    },
                ],
            },
            Stmt::Assign {
                lhs: LValue::Index("out".into(), Box::new(Expr::var("t"))),
                rhs: Expr::var("s"),
            },
        ]);
        let mut s = summarize(&f, 16).unwrap();
        let li = s.loop_info(LoopId(1)).unwrap();
        assert!(li.carried.is_none(), "conservative scan misses the cycle");
        assert!(s.effective_carried(LoopId(1)).is_none());
        attach(&mut s, &f);
        let dep = s.effective_carried(LoopId(1)).expect("transitive cycle");
        assert_eq!(dep.via, "s");
    }
}
