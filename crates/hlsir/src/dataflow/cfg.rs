//! Control-flow graph lowered from the structured HLS C AST.
//!
//! The AST is fully structured (counted `for` loops and two-armed `if`s,
//! no `goto`/`break`), so the lowering is deterministic: every statement
//! receives a stable [`StmtId`] in source pre-order (compound statements
//! are numbered before their children), loops become a header block with a
//! back edge from the end of the body, and branches become a diamond. The
//! same pre-order numbering is used by the `s2fa-lint` verifier to attach
//! statement indices to diagnostic spans, so a CFG fact and a lint finding
//! about the same statement agree on its id by construction.
//!
//! The variable universe is interned up front ([`VarTable`]): scalars map
//! to one [`VarId`] each, and local arrays are either *element-resolved*
//! (every access in the function uses a compile-time-constant index, so
//! each element `a[k]` is its own variable with must-def semantics) or
//! *summarized* as a single whole-array variable whose writes are may-defs
//! (they never kill). Interface buffers are always summarized and are
//! defined at entry, so reads from them can never look uninitialized.

use crate::ast::{CFunction, Expr, LValue, LoopId, ParamKind, Stmt};
use std::collections::{BTreeMap, HashMap};

/// Stable statement id: the statement's index in a source pre-order walk
/// of the function body (compound statements before their children).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StmtId(pub u32);

impl std::fmt::Display for StmtId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Basic-block id (index into [`Cfg::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Interned variable id (index into [`VarTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// How an array participates in the dataflow variable universe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayMode {
    /// Every access uses a constant index: one variable per element,
    /// writes are must-defs.
    PerElement,
    /// At least one non-constant index: one whole-array variable, writes
    /// are may-defs (they never kill a prior definition).
    Whole,
}

/// What an interned variable denotes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarKind {
    /// A scalar (local, parameter, or induction variable).
    Scalar,
    /// One element of an element-resolved local array.
    Element {
        /// Array name.
        array: String,
        /// Element index.
        index: u32,
    },
    /// The summarized whole-array variable of an array.
    WholeArray {
        /// Array name.
        array: String,
    },
}

/// The interned variable universe of one function.
#[derive(Debug, Clone, Default)]
pub struct VarTable {
    names: Vec<(String, VarKind)>,
    index: HashMap<String, VarId>,
}

impl VarTable {
    fn intern(&mut self, key: String, kind: VarKind) -> VarId {
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = VarId(self.names.len() as u32);
        self.index.insert(key.clone(), id);
        self.names.push((key, kind));
        id
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variable was interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Display name of a variable (`x`, `a[3]`, or `a[*]`).
    pub fn name(&self, id: VarId) -> &str {
        &self.names[id.0 as usize].0
    }

    /// What the variable denotes.
    pub fn kind(&self, id: VarId) -> &VarKind {
        &self.names[id.0 as usize].1
    }

    /// Looks up a scalar by name.
    pub fn scalar(&self, name: &str) -> Option<VarId> {
        self.index.get(name).copied()
    }
}

/// Statement classification inside the CFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `Stmt::Decl` — scalar declaration.
    Decl,
    /// `Stmt::DeclArr` — local array declaration.
    DeclArr,
    /// `Stmt::Assign`.
    Assign,
    /// The header of a `for` loop: defines the induction variable, uses
    /// the bound.
    LoopHeader(LoopId),
    /// The condition of an `if`: uses only.
    Branch,
}

/// Per-statement dataflow facts extracted during lowering.
#[derive(Debug, Clone)]
pub struct StmtInfo {
    /// Classification.
    pub kind: StmtKind,
    /// Block the statement lives in.
    pub block: BlockId,
    /// Enclosing loops, outermost first.
    pub loop_path: Vec<LoopId>,
    /// True when the statement sits under at least one `if` arm.
    pub in_branch: bool,
    /// Variables this statement must-defines (kills other defs).
    pub defs: Vec<VarId>,
    /// Variables this statement may-define (whole-array writes; gen
    /// without kill).
    pub may_defs: Vec<VarId>,
    /// Variables this statement reads.
    pub uses: Vec<VarId>,
    /// True when the definition carries no value (`Decl` without an
    /// initializer, or a `DeclArr`): reads reached only by such defs are
    /// uninitialized reads.
    pub uninit: bool,
}

/// One basic block: straight-line statements plus edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Statements in execution order (loop headers and branch conditions
    /// terminate their block).
    pub stmts: Vec<StmtId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
}

/// The control-flow graph of one kernel function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks; `blocks[0]` is the entry. Blocks are created in
    /// program order, so iterating in index order approximates reverse
    /// post-order for the forward analyses.
    pub blocks: Vec<Block>,
    /// Per-statement facts, indexed by [`StmtId`].
    pub stmts: Vec<StmtInfo>,
    /// The interned variable universe.
    pub vars: VarTable,
    /// Entry block (always `BlockId(0)`).
    pub entry: BlockId,
    /// Exit block (no successors).
    pub exit: BlockId,
    /// Static trip count per loop; `None` for the runtime-bounded task
    /// loop (it executes `n >= 1` times per batch by contract).
    pub loop_trips: BTreeMap<LoopId, Option<u32>>,
    /// Variables defined at function entry (parameters and interface
    /// buffers), never uninitialized.
    pub entry_defs: Vec<VarId>,
    /// Variables live at function exit (output-buffer summaries and
    /// elements).
    pub exit_live: Vec<VarId>,
    /// Representation chosen per array (locals and interface buffers).
    pub array_modes: BTreeMap<String, ArrayMode>,
    /// Declared length per local array.
    pub local_lens: BTreeMap<String, u32>,
}

/// Arrays with more constant-indexed elements than this are summarized
/// even when every index is constant (bounds the bitset width).
const MAX_ELEMENT_RESOLVED: u32 = 256;

impl Cfg {
    /// Lowers a function body to a CFG.
    pub fn build(f: &CFunction) -> Cfg {
        let mut b = Builder::new(f);
        b.lower_body(f);
        b.finish()
    }

    /// True when the statement provably executes on every kernel run: it
    /// is not under an `if`, and every enclosing loop has a static trip
    /// count of at least one — or is the runtime-bounded task loop, which
    /// executes at least once per batch by contract.
    pub fn provably_executes(&self, id: StmtId) -> bool {
        let si = &self.stmts[id.0 as usize];
        !si.in_branch
            && si.loop_path.iter().all(|l| {
                self.loop_trips
                    .get(l)
                    .is_none_or(|t| t.is_none_or(|t| t >= 1))
            })
    }

    /// The statement's info.
    pub fn stmt(&self, id: StmtId) -> &StmtInfo {
        &self.stmts[id.0 as usize]
    }

    /// Number of statements.
    pub fn stmt_count(&self) -> usize {
        self.stmts.len()
    }
}

/// Scans the function and decides each array's representation.
fn choose_array_modes(f: &CFunction) -> (BTreeMap<String, ArrayMode>, BTreeMap<String, u32>) {
    let mut modes: BTreeMap<String, ArrayMode> = BTreeMap::new();
    let mut lens: BTreeMap<String, u32> = BTreeMap::new();
    // Interface buffers are summarized: their extent is per batch, not
    // statically resolvable per element.
    for p in &f.params {
        if p.kind != ParamKind::ScalarIn {
            modes.insert(p.name.clone(), ArrayMode::Whole);
        }
    }
    fn scan_stmts(
        stmts: &[Stmt],
        modes: &mut BTreeMap<String, ArrayMode>,
        lens: &mut BTreeMap<String, u32>,
    ) {
        for s in stmts {
            match s {
                Stmt::DeclArr { name, len, .. } => {
                    lens.insert(name.clone(), *len);
                    let mode = if *len <= MAX_ELEMENT_RESOLVED {
                        ArrayMode::PerElement
                    } else {
                        ArrayMode::Whole
                    };
                    modes.entry(name.clone()).or_insert(mode);
                }
                Stmt::Decl { init: Some(e), .. } => scan_expr(e, modes),
                Stmt::Assign { lhs, rhs } => {
                    if let LValue::Index(name, idx) = lhs {
                        note_access(name, idx, modes);
                        scan_expr(idx, modes);
                    }
                    scan_expr(rhs, modes);
                }
                Stmt::For { bound, body, .. } => {
                    scan_expr(bound, modes);
                    scan_stmts(body, modes, lens);
                }
                Stmt::If { cond, then, els } => {
                    scan_expr(cond, modes);
                    scan_stmts(then, modes, lens);
                    scan_stmts(els, modes, lens);
                }
                Stmt::Decl { init: None, .. } => {}
            }
        }
    }
    fn scan_expr(e: &Expr, modes: &mut BTreeMap<String, ArrayMode>) {
        match e {
            Expr::Index(name, idx) => {
                note_access(name, idx, modes);
                scan_expr(idx, modes);
            }
            Expr::Bin(_, _, a, b) => {
                scan_expr(a, modes);
                scan_expr(b, modes);
            }
            Expr::Neg(_, a) | Expr::Cast(_, _, a) => scan_expr(a, modes),
            Expr::Call(_, _, args) => args.iter().for_each(|a| scan_expr(a, modes)),
            Expr::Select(c, a, b) => {
                scan_expr(c, modes);
                scan_expr(a, modes);
                scan_expr(b, modes);
            }
            Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => {}
        }
    }
    fn note_access(name: &str, idx: &Expr, modes: &mut BTreeMap<String, ArrayMode>) {
        if super::depend::const_value(idx).is_none() {
            // One dynamic index demotes the whole array to summarized.
            modes.insert(name.to_string(), ArrayMode::Whole);
        }
    }
    scan_stmts(&f.body, &mut modes, &mut lens);
    // Declarations seen after a dynamic access keep Whole (entry() above);
    // arrays only read dynamically but declared per-element were already
    // demoted by note_access running over the same walk.
    (modes, lens)
}

struct Builder {
    blocks: Vec<Block>,
    stmts: Vec<StmtInfo>,
    vars: VarTable,
    loop_trips: BTreeMap<LoopId, Option<u32>>,
    array_modes: BTreeMap<String, ArrayMode>,
    local_lens: BTreeMap<String, u32>,
    entry_defs: Vec<VarId>,
    exit_live: Vec<VarId>,
    cur: BlockId,
    loop_path: Vec<LoopId>,
    branch_depth: u32,
}

impl Builder {
    fn new(f: &CFunction) -> Builder {
        let (array_modes, local_lens) = choose_array_modes(f);
        let mut b = Builder {
            blocks: vec![Block::default()],
            stmts: Vec::new(),
            vars: VarTable::default(),
            loop_trips: BTreeMap::new(),
            array_modes,
            local_lens,
            entry_defs: Vec::new(),
            exit_live: Vec::new(),
            cur: BlockId(0),
            loop_path: Vec::new(),
            branch_depth: 0,
        };
        for p in &f.params {
            match p.kind {
                ParamKind::ScalarIn => {
                    let v = b.vars.intern(p.name.clone(), VarKind::Scalar);
                    b.entry_defs.push(v);
                }
                ParamKind::BufIn | ParamKind::BufOut => {
                    let v = b.vars.intern(
                        format!("{}[*]", p.name),
                        VarKind::WholeArray {
                            array: p.name.clone(),
                        },
                    );
                    b.entry_defs.push(v);
                    if p.kind == ParamKind::BufOut {
                        b.exit_live.push(v);
                    }
                }
            }
        }
        b
    }

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.0 as usize].succs.push(to);
        self.blocks[to.0 as usize].preds.push(from);
    }

    /// Interns the variable(s) a read of `name[idx]` touches and appends
    /// them to `uses`.
    fn use_index(&mut self, name: &str, idx: &Expr, uses: &mut Vec<VarId>) {
        match self.array_modes.get(name) {
            Some(ArrayMode::PerElement) => {
                if let Some(k) = super::depend::const_value(idx) {
                    if k >= 0 {
                        let v = self.vars.intern(
                            format!("{name}[{k}]"),
                            VarKind::Element {
                                array: name.to_string(),
                                index: k as u32,
                            },
                        );
                        uses.push(v);
                    }
                }
            }
            _ => {
                let v = self.vars.intern(
                    format!("{name}[*]"),
                    VarKind::WholeArray {
                        array: name.to_string(),
                    },
                );
                uses.push(v);
            }
        }
    }

    fn uses_of_expr(&mut self, e: &Expr, uses: &mut Vec<VarId>) {
        match e {
            Expr::ConstI(_) | Expr::ConstF(_) => {}
            Expr::Var(n) => {
                let v = self.vars.intern(n.clone(), VarKind::Scalar);
                uses.push(v);
            }
            Expr::Index(name, idx) => {
                self.use_index(name, idx, uses);
                self.uses_of_expr(idx, uses);
            }
            Expr::Bin(_, _, a, b) => {
                self.uses_of_expr(a, uses);
                self.uses_of_expr(b, uses);
            }
            Expr::Neg(_, a) | Expr::Cast(_, _, a) => self.uses_of_expr(a, uses),
            Expr::Call(_, _, args) => args.iter().for_each(|a| self.uses_of_expr(a, uses)),
            Expr::Select(c, a, b) => {
                self.uses_of_expr(c, uses);
                self.uses_of_expr(a, uses);
                self.uses_of_expr(b, uses);
            }
        }
    }

    fn push_stmt(
        &mut self,
        kind: StmtKind,
        defs: Vec<VarId>,
        may: Vec<VarId>,
        uses: Vec<VarId>,
        uninit: bool,
    ) -> StmtId {
        let id = StmtId(self.stmts.len() as u32);
        self.stmts.push(StmtInfo {
            kind,
            block: self.cur,
            loop_path: self.loop_path.clone(),
            in_branch: self.branch_depth > 0,
            defs,
            may_defs: may,
            uses,
            uninit,
        });
        self.blocks[self.cur.0 as usize].stmts.push(id);
        id
    }

    fn lower_body(&mut self, f: &CFunction) {
        self.lower(&f.body);
    }

    fn lower(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            match s {
                Stmt::Decl { name, init, .. } => {
                    let mut uses = Vec::new();
                    if let Some(e) = init {
                        self.uses_of_expr(e, &mut uses);
                    }
                    let v = self.vars.intern(name.clone(), VarKind::Scalar);
                    self.push_stmt(StmtKind::Decl, vec![v], Vec::new(), uses, init.is_none());
                }
                Stmt::DeclArr { name, len, .. } => {
                    let defs = match self.array_modes.get(name) {
                        Some(ArrayMode::PerElement) => (0..*len)
                            .map(|k| {
                                self.vars.intern(
                                    format!("{name}[{k}]"),
                                    VarKind::Element {
                                        array: name.clone(),
                                        index: k,
                                    },
                                )
                            })
                            .collect(),
                        _ => vec![self.vars.intern(
                            format!("{name}[*]"),
                            VarKind::WholeArray {
                                array: name.clone(),
                            },
                        )],
                    };
                    self.push_stmt(StmtKind::DeclArr, defs, Vec::new(), Vec::new(), true);
                }
                Stmt::Assign { lhs, rhs } => {
                    let mut uses = Vec::new();
                    self.uses_of_expr(rhs, &mut uses);
                    let (defs, may) = match lhs {
                        LValue::Var(n) => {
                            let v = self.vars.intern(n.clone(), VarKind::Scalar);
                            (vec![v], Vec::new())
                        }
                        LValue::Index(name, idx) => {
                            self.uses_of_expr(idx, &mut uses);
                            match self.array_modes.get(name) {
                                Some(ArrayMode::PerElement) => {
                                    match super::depend::const_value(idx) {
                                        Some(k) if k >= 0 => {
                                            let v = self.vars.intern(
                                                format!("{name}[{k}]"),
                                                VarKind::Element {
                                                    array: name.clone(),
                                                    index: k as u32,
                                                },
                                            );
                                            (vec![v], Vec::new())
                                        }
                                        // Unreachable by mode construction;
                                        // stay safe anyway.
                                        _ => (Vec::new(), Vec::new()),
                                    }
                                }
                                _ => {
                                    let v = self.vars.intern(
                                        format!("{name}[*]"),
                                        VarKind::WholeArray {
                                            array: name.clone(),
                                        },
                                    );
                                    (Vec::new(), vec![v])
                                }
                            }
                        }
                    };
                    self.push_stmt(StmtKind::Assign, defs, may, uses, false);
                }
                Stmt::For {
                    id,
                    var,
                    bound,
                    trip_count,
                    body,
                    ..
                } => {
                    let tc = match (trip_count, bound) {
                        (Some(t), _) => Some(*t),
                        (None, Expr::ConstI(v)) => Some(*v as u32),
                        _ => None,
                    };
                    self.loop_trips.insert(*id, tc);

                    let header = self.new_block();
                    self.edge(self.cur, header);
                    self.cur = header;
                    let mut uses = Vec::new();
                    self.uses_of_expr(bound, &mut uses);
                    let iv = self.vars.intern(var.clone(), VarKind::Scalar);
                    self.push_stmt(StmtKind::LoopHeader(*id), vec![iv], Vec::new(), uses, false);

                    let body_entry = self.new_block();
                    self.edge(header, body_entry);
                    self.cur = body_entry;
                    self.loop_path.push(*id);
                    self.lower(body);
                    self.loop_path.pop();
                    // Back edge from wherever the body ended to the header.
                    self.edge(self.cur, header);

                    let after = self.new_block();
                    self.edge(header, after);
                    self.cur = after;
                }
                Stmt::If { cond, then, els } => {
                    let mut uses = Vec::new();
                    self.uses_of_expr(cond, &mut uses);
                    self.push_stmt(StmtKind::Branch, Vec::new(), Vec::new(), uses, false);
                    let branch_block = self.cur;

                    let then_entry = self.new_block();
                    let els_entry = self.new_block();
                    let join = self.new_block();
                    self.edge(branch_block, then_entry);
                    self.edge(branch_block, els_entry);

                    self.branch_depth += 1;
                    self.cur = then_entry;
                    self.lower(then);
                    self.edge(self.cur, join);
                    self.cur = els_entry;
                    self.lower(els);
                    self.edge(self.cur, join);
                    self.branch_depth -= 1;
                    self.cur = join;
                }
            }
        }
    }

    fn finish(mut self) -> Cfg {
        // Output elements of element-resolved arrays never exist (outputs
        // are interface buffers, always summarized); exit_live was filled
        // from the parameter list.
        let exit = self.cur;
        // Reads of element-resolved arrays may have interned element vars
        // lazily; nothing else to fix up.
        let exit_live = std::mem::take(&mut self.exit_live);
        Cfg {
            blocks: self.blocks,
            stmts: self.stmts,
            vars: self.vars,
            entry: BlockId(0),
            exit,
            loop_trips: self.loop_trips,
            entry_defs: self.entry_defs,
            exit_live,
            array_modes: self.array_modes,
            local_lens: self.local_lens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    /// `for i in 0..4 { if (c) { x = 1 } else { x = 2 } }`
    fn branchy() -> CFunction {
        CFunction {
            name: "k".into(),
            params: vec![Param {
                name: "c".into(),
                ty: CType::Int(32),
                kind: ParamKind::ScalarIn,
                elems_per_task: None,
                broadcast: false,
            }],
            body: vec![
                Stmt::Decl {
                    name: "x".into(),
                    ty: CType::Int(32),
                    init: None,
                },
                Stmt::counted_for(
                    LoopId(0),
                    "i",
                    4,
                    vec![Stmt::If {
                        cond: Expr::var("c"),
                        then: vec![Stmt::Assign {
                            lhs: LValue::Var("x".into()),
                            rhs: Expr::ConstI(1),
                        }],
                        els: vec![Stmt::Assign {
                            lhs: LValue::Var("x".into()),
                            rhs: Expr::ConstI(2),
                        }],
                    }],
                ),
            ],
        }
    }

    #[test]
    fn preorder_ids_and_structure() {
        let cfg = Cfg::build(&branchy());
        // s0 = decl x, s1 = loop header, s2 = branch, s3 = then-assign,
        // s4 = else-assign.
        assert_eq!(cfg.stmt_count(), 5);
        assert_eq!(cfg.stmt(StmtId(1)).kind, StmtKind::LoopHeader(LoopId(0)));
        assert_eq!(cfg.stmt(StmtId(2)).kind, StmtKind::Branch);
        assert!(cfg.stmt(StmtId(3)).in_branch);
        assert!(cfg.stmt(StmtId(4)).in_branch);
        assert_eq!(cfg.stmt(StmtId(3)).loop_path, vec![LoopId(0)]);
        assert!(!cfg.stmt(StmtId(0)).in_branch);
    }

    #[test]
    fn loop_has_back_edge() {
        let cfg = Cfg::build(&branchy());
        let header = cfg.stmt(StmtId(1)).block;
        // The header has two predecessors: the entry path and the back
        // edge from the body's join block.
        assert_eq!(cfg.blocks[header.0 as usize].preds.len(), 2);
        // And two successors: the body entry and the after block.
        assert_eq!(cfg.blocks[header.0 as usize].succs.len(), 2);
    }

    #[test]
    fn provably_executes_respects_branches_and_trips() {
        let cfg = Cfg::build(&branchy());
        assert!(cfg.provably_executes(StmtId(0)));
        assert!(cfg.provably_executes(StmtId(2))); // the branch condition itself
        assert!(!cfg.provably_executes(StmtId(3))); // then-arm
        let mut f = branchy();
        if let Some(Stmt::For { trip_count, .. }) = f.body.get_mut(1) {
            *trip_count = Some(0);
        }
        let cfg = Cfg::build(&f);
        assert!(!cfg.provably_executes(StmtId(2)));
    }

    #[test]
    fn array_modes_follow_index_shape() {
        let f = CFunction {
            name: "k".into(),
            params: vec![],
            body: vec![
                Stmt::DeclArr {
                    name: "cst".into(),
                    ty: CType::Float,
                    len: 4,
                },
                Stmt::DeclArr {
                    name: "dyn".into(),
                    ty: CType::Float,
                    len: 4,
                },
                Stmt::Assign {
                    lhs: LValue::Index("cst".into(), Box::new(Expr::ConstI(1))),
                    rhs: Expr::ConstF(0.0),
                },
                Stmt::counted_for(
                    LoopId(0),
                    "i",
                    4,
                    vec![Stmt::Assign {
                        lhs: LValue::Index("dyn".into(), Box::new(Expr::var("i"))),
                        rhs: Expr::ConstF(0.0),
                    }],
                ),
            ],
        };
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.array_modes["cst"], ArrayMode::PerElement);
        assert_eq!(cfg.array_modes["dyn"], ArrayMode::Whole);
        // The per-element write is a must-def of cst[1]; the dynamic write
        // is a may-def of dyn[*].
        let w_cst = cfg.stmt(StmtId(2));
        assert_eq!(w_cst.defs.len(), 1);
        assert_eq!(cfg.vars.name(w_cst.defs[0]), "cst[1]");
        let w_dyn = cfg.stmt(StmtId(4));
        assert!(w_dyn.defs.is_empty());
        assert_eq!(cfg.vars.name(w_dyn.may_defs[0]), "dyn[*]");
    }
}
