//! Generic iterative dataflow solver over the [`Cfg`].
//!
//! Problems declare a direction, a bit universe, a boundary set, and a
//! per-block transfer function; the solver iterates block transfer to a
//! fixpoint with union as the meet (both shipped analyses — reaching
//! definitions and liveness — are may-analyses). Blocks are visited in
//! creation order for forward problems (the builder emits blocks in
//! program order, approximating reverse post-order) and in reverse order
//! for backward problems, so the common case converges in two sweeps plus
//! one sweep per loop-nesting level.

use super::cfg::{BlockId, Cfg};

/// A dense bitset sized to the problem's universe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    bits: usize,
}

impl BitSet {
    /// An empty set over `bits` positions.
    pub fn new(bits: usize) -> BitSet {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// `self |= other`; returns true when any bit changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// True when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Direction of a dataflow problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along control-flow edges (e.g. reaching definitions).
    Forward,
    /// Facts flow against control-flow edges (e.g. liveness).
    Backward,
}

/// A dataflow problem solvable by [`solve`]. The meet is always union
/// (may-analysis); a must-analysis can be encoded by complementing its
/// facts.
pub trait DataflowProblem {
    /// Flow direction.
    fn direction(&self) -> Direction;
    /// Size of the bit universe.
    fn bits(&self) -> usize;
    /// Seeds the boundary set: the entry block's input (forward) or the
    /// exit block's input (backward).
    fn boundary(&self, set: &mut BitSet);
    /// Applies the block's transfer function: `out` is overwritten with
    /// the effect of executing `block` on `input` (in execution order for
    /// forward problems, reverse order for backward ones).
    fn transfer(&self, cfg: &Cfg, block: BlockId, input: &BitSet, out: &mut BitSet);
}

/// Fixpoint solution: one input and one output set per block. For
/// forward problems `input` is the set at block entry; for backward
/// problems it is the set at block *exit* (facts at the point control
/// leaves the block), and `output` the set at block entry.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Per-block input sets (indexed by block id).
    pub input: Vec<BitSet>,
    /// Per-block output sets (indexed by block id).
    pub output: Vec<BitSet>,
}

/// Runs the iterative solver to a fixpoint.
pub fn solve(cfg: &Cfg, p: &impl DataflowProblem) -> Solution {
    let n = cfg.blocks.len();
    let bits = p.bits();
    let mut input: Vec<BitSet> = (0..n).map(|_| BitSet::new(bits)).collect();
    let mut output: Vec<BitSet> = (0..n).map(|_| BitSet::new(bits)).collect();
    let forward = p.direction() == Direction::Forward;
    let boundary_block = if forward { cfg.entry } else { cfg.exit };
    p.boundary(&mut input[boundary_block.0 as usize]);

    let order: Vec<usize> = if forward {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    let mut scratch = BitSet::new(bits);
    let mut changed = true;
    while changed {
        changed = false;
        for &bi in &order {
            // Meet over the relevant neighbors.
            let neighbors = if forward {
                &cfg.blocks[bi].preds
            } else {
                &cfg.blocks[bi].succs
            };
            for &nb in neighbors {
                // Split borrow: copy out of the neighbor's output.
                let nb_out = output[nb.0 as usize].clone();
                input[bi].union_with(&nb_out);
            }
            p.transfer(cfg, BlockId(bi as u32), &input[bi], &mut scratch);
            if output[bi].union_with(&scratch) {
                changed = true;
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_ops() {
        let mut a = BitSet::new(130);
        a.set(0);
        a.set(64);
        a.set(129);
        assert!(a.get(64) && !a.get(63));
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(a.count(), 3);
        let mut b = BitSet::new(130);
        b.set(5);
        assert!(b.union_with(&a));
        assert!(!b.union_with(&a));
        assert_eq!(b.count(), 4);
        b.unset(64);
        assert!(!b.get(64));
        b.clear();
        assert!(b.is_empty());
    }
}
