//! Affine array-dependence testing and loop-carried recurrence detection.
//!
//! Two layers live here:
//!
//! 1. **The exact affine test** — array indices are lifted to multi-variable
//!    affine forms over loop induction variables
//!    ([`affine_form`]), and cross-iteration overlap questions ("can two
//!    different iterations of loop `L` touch the same element?") are decided
//!    by a GCD + Banerjee-bounds check with a budgeted exhaustive search
//!    over the (small, statically known) iteration domains. Verdicts are
//!    three-valued ([`Tri`]): `Proven` overlap, `Disproven`, or `Unknown`
//!    when the form is non-affine or the domain is too large to decide.
//!    This powers the E303 replication write-race rule, the
//!    [`replication_safe`] clearance used by the interleaving oracle, and
//!    exact dependence *distance* extraction ([`exact_distance`]) that can
//!    relax a recurrence II bound by the distance.
//!
//! 2. **The conservative recurrence scan** — the single source of truth for
//!    the loop-carried dependences that bound the estimator's initiation
//!    interval. This is the scan `hlsir::analysis` historically carried
//!    inline; it moved here so the summary builder, the lint rules, and the
//!    DSE prescreen all agree on one verdict. [`conservative_carried`]
//!    reproduces its behavior exactly (goldens are bit-identical), and
//!    [`transitive_scalar_carried`] extends it to scalar recurrences whose
//!    cycle spans multiple statements (`t = s; s = t + a[i]`), which the
//!    statement-local scan misses — consumed only behind the
//!    `--dataflow-prescreen` flag.

use crate::analysis::CarriedDep;
use crate::ast::{CBinOp, CIntrinsic, Expr, LValue, LoopId, Stmt};
use crate::opcount::OpCounts;
use std::collections::{BTreeMap, HashSet};

// ---------------------------------------------------------------------------
// Affine forms
// ---------------------------------------------------------------------------

/// A multi-variable affine expression `offset + Σ coeff_v · v`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AffineForm {
    /// Per-variable coefficients (zero coefficients are dropped).
    pub terms: BTreeMap<String, i64>,
    /// The constant part.
    pub offset: i64,
}

impl AffineForm {
    fn constant(v: i64) -> AffineForm {
        AffineForm {
            terms: BTreeMap::new(),
            offset: v,
        }
    }

    fn add(mut self, other: AffineForm, sign: i64) -> AffineForm {
        self.offset += sign * other.offset;
        for (v, c) in other.terms {
            *self.terms.entry(v).or_insert(0) += sign * c;
        }
        self.terms.retain(|_, c| *c != 0);
        self
    }

    fn scale(mut self, k: i64) -> AffineForm {
        self.offset *= k;
        if k == 0 {
            self.terms.clear();
        } else {
            self.terms.values_mut().for_each(|c| *c *= k);
        }
        self
    }

    /// Coefficient of `var` (zero when absent).
    pub fn coeff(&self, var: &str) -> i64 {
        self.terms.get(var).copied().unwrap_or(0)
    }
}

/// Lifts an index expression to an affine form over its variables, or
/// `None` when it is not affine (data-dependent indexing, products of
/// variables, division, ...).
pub fn affine_form(e: &Expr) -> Option<AffineForm> {
    match e {
        Expr::ConstI(v) => Some(AffineForm::constant(*v)),
        Expr::Var(n) => {
            let mut f = AffineForm::default();
            f.terms.insert(n.clone(), 1);
            Some(f)
        }
        Expr::Bin(CBinOp::Add, _, a, b) => Some(affine_form(a)?.add(affine_form(b)?, 1)),
        Expr::Bin(CBinOp::Sub, _, a, b) => Some(affine_form(a)?.add(affine_form(b)?, -1)),
        Expr::Bin(CBinOp::Mul, _, a, b) => {
            let fa = affine_form(a)?;
            let fb = affine_form(b)?;
            if fa.terms.is_empty() {
                Some(fb.scale(fa.offset))
            } else if fb.terms.is_empty() {
                Some(fa.scale(fb.offset))
            } else {
                None
            }
        }
        Expr::Cast(_, _, a) => affine_form(a),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Access sites
// ---------------------------------------------------------------------------

/// One enclosing loop of an access site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFrame {
    /// Loop id.
    pub id: LoopId,
    /// Induction variable.
    pub var: String,
    /// Static trip count; `None` for the runtime-bounded task loop.
    pub trip: Option<u32>,
}

/// One array access (read or write) anywhere in a kernel.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// Array name.
    pub array: String,
    /// Index expression.
    pub index: Expr,
    /// True for writes.
    pub write: bool,
    /// True for read-modify-write stores: the right-hand side reads the
    /// same array at the syntactically identical index (an accumulation;
    /// the recurrence machinery owns it, E303 skips it).
    pub rmw: bool,
    /// Global pre-order statement index of the enclosing statement.
    pub stmt: u32,
    /// Enclosing loops, outermost first.
    pub loops: Vec<LoopFrame>,
    /// True when the site sits under at least one `if` arm.
    pub in_branch: bool,
}

impl AccessSite {
    /// The position of `lid` in this site's loop path, if enclosing.
    fn frame_pos(&self, lid: LoopId) -> Option<usize> {
        self.loops.iter().position(|f| f.id == lid)
    }

    /// Innermost frame binding `var` (shadowing-aware), with its index in
    /// the path.
    fn binding(&self, var: &str) -> Option<(usize, &LoopFrame)> {
        self.loops
            .iter()
            .enumerate()
            .rev()
            .find(|(_, f)| f.var == var)
    }
}

/// Collects every array access site of a function body, numbering
/// statements in the same source pre-order as `dataflow::cfg`.
pub fn collect_sites(body: &[Stmt]) -> Vec<AccessSite> {
    struct W {
        sites: Vec<AccessSite>,
        next: u32,
        loops: Vec<LoopFrame>,
        branch: u32,
    }
    impl W {
        fn expr(&mut self, e: &Expr, stmt: u32) {
            match e {
                Expr::Index(name, idx) => {
                    self.sites.push(AccessSite {
                        array: name.clone(),
                        index: idx.as_ref().clone(),
                        write: false,
                        rmw: false,
                        stmt,
                        loops: self.loops.clone(),
                        in_branch: self.branch > 0,
                    });
                    self.expr(idx, stmt);
                }
                Expr::Bin(_, _, a, b) => {
                    self.expr(a, stmt);
                    self.expr(b, stmt);
                }
                Expr::Neg(_, a) | Expr::Cast(_, _, a) => self.expr(a, stmt),
                Expr::Call(_, _, args) => args.iter().for_each(|a| self.expr(a, stmt)),
                Expr::Select(c, a, b) => {
                    self.expr(c, stmt);
                    self.expr(a, stmt);
                    self.expr(b, stmt);
                }
                Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => {}
            }
        }
        fn stmts(&mut self, stmts: &[Stmt]) {
            for s in stmts {
                let id = self.next;
                self.next += 1;
                match s {
                    Stmt::Decl { init: Some(e), .. } => self.expr(e, id),
                    Stmt::Decl { init: None, .. } | Stmt::DeclArr { .. } => {}
                    Stmt::Assign { lhs, rhs } => {
                        self.expr(rhs, id);
                        if let LValue::Index(name, idx) = lhs {
                            self.expr(idx, id);
                            let rmw = reads_same_element(rhs, name, idx);
                            self.sites.push(AccessSite {
                                array: name.clone(),
                                index: idx.as_ref().clone(),
                                write: true,
                                rmw,
                                stmt: id,
                                loops: self.loops.clone(),
                                in_branch: self.branch > 0,
                            });
                        }
                    }
                    Stmt::For {
                        id: lid,
                        var,
                        bound,
                        trip_count,
                        body,
                        ..
                    } => {
                        self.expr(bound, id);
                        let trip = match (trip_count, bound) {
                            (Some(t), _) => Some(*t),
                            (None, Expr::ConstI(v)) => Some(*v as u32),
                            _ => None,
                        };
                        self.loops.push(LoopFrame {
                            id: *lid,
                            var: var.clone(),
                            trip,
                        });
                        self.stmts(body);
                        self.loops.pop();
                    }
                    Stmt::If { cond, then, els } => {
                        self.expr(cond, id);
                        self.branch += 1;
                        self.stmts(then);
                        self.stmts(els);
                        self.branch -= 1;
                    }
                }
            }
        }
    }
    let mut w = W {
        sites: Vec::new(),
        next: 0,
        loops: Vec::new(),
        branch: 0,
    };
    w.stmts(body);
    w.sites
}

/// True when `rhs` reads `name` at an index syntactically equal to `widx`.
fn reads_same_element(rhs: &Expr, name: &str, widx: &Expr) -> bool {
    match rhs {
        Expr::Index(n, idx) => {
            (n == name && idx.as_ref() == widx) || reads_same_element(idx, name, widx)
        }
        Expr::Bin(_, _, a, b) => {
            reads_same_element(a, name, widx) || reads_same_element(b, name, widx)
        }
        Expr::Neg(_, a) | Expr::Cast(_, _, a) => reads_same_element(a, name, widx),
        Expr::Call(_, _, args) => args.iter().any(|a| reads_same_element(a, name, widx)),
        Expr::Select(c, a, b) => {
            reads_same_element(c, name, widx)
                || reads_same_element(a, name, widx)
                || reads_same_element(b, name, widx)
        }
        Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => false,
    }
}

// ---------------------------------------------------------------------------
// The exact overlap test
// ---------------------------------------------------------------------------

/// Three-valued verdict of a dependence/overlap question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tri {
    /// A witness exists (both iterations provably execute).
    Proven,
    /// No witness can exist.
    Disproven,
    /// Non-affine, unbounded symbol, or search budget exhausted.
    Unknown,
}

/// One existential variable of the overlap equation.
#[derive(Debug, Clone, Copy)]
struct VarSpec {
    coeff: i64,
    lo: i64,
    hi: i64,
    /// True for the iteration-difference variable, which must be nonzero.
    nonzero: bool,
}

/// Node budget for the exhaustive search; beyond it the verdict degrades
/// to `Unknown` unless the interval/GCD checks already disproved.
const SEARCH_BUDGET: u64 = 1 << 20;

/// Decides `∃ x: Σ coeff_m·x_m + c = 0` with each `x_m ∈ [lo_m, hi_m]`,
/// `x_m ≠ 0` where flagged, and `x_a ≠ x_b` for each pair in `neq`.
fn solve_eq(terms: &[VarSpec], c: i64, neq: &[(usize, usize)]) -> Tri {
    // Interval (Banerjee) bounds. The extra constraints only shrink the
    // witness set, so interval/GCD disproofs stay sound with them ignored.
    let (mut lo, mut hi) = (c, c);
    for t in terms {
        let a = t.coeff * t.lo;
        let b = t.coeff * t.hi;
        lo += a.min(b);
        hi += a.max(b);
    }
    if lo > 0 || hi < 0 {
        return Tri::Disproven;
    }
    // GCD test over nonzero coefficients.
    let g = terms
        .iter()
        .map(|t| t.coeff.unsigned_abs())
        .filter(|&c| c != 0)
        .fold(0u64, gcd);
    if g != 0 && !c.unsigned_abs().is_multiple_of(g) {
        return Tri::Disproven;
    }
    if g == 0 && neq.is_empty() {
        // No variable contributes: the equation is just `c = 0` — but a
        // `nonzero` variable must still have a nonzero value available.
        let nonzero_ok = terms
            .iter()
            .filter(|t| t.nonzero)
            .all(|t| t.lo < 0 || t.hi > 0);
        return if c == 0 && nonzero_ok {
            Tri::Proven
        } else {
            Tri::Disproven
        };
    }
    // Budgeted depth-first search with suffix interval pruning.
    // suffix_lo/hi[i] = extreme contribution of terms[i..].
    let n = terms.len();
    let mut suffix_lo = vec![0i64; n + 1];
    let mut suffix_hi = vec![0i64; n + 1];
    for i in (0..n).rev() {
        let a = terms[i].coeff * terms[i].lo;
        let b = terms[i].coeff * terms[i].hi;
        suffix_lo[i] = suffix_lo[i + 1] + a.min(b);
        suffix_hi[i] = suffix_hi[i + 1] + a.max(b);
    }
    struct Search<'a> {
        terms: &'a [VarSpec],
        neq: &'a [(usize, usize)],
        suffix_lo: &'a [i64],
        suffix_hi: &'a [i64],
        vals: Vec<i64>,
        budget: u64,
    }
    impl Search<'_> {
        fn dfs(&mut self, i: usize, acc: i64) -> Option<bool> {
            if self.budget == 0 {
                return None; // exhausted → Unknown
            }
            self.budget -= 1;
            if i == self.terms.len() {
                let ok = acc == 0 && self.neq.iter().all(|&(a, b)| self.vals[a] != self.vals[b]);
                return Some(ok);
            }
            if acc + self.suffix_lo[i] > 0 || acc + self.suffix_hi[i] < 0 {
                return Some(false);
            }
            let t = self.terms[i];
            for v in t.lo..=t.hi {
                if t.nonzero && v == 0 {
                    continue;
                }
                self.vals[i] = v;
                match self.dfs(i + 1, acc + t.coeff * v) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(false)
        }
    }
    let mut s = Search {
        terms,
        neq,
        suffix_lo: &suffix_lo,
        suffix_hi: &suffix_hi,
        vals: vec![0; n],
        budget: SEARCH_BUDGET,
    };
    match s.dfs(0, c) {
        Some(true) => Tri::Proven,
        Some(false) => Tri::Disproven,
        None => Tri::Unknown,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Resolved trip count of a frame (task loop falls back to the hint).
fn frame_trip(f: &LoopFrame, tasks_hint: u32) -> u32 {
    f.trip.unwrap_or(tasks_hint)
}

/// Can sites `a` and `b` touch the same element of their (shared) array in
/// two *different* iterations of loop `lid`? Both sites must be enclosed
/// by `lid`. `Proven` additionally requires both sites to provably execute
/// (no enclosing `if`, no zero-trip enclosing loop inside `lid`).
pub fn cross_iteration_overlap(
    a: &AccessSite,
    b: &AccessSite,
    lid: LoopId,
    tasks_hint: u32,
) -> Tri {
    debug_assert_eq!(a.array, b.array);
    let (Some(pa), Some(pb)) = (a.frame_pos(lid), b.frame_pos(lid)) else {
        return Tri::Unknown;
    };
    let l_var = a.loops[pa].var.clone();
    let t_l = frame_trip(&a.loops[pa], tasks_hint) as i64;
    if t_l < 2 {
        return Tri::Disproven;
    }
    // If an inner loop shadows `lid`'s variable name at either site, the
    // coefficient bookkeeping below would attribute it to the wrong loop.
    if a.binding(&l_var).map(|(p, _)| p) != Some(pa)
        || b.binding(&l_var).map(|(p, _)| p) != Some(pb)
    {
        return Tri::Unknown;
    }
    let (Some(fa), Some(fb)) = (affine_form(&a.index), affine_form(&b.index)) else {
        return Tri::Unknown;
    };

    // Build the difference equation f_a(...) - f_b(...) = 0 over
    // existential variables. Classification per variable:
    //
    // * `lid`'s own induction variable: equal coefficients fold into one
    //   difference variable Δ ∈ ±[1, t-1]; unequal coefficients become two
    //   independent variables i, i' ∈ [0, t-1] linked by an i ≠ i'
    //   constraint.
    // * Variables bound by loops *outside* `lid` (and runtime scalars):
    //   both iterations run under the same activation, so the value is
    //   shared — equal coefficients cancel, unequal ones contribute one
    //   exact (ca−cb)·x term (unbounded for scalars → Unknown).
    // * Variables bound by loops *inside* `lid`: each side re-executes the
    //   inner loop, so the two occurrences are independent per side.
    //
    // All three encodings are exact, so both Proven and Disproven are
    // trustworthy; Unknown arises only from non-affine forms, unbounded
    // scalars, inconsistent shadowing, or search-budget exhaustion.
    let mut terms: Vec<VarSpec> = Vec::new();
    let mut neq: Vec<(usize, usize)> = Vec::new();
    let ca_l = fa.coeff(&l_var);
    let cb_l = fb.coeff(&l_var);
    if ca_l == cb_l {
        // Substitute i' = i + Δ: the i terms cancel, leaving -coeff·Δ.
        // (With coeff 0 the term is inert and the constant test decides,
        // but the nonzero flag still demands a Δ value to exist.)
        terms.push(VarSpec {
            coeff: -cb_l,
            lo: -(t_l - 1),
            hi: t_l - 1,
            nonzero: true,
        });
    } else {
        let ia = terms.len();
        terms.push(VarSpec {
            coeff: ca_l,
            lo: 0,
            hi: t_l - 1,
            nonzero: false,
        });
        let ib = terms.len();
        terms.push(VarSpec {
            coeff: -cb_l,
            lo: 0,
            hi: t_l - 1,
            nonzero: false,
        });
        neq.push((ia, ib));
    }

    let mut vars: Vec<&String> = fa.terms.keys().chain(fb.terms.keys()).collect();
    vars.sort();
    vars.dedup();
    for v in vars {
        if *v == l_var {
            continue;
        }
        let ca = fa.coeff(v);
        let cb = fb.coeff(v);
        match (a.binding(v), b.binding(v)) {
            (Some((ba, fra)), Some((bb, frb))) if ba < pa && bb < pb => {
                // Shared outer loop variable. Require both sites to agree
                // on which loop binds it (same id ⇒ same range).
                if fra.id != frb.id {
                    return Tri::Unknown;
                }
                if ca != cb {
                    let t = frame_trip(fra, tasks_hint) as i64;
                    terms.push(VarSpec {
                        coeff: ca - cb,
                        lo: 0,
                        hi: (t - 1).max(0),
                        nonzero: false,
                    });
                }
            }
            (None, None) => {
                // Runtime scalar: shared value, unbounded.
                if ca != cb {
                    return Tri::Unknown;
                }
            }
            _ => {
                // Bound inside `lid` on the side(s) that use it:
                // independent per side. A variable used by one side while
                // the other side binds it outside (shadowing mismatch) is
                // handled here too, conservatively per-side — but proof
                // would then be unsafe, so bail to Unknown unless each
                // side that *uses* the variable binds it inside `lid`.
                if ca != 0 {
                    match a.binding(v) {
                        Some((ba, fra)) if ba > pa => {
                            let t = frame_trip(fra, tasks_hint) as i64;
                            terms.push(VarSpec {
                                coeff: ca,
                                lo: 0,
                                hi: (t - 1).max(0),
                                nonzero: false,
                            });
                        }
                        _ => return Tri::Unknown,
                    }
                }
                if cb != 0 {
                    match b.binding(v) {
                        Some((bb, frb)) if bb > pb => {
                            let t = frame_trip(frb, tasks_hint) as i64;
                            terms.push(VarSpec {
                                coeff: -cb,
                                lo: 0,
                                hi: (t - 1).max(0),
                                nonzero: false,
                            });
                        }
                        _ => return Tri::Unknown,
                    }
                }
            }
        }
    }
    let c = fa.offset - fb.offset;
    let mut verdict = solve_eq(&terms, c, &neq);

    // `Proven` must also mean both iterations actually execute the access.
    if verdict == Tri::Proven {
        let executes = |s: &AccessSite, pos: usize| {
            !s.in_branch
                && s.loops[pos + 1..]
                    .iter()
                    .all(|f| frame_trip(f, tasks_hint) >= 1)
        };
        if !executes(a, pa) || !executes(b, pb) {
            verdict = Tri::Unknown;
        }
    }
    verdict
}

// ---------------------------------------------------------------------------
// Race detection & replication clearance
// ---------------------------------------------------------------------------

/// A proven cross-iteration write-write race under one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// The loop whose replication would be nondeterministic.
    pub loop_id: LoopId,
    /// The array written.
    pub array: String,
    /// Pre-order statement indices of the two conflicting writes (equal
    /// for a self-conflict).
    pub stmt_a: u32,
    /// See [`RaceFinding::stmt_a`].
    pub stmt_b: u32,
}

/// Searches for a proven write-write race under `lid`: two different
/// iterations writing the same element of the same array. Read-modify-write
/// accumulations are excluded (they are carried *flow* dependences, owned
/// by the recurrence machinery, not races), and so are arrays declared
/// inside `body` (the loop's own body): those are re-created per iteration,
/// so replication privatizes them and no cross-iteration conflict exists.
/// Returns the first finding in statement order.
pub fn find_write_race(
    sites: &[AccessSite],
    body: &[Stmt],
    lid: LoopId,
    tasks_hint: u32,
) -> Option<RaceFinding> {
    let mut private: HashSet<String> = HashSet::new();
    collect_decl_names(body, &mut private);
    let writes: Vec<&AccessSite> = sites
        .iter()
        .filter(|s| s.write && !s.rmw && !private.contains(&s.array) && s.frame_pos(lid).is_some())
        .collect();
    for (i, a) in writes.iter().enumerate() {
        for b in &writes[i..] {
            if a.array != b.array {
                continue;
            }
            if cross_iteration_overlap(a, b, lid, tasks_hint) == Tri::Proven {
                return Some(RaceFinding {
                    loop_id: lid,
                    array: a.array.clone(),
                    stmt_a: a.stmt,
                    stmt_b: b.stmt,
                });
            }
        }
    }
    None
}

/// True when permuting the iteration order of `lid` provably cannot change
/// any output: every cross-iteration write-write *and* write-read pair on
/// every array is disproven, and no scalar that outlives one iteration is
/// written in the body (scalar recurrences both carry values between
/// iterations and reorder floating-point reductions).
///
/// This is exactly the property the randomized-interleaving oracle
/// validates: a cleared loop must produce bit-identical outputs under any
/// iteration order.
pub fn replication_safe(sites: &[AccessSite], body: &[Stmt], lid: LoopId, tasks_hint: u32) -> bool {
    // Scalars declared in the body (at any depth) are re-created per
    // iteration; any other scalar written under the loop is shared state.
    let mut private: HashSet<String> = HashSet::new();
    collect_decl_names(body, &mut private);
    if writes_shared_scalar(body, &private) {
        return false;
    }
    // Arrays declared in the body are as private as body scalars: each
    // iteration gets a fresh copy, so their accesses cannot couple
    // iterations.
    let under: Vec<&AccessSite> = sites
        .iter()
        .filter(|s| s.frame_pos(lid).is_some() && !private.contains(&s.array))
        .collect();
    let writes: Vec<&&AccessSite> = under.iter().filter(|s| s.write).collect();
    for (i, w) in writes.iter().enumerate() {
        // Write-write pairs, including the self pair.
        for w2 in &writes[i..] {
            if w.array == w2.array
                && cross_iteration_overlap(w, w2, lid, tasks_hint) != Tri::Disproven
            {
                return false;
            }
        }
        // Write-read pairs over the same array.
        for r in under.iter().filter(|s| !s.write && s.array == w.array) {
            if cross_iteration_overlap(w, r, lid, tasks_hint) != Tri::Disproven {
                return false;
            }
        }
    }
    true
}

fn collect_decl_names(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        match s {
            Stmt::Decl { name, .. } | Stmt::DeclArr { name, .. } => {
                out.insert(name.clone());
            }
            Stmt::For { var, body, .. } => {
                out.insert(var.clone());
                collect_decl_names(body, out);
            }
            Stmt::If { then, els, .. } => {
                collect_decl_names(then, out);
                collect_decl_names(els, out);
            }
            _ => {}
        }
    }
}

fn writes_shared_scalar(stmts: &[Stmt], private: &HashSet<String>) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign {
            lhs: LValue::Var(n),
            ..
        } => !private.contains(n),
        Stmt::For { body, .. } => writes_shared_scalar(body, private),
        Stmt::If { then, els, .. } => {
            writes_shared_scalar(then, private) || writes_shared_scalar(els, private)
        }
        _ => false,
    })
}

// ---------------------------------------------------------------------------
// Exact dependence distance
// ---------------------------------------------------------------------------

/// Exact distance of an array recurrence `via[w(i)] = f(via[r(i)])` in the
/// immediate body of a loop over `var`: the number of iterations between
/// the write and the dependent read. Returns `Some(d)` with `d >= 1` only
/// when every read of `via` feeding a write of `via` sits at the same
/// affine coefficient with a consistent positive integer distance; the
/// minimum over all such read sites bounds the recurrence II as
/// `chain / d`. Scalar recurrences and irregular accesses return `None`
/// (distance 1 — no relaxation).
pub fn exact_distance(body: &[Stmt], var: &str, via: &str) -> Option<u32> {
    let mut dmin: Option<u32> = None;
    fn reads_of<'a>(e: &'a Expr, arr: &str, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Index(n, idx) => {
                if n == arr {
                    out.push(idx);
                }
                reads_of(idx, arr, out);
            }
            Expr::Bin(_, _, a, b) => {
                reads_of(a, arr, out);
                reads_of(b, arr, out);
            }
            Expr::Neg(_, a) | Expr::Cast(_, _, a) => reads_of(a, arr, out),
            Expr::Call(_, _, args) => args.iter().for_each(|a| reads_of(a, arr, out)),
            Expr::Select(c, a, b) => {
                reads_of(c, arr, out);
                reads_of(a, arr, out);
                reads_of(b, arr, out);
            }
            Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => {}
        }
    }
    fn visit(stmts: &[Stmt], var: &str, via: &str, dmin: &mut Option<u32>, bad: &mut bool) {
        for s in stmts {
            match s {
                Stmt::Assign {
                    lhs: LValue::Index(arr, widx),
                    rhs,
                } if arr == via => {
                    let mut reads = Vec::new();
                    reads_of(rhs, via, &mut reads);
                    if reads.is_empty() {
                        continue;
                    }
                    let Some(wf) = affine_form(widx) else {
                        *bad = true;
                        continue;
                    };
                    let cw = wf.coeff(var);
                    for ridx in reads {
                        let Some(rf) = affine_form(ridx) else {
                            *bad = true;
                            continue;
                        };
                        // Non-loop-var terms must match exactly for the
                        // "same element, d iterations apart" reading.
                        let mut wt = wf.terms.clone();
                        let mut rt = rf.terms.clone();
                        wt.remove(var);
                        rt.remove(var);
                        if wt != rt {
                            *bad = true;
                            continue;
                        }
                        let cr = rf.coeff(var);
                        if cw != cr || cw == 0 {
                            *bad = true;
                            continue;
                        }
                        let num = wf.offset - rf.offset;
                        if num % cw != 0 {
                            // Never the same element: not a recurrence
                            // through this pair at all; it doesn't bound d.
                            continue;
                        }
                        let d = num / cw;
                        if d < 1 {
                            *bad = true;
                            continue;
                        }
                        let d = d as u32;
                        *dmin = Some(dmin.map_or(d, |m| m.min(d)));
                    }
                }
                Stmt::If { then, els, .. } => {
                    visit(then, var, via, dmin, bad);
                    visit(els, var, via, dmin, bad);
                }
                _ => {}
            }
        }
    }
    let mut bad = false;
    visit(body, var, via, &mut dmin, &mut bad);
    if bad {
        None
    } else {
        dmin.filter(|&d| d >= 1)
    }
}

// ---------------------------------------------------------------------------
// Conservative recurrence scan (moved from hlsir::analysis)
// ---------------------------------------------------------------------------

/// Detects a loop-carried dependence in a loop body (excluding nested
/// loops, which carry their own). This is the conservative verdict that
/// bounds the estimator's II; it over-approximates (any read of a written
/// array with a matching coefficient counts) and is deliberately unchanged
/// from the historical `hlsir::analysis` scan so estimates stay
/// bit-identical.
pub fn conservative_carried(
    stmts: &[Stmt],
    loop_var: &str,
    outer_decls: &HashSet<String>,
) -> Option<CarriedDep> {
    // Variables declared in this body are private per iteration.
    let mut private = HashSet::new();
    for s in stmts {
        if let Stmt::Decl { name, .. } | Stmt::DeclArr { name, .. } = s {
            private.insert(name.clone());
        }
    }
    let mut best: Option<CarriedDep> = None;
    scan_carried(stmts, loop_var, &private, outer_decls, &mut best);
    // Second pass: multi-statement recurrences flowing through scalar
    // temporaries (e.g. `h = f(cur[j]); cur[j+1] = h` in a DP wavefront).
    scan_carried_array_transitive(stmts, loop_var, &mut best);
    best
}

/// Per-scalar dataflow info accumulated while walking a loop body.
#[derive(Debug, Clone, Default)]
struct ScalarFlow {
    /// Array reads feeding this value: `(array, index expression)`.
    array_reads: Vec<(String, Expr)>,
    /// Operation chain from the deepest feeding read to this value.
    chain: OpCounts,
}

fn expr_flow(e: &Expr, flows: &std::collections::HashMap<String, ScalarFlow>) -> ScalarFlow {
    let mut out = ScalarFlow::default();
    let mut ops = OpCounts::new();
    let mut dummy = Vec::new();
    crate::analysis::count_expr(e, "", &mut ops, &mut dummy);
    out.chain = ops;
    fn walk(e: &Expr, out: &mut ScalarFlow, flows: &std::collections::HashMap<String, ScalarFlow>) {
        match e {
            Expr::Var(n) => {
                if let Some(f) = flows.get(n) {
                    out.array_reads.extend(f.array_reads.iter().cloned());
                    out.chain += f.chain;
                }
            }
            Expr::Index(n, idx) => {
                out.array_reads.push((n.clone(), idx.as_ref().clone()));
                walk(idx, out, flows);
            }
            Expr::Bin(_, _, a, b) => {
                walk(a, out, flows);
                walk(b, out, flows);
            }
            Expr::Neg(_, a) | Expr::Cast(_, _, a) => walk(a, out, flows),
            Expr::Call(_, _, args) => {
                for a in args {
                    walk(a, out, flows);
                }
            }
            Expr::Select(c, a, b) => {
                walk(c, out, flows);
                walk(a, out, flows);
                walk(b, out, flows);
            }
            Expr::ConstI(_) | Expr::ConstF(_) => {}
        }
    }
    walk(e, &mut out, flows);
    out
}

/// Detects recurrences whose cycle spans multiple statements by chaining
/// scalar definitions: an array write whose value transitively depends on
/// a read of the *same* array at a different (or loop-invariant) index is
/// loop-carried. Multi-statement cycles are conservatively non-reducible.
fn scan_carried_array_transitive(stmts: &[Stmt], loop_var: &str, best: &mut Option<CarriedDep>) {
    use std::collections::HashMap;
    let mut flows: HashMap<String, ScalarFlow> = HashMap::new();
    fn visit(
        stmts: &[Stmt],
        loop_var: &str,
        flows: &mut std::collections::HashMap<String, ScalarFlow>,
        best: &mut Option<CarriedDep>,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign {
                    lhs: LValue::Var(v),
                    rhs,
                } => {
                    let f = expr_flow(rhs, flows);
                    flows.insert(v.clone(), f);
                }
                Stmt::Assign {
                    lhs: LValue::Index(arr, widx),
                    rhs,
                } => {
                    let f = expr_flow(rhs, flows);
                    for (rarr, ridx) in &f.array_reads {
                        if rarr != arr {
                            continue;
                        }
                        let carried = if ridx == widx.as_ref() {
                            // Same element: carried only when the index is
                            // loop-invariant (the cell is reused every
                            // iteration).
                            matches!(linear_coeff(ridx, loop_var), Some(0) | None)
                        } else {
                            true
                        };
                        if carried {
                            let mut chain = f.chain;
                            chain.mem_read += 1;
                            let cand = CarriedDep {
                                via: arr.clone(),
                                chain,
                                reducible: false,
                            };
                            // The single-statement pass already analyzed
                            // a recurrence through this carrier precisely
                            // (including reducibility) — don't override it.
                            let better = match best {
                                None => true,
                                Some(b) if b.via == cand.via => false,
                                Some(b) => chain_weight(&cand.chain) > chain_weight(&b.chain),
                            };
                            if better {
                                *best = Some(cand);
                            }
                        }
                    }
                }
                Stmt::Decl {
                    name,
                    init: Some(e),
                    ..
                } => {
                    let f = expr_flow(e, flows);
                    flows.insert(name.clone(), f);
                }
                Stmt::If { then, els, .. } => {
                    visit(then, loop_var, flows, best);
                    visit(els, loop_var, flows, best);
                }
                _ => {}
            }
        }
    }
    visit(stmts, loop_var, &mut flows, best);
}

fn scan_carried(
    stmts: &[Stmt],
    loop_var: &str,
    private: &HashSet<String>,
    _outer: &HashSet<String>,
    best: &mut Option<CarriedDep>,
) {
    for s in stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let cand =
                    match lhs {
                        LValue::Var(n) if !private.contains(n) => carried_through_scalar(n, rhs)
                            .map(|(chain, reducible)| CarriedDep {
                                via: n.clone(),
                                chain,
                                reducible,
                            }),
                        LValue::Index(n, widx) => carried_through_array(n, widx, rhs, loop_var)
                            .map(|(chain, reducible)| CarriedDep {
                                via: n.clone(),
                                chain,
                                reducible,
                            }),
                        _ => None,
                    };
                if let Some(c) = cand {
                    let better = match best {
                        None => true,
                        Some(b) => chain_weight(&c.chain) > chain_weight(&b.chain),
                    };
                    if better {
                        *best = Some(c);
                    }
                }
            }
            Stmt::If { then, els, .. } => {
                scan_carried(then, loop_var, private, _outer, best);
                scan_carried(els, loop_var, private, _outer, best);
            }
            _ => {}
        }
    }
}

fn chain_weight(c: &OpCounts) -> u32 {
    c.total_arith() + c.total_mem()
}

/// If `rhs` reads scalar `name`, return the op chain from that read to the
/// root and whether the cycle is a pure associative accumulation.
fn carried_through_scalar(name: &str, rhs: &Expr) -> Option<(OpCounts, bool)> {
    let chain = path_ops(rhs, &|e| matches!(e, Expr::Var(n) if n == name))?;
    let reducible = is_assoc_accum(rhs, &|e| matches!(e, Expr::Var(n) if n == name));
    Some((chain, reducible))
}

/// If `rhs` reads `name[...]` at an index offset from the written index
/// along `loop_var` (or at the same index — accumulation), the loop carries
/// a dependence through the array.
fn carried_through_array(
    name: &str,
    widx: &Expr,
    rhs: &Expr,
    loop_var: &str,
) -> Option<(OpCounts, bool)> {
    let w_coeff = linear_coeff(widx, loop_var);
    let matcher = |e: &Expr| -> bool {
        if let Expr::Index(n, ridx) = e {
            if n == name {
                match (w_coeff, linear_coeff(ridx, loop_var)) {
                    // Same stride in the loop var: same element is touched
                    // either this iteration (offset) or every iteration
                    // (coeff 0) — a genuine carried dependence unless the
                    // constant offsets provably differ with equal coeffs
                    // (forward-only). We stay conservative: any read of the
                    // written array with matching coefficient counts.
                    (Some(a), Some(b)) => a == b || a == 0 || b == 0,
                    _ => true, // irregular: assume carried
                }
            } else {
                false
            }
        } else {
            false
        }
    };
    let chain = path_ops(rhs, &matcher)?;
    let reducible = is_assoc_accum(rhs, &matcher);
    Some((chain, reducible))
}

/// Ops on the path from a leaf matching `is_carrier` to the root of `e`
/// (the recurrence cycle), or `None` if no leaf matches.
fn path_ops(e: &Expr, is_carrier: &dyn Fn(&Expr) -> bool) -> Option<OpCounts> {
    if is_carrier(e) {
        return Some(OpCounts::new());
    }
    match e {
        Expr::ConstI(_) | Expr::ConstF(_) | Expr::Var(_) => None,
        Expr::Index(_, idx) => {
            let mut c = path_ops(idx, is_carrier)?;
            c.mem_read += 1;
            Some(c)
        }
        Expr::Bin(op, kind, a, b) => {
            let hit = path_ops(a, is_carrier).or_else(|| path_ops(b, is_carrier))?;
            let mut c = hit;
            c.record_bin(*op, *kind);
            Some(c)
        }
        Expr::Neg(kind, a) => {
            let mut c = path_ops(a, is_carrier)?;
            if kind.is_float() {
                c.fadd += 1;
            } else {
                c.int_alu += 1;
            }
            Some(c)
        }
        Expr::Call(f, kind, args) => {
            let hit = args.iter().find_map(|a| path_ops(a, is_carrier))?;
            let mut c = hit;
            c.record_call(*f, *kind);
            Some(c)
        }
        Expr::Cast(_, _, a) => path_ops(a, is_carrier),
        Expr::Select(cnd, a, b) => {
            let hit = path_ops(cnd, is_carrier)
                .or_else(|| path_ops(a, is_carrier))
                .or_else(|| path_ops(b, is_carrier))?;
            let mut c = hit;
            c.int_alu += 1;
            Some(c)
        }
    }
}

/// True if `e` is `carrier + f(...)` / `f(...) + carrier` (or `min`/`max`
/// of the carrier) — the associative patterns tree reduction can rewrite.
fn is_assoc_accum(e: &Expr, is_carrier: &dyn Fn(&Expr) -> bool) -> bool {
    match e {
        Expr::Bin(CBinOp::Add, _, a, b) => {
            (is_carrier(a) && path_ops(b, is_carrier).is_none())
                || (is_carrier(b) && path_ops(a, is_carrier).is_none())
        }
        Expr::Call(CIntrinsic::Min | CIntrinsic::Max, _, args) => {
            args.len() == 2
                && ((is_carrier(&args[0]) && path_ops(&args[1], is_carrier).is_none())
                    || (is_carrier(&args[1]) && path_ops(&args[0], is_carrier).is_none()))
        }
        _ => false,
    }
}

/// Linear coefficient of `var` in `e`, if `e` is affine in it.
pub fn linear_coeff(e: &Expr, var: &str) -> Option<i64> {
    match e {
        Expr::ConstI(_) => Some(0),
        Expr::Var(n) => Some(if n == var { 1 } else { 0 }),
        Expr::Bin(op, _, a, b) => {
            let ca = linear_coeff(a, var)?;
            let cb = linear_coeff(b, var)?;
            match op {
                CBinOp::Add => Some(ca + cb),
                CBinOp::Sub => Some(ca - cb),
                CBinOp::Mul => {
                    // affine only if one side is var-free
                    if ca == 0 && cb == 0 {
                        Some(0)
                    } else if ca == 0 {
                        const_value(a).map(|k| k * cb)
                    } else if cb == 0 {
                        const_value(b).map(|k| k * ca)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        Expr::Cast(_, _, a) => linear_coeff(a, var),
        _ => None,
    }
}

/// Constant value of a var-free expression, when trivially foldable.
pub fn const_value(e: &Expr) -> Option<i64> {
    match e {
        Expr::ConstI(v) => Some(*v),
        Expr::Bin(op, _, a, b) => {
            let x = const_value(a)?;
            let y = const_value(b)?;
            match op {
                CBinOp::Add => Some(x + y),
                CBinOp::Sub => Some(x - y),
                CBinOp::Mul => Some(x * y),
                _ => None,
            }
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Multi-statement scalar recurrences (the gap the conservative scan misses)
// ---------------------------------------------------------------------------

/// Detects a scalar recurrence whose cycle spans multiple statements, e.g.
/// `t = s; s = t + a[i]` — the conservative scan requires the assignment's
/// right-hand side to read the assigned scalar *directly*, so such chains
/// slip through and leave the estimator optimistic. The verdict here only
/// ever *adds* a carried dependence (consulted when the conservative scan
/// found none), keeping the default path untouched.
///
/// Scalars declared anywhere in the body (including nested loop variables)
/// are private per iteration and cannot carry. Assignments under an `if`
/// are treated as may-writes: they feed flows but do not kill the
/// pre-iteration value.
pub fn transitive_scalar_carried(body: &[Stmt]) -> Option<CarriedDep> {
    use std::collections::HashMap;
    let mut private: HashSet<String> = HashSet::new();
    collect_decl_names(body, &mut private);

    #[derive(Default, Clone)]
    struct Flow {
        /// Scalars whose *pre-iteration* value transitively feeds this one.
        pre: HashSet<String>,
        chain: OpCounts,
    }
    struct V {
        flows: HashMap<String, Flow>,
        /// Scalars unconditionally assigned so far this iteration.
        killed: HashSet<String>,
    }
    impl V {
        fn flow_of(&self, e: &Expr) -> Flow {
            let mut out = Flow::default();
            let mut dummy = Vec::new();
            crate::analysis::count_expr(e, "", &mut out.chain, &mut dummy);
            let mut reads = Vec::new();
            e.free_vars(&mut reads);
            for r in reads {
                if let Some(f) = self.flows.get(&r) {
                    out.pre.extend(f.pre.iter().cloned());
                    out.chain += f.chain;
                }
                if !self.killed.contains(&r) {
                    // The value may still be the pre-iteration one.
                    out.pre.insert(r);
                }
            }
            out
        }
    }
    fn visit(
        stmts: &[Stmt],
        v: &mut V,
        conditional: bool,
        private: &HashSet<String>,
        best: &mut Option<CarriedDep>,
    ) {
        for s in stmts {
            match s {
                Stmt::Assign {
                    lhs: LValue::Var(name),
                    rhs,
                } => {
                    let f = v.flow_of(rhs);
                    if !private.contains(name) && f.pre.contains(name) {
                        let cand = CarriedDep {
                            via: name.clone(),
                            chain: f.chain,
                            reducible: false,
                        };
                        let better = match best {
                            None => true,
                            Some(b) => chain_weight(&cand.chain) > chain_weight(&b.chain),
                        };
                        if better {
                            *best = Some(cand);
                        }
                    }
                    if conditional {
                        // May-write: merge so downstream reads see both the
                        // flow and the surviving pre-value.
                        let e = v.flows.entry(name.clone()).or_default();
                        e.pre.extend(f.pre);
                        e.chain += f.chain;
                    } else {
                        v.flows.insert(name.clone(), f);
                        v.killed.insert(name.clone());
                    }
                }
                Stmt::Decl {
                    name,
                    init: Some(e),
                    ..
                } => {
                    let f = v.flow_of(e);
                    v.flows.insert(name.clone(), f);
                    v.killed.insert(name.clone());
                }
                Stmt::Decl {
                    name, init: None, ..
                } => {
                    v.flows.insert(name.clone(), Flow::default());
                    v.killed.insert(name.clone());
                }
                Stmt::If { then, els, .. } => {
                    visit(then, v, true, private, best);
                    visit(els, v, true, private, best);
                }
                // Nested loops carry their own dependences; their bodies
                // assign only privates (their decls and induction vars are
                // in the private set) or shared scalars, which the nested
                // walk of `kernel_dataflow` covers per loop.
                Stmt::For { body, .. } => visit(body, v, conditional, private, best),
                _ => {}
            }
        }
    }
    let mut v = V {
        flows: std::collections::HashMap::new(),
        killed: HashSet::new(),
    };
    let mut best = None;
    visit(body, &mut v, false, &private, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CNumKind, CType, LoopAttrs};

    fn idx_write(arr: &str, idx: Expr, rhs: Expr) -> Stmt {
        Stmt::Assign {
            lhs: LValue::Index(arr.into(), Box::new(idx)),
            rhs,
        }
    }

    fn for_loop(id: u32, var: &str, trip: u32, body: Vec<Stmt>) -> Stmt {
        Stmt::For {
            id: LoopId(id),
            var: var.into(),
            bound: Expr::ConstI(trip as i64),
            trip_count: Some(trip),
            attrs: LoopAttrs::none(),
            body,
        }
    }

    /// The body of the loop `lid` somewhere under `stmts`.
    fn body_of(stmts: &[Stmt], lid: LoopId) -> &[Stmt] {
        fn walk(stmts: &[Stmt], lid: LoopId) -> Option<&[Stmt]> {
            for s in stmts {
                match s {
                    Stmt::For { id, body, .. } => {
                        if *id == lid {
                            return Some(body);
                        }
                        if let Some(b) = walk(body, lid) {
                            return Some(b);
                        }
                    }
                    Stmt::If { then, els, .. } => {
                        if let Some(b) = walk(then, lid).or_else(|| walk(els, lid)) {
                            return Some(b);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        walk(stmts, lid).expect("loop present")
    }

    /// `find_write_race` with the loop body located for the caller.
    fn find_race(sites: &[AccessSite], stmts: &[Stmt], lid: LoopId) -> Option<RaceFinding> {
        find_write_race(sites, body_of(stmts, lid), lid, 64)
    }

    #[test]
    fn affine_form_extraction() {
        // 8*t + j + 3
        let e = Expr::iadd(
            Expr::iadd(Expr::imul(Expr::var("t"), Expr::ConstI(8)), Expr::var("j")),
            Expr::ConstI(3),
        );
        let f = affine_form(&e).unwrap();
        assert_eq!(f.coeff("t"), 8);
        assert_eq!(f.coeff("j"), 1);
        assert_eq!(f.offset, 3);
        // t * j is not affine
        assert!(affine_form(&Expr::imul(Expr::var("t"), Expr::var("j"))).is_none());
    }

    #[test]
    fn unit_stride_writes_do_not_race() {
        // for i in 0..16 { a[i] = i }
        let body = vec![for_loop(
            0,
            "i",
            16,
            vec![idx_write("a", Expr::var("i"), Expr::var("i"))],
        )];
        let sites = collect_sites(&body);
        assert!(find_race(&sites, &body, LoopId(0)).is_none());
    }

    #[test]
    fn constant_index_write_races() {
        // for i in 0..16 { a[0] = i } — every iteration writes a[0].
        let body = vec![for_loop(
            0,
            "i",
            16,
            vec![idx_write("a", Expr::ConstI(0), Expr::var("i"))],
        )];
        let sites = collect_sites(&body);
        let race = find_race(&sites, &body, LoopId(0)).expect("race");
        assert_eq!(race.array, "a");
        assert_eq!(race.stmt_a, race.stmt_b);
    }

    #[test]
    fn rmw_accumulation_is_not_a_race() {
        // for i { a[0] = a[0] + 1 } — a carried flow dep, not a race.
        let body = vec![for_loop(
            0,
            "i",
            16,
            vec![idx_write(
                "a",
                Expr::ConstI(0),
                Expr::iadd(Expr::index("a", Expr::ConstI(0)), Expr::ConstI(1)),
            )],
        )];
        let sites = collect_sites(&body);
        assert!(find_race(&sites, &body, LoopId(0)).is_none());
        // ... but it is not replication-safe either (write-read overlap).
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(!replication_safe(&sites, inner, LoopId(0), 64));
    }

    #[test]
    fn strided_cross_statement_race_is_proven() {
        // for i in 0..8 { a[2*i] = ...; a[i+4] = ... } — i=4 writes a[8]
        // and i'=2 writes a[8]? 2*4=8, 2+... i'=4: a[4+4]=a[8]; need two
        // *different* iterations: 2*i == i'+4 with i != i' → i=3, i'=2.
        let body = vec![for_loop(
            0,
            "i",
            8,
            vec![
                idx_write(
                    "a",
                    Expr::imul(Expr::var("i"), Expr::ConstI(2)),
                    Expr::ConstI(1),
                ),
                idx_write(
                    "a",
                    Expr::iadd(Expr::var("i"), Expr::ConstI(4)),
                    Expr::ConstI(2),
                ),
            ],
        )];
        let sites = collect_sites(&body);
        let race = find_race(&sites, &body, LoopId(0)).expect("race");
        assert_eq!(race.array, "a");
        assert_ne!(race.stmt_a, race.stmt_b);
    }

    #[test]
    fn disjoint_strided_writes_cleared_by_gcd() {
        // for i { a[2*i] = ..; a[2*i + 1] = .. } — evens vs odds never
        // collide; the self pairs have stride 2 ≠ 0.
        let body = vec![for_loop(
            0,
            "i",
            16,
            vec![
                idx_write(
                    "a",
                    Expr::imul(Expr::var("i"), Expr::ConstI(2)),
                    Expr::ConstI(1),
                ),
                idx_write(
                    "a",
                    Expr::iadd(Expr::imul(Expr::var("i"), Expr::ConstI(2)), Expr::ConstI(1)),
                    Expr::ConstI(2),
                ),
            ],
        )];
        let sites = collect_sites(&body);
        assert!(find_race(&sites, &body, LoopId(0)).is_none());
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(replication_safe(&sites, inner, LoopId(0), 64));
    }

    #[test]
    fn inner_loop_overlap_detected_across_outer_iterations() {
        // for i in 0..4 { for j in 0..8 { a[i + j] = .. } } — outer
        // iterations overlap (i=0,j=1 and i=1,j=0 both write a[1]).
        let body = vec![for_loop(
            0,
            "i",
            4,
            vec![for_loop(
                1,
                "j",
                8,
                vec![idx_write(
                    "a",
                    Expr::iadd(Expr::var("i"), Expr::var("j")),
                    Expr::ConstI(1),
                )],
            )],
        )];
        let sites = collect_sites(&body);
        let race = find_race(&sites, &body, LoopId(0)).expect("outer race");
        assert_eq!(race.array, "a");
        // The inner loop alone is race-free (i fixed, j unit stride).
        assert!(find_race(&sites, &body, LoopId(1)).is_none());
    }

    #[test]
    fn blocked_writes_are_disjoint_across_outer_iterations() {
        // for i in 0..4 { for j in 0..8 { a[8*i + j] = .. } } — classic
        // blocked layout, provably disjoint.
        let body = vec![for_loop(
            0,
            "i",
            4,
            vec![for_loop(
                1,
                "j",
                8,
                vec![idx_write(
                    "a",
                    Expr::iadd(Expr::imul(Expr::var("i"), Expr::ConstI(8)), Expr::var("j")),
                    Expr::ConstI(1),
                )],
            )],
        )];
        let sites = collect_sites(&body);
        assert!(find_race(&sites, &body, LoopId(0)).is_none());
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(replication_safe(&sites, inner, LoopId(0), 64));
    }

    #[test]
    fn conditional_write_cannot_prove_a_race() {
        // for i { if (c) { a[0] = i } } — a real hazard at runtime, but
        // never *proven* (the write may not execute); it still blocks
        // replication clearance.
        let body = vec![for_loop(
            0,
            "i",
            16,
            vec![Stmt::If {
                cond: Expr::var("c"),
                then: vec![idx_write("a", Expr::ConstI(0), Expr::var("i"))],
                els: vec![],
            }],
        )];
        let sites = collect_sites(&body);
        assert!(find_race(&sites, &body, LoopId(0)).is_none());
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(!replication_safe(&sites, inner, LoopId(0), 64));
    }

    #[test]
    fn shared_scalar_write_blocks_replication() {
        // for i { s = s + 1 } with s declared outside.
        let body = vec![for_loop(
            0,
            "i",
            8,
            vec![Stmt::Assign {
                lhs: LValue::Var("s".into()),
                rhs: Expr::iadd(Expr::var("s"), Expr::ConstI(1)),
            }],
        )];
        let sites = collect_sites(&body);
        let Stmt::For { body: inner, .. } = &body[0] else {
            unreachable!()
        };
        assert!(!replication_safe(&sites, inner, LoopId(0), 64));
    }

    #[test]
    fn exact_distance_of_stream_recurrence() {
        // a[i] = a[i-2] + 1 → distance 2; a[i] = a[i-1] → distance 1.
        let body2 = vec![idx_write(
            "a",
            Expr::var("i"),
            Expr::iadd(
                Expr::index(
                    "a",
                    Expr::bin(CBinOp::Sub, CNumKind::I32, Expr::var("i"), Expr::ConstI(2)),
                ),
                Expr::ConstI(1),
            ),
        )];
        assert_eq!(exact_distance(&body2, "i", "a"), Some(2));
        let body1 = vec![idx_write(
            "a",
            Expr::var("i"),
            Expr::index(
                "a",
                Expr::bin(CBinOp::Sub, CNumKind::I32, Expr::var("i"), Expr::ConstI(1)),
            ),
        )];
        assert_eq!(exact_distance(&body1, "i", "a"), Some(1));
        // Loop-invariant index: no affine distance.
        let body0 = vec![idx_write(
            "a",
            Expr::ConstI(0),
            Expr::index("a", Expr::ConstI(0)),
        )];
        assert_eq!(exact_distance(&body0, "i", "a"), None);
    }

    #[test]
    fn cross_statement_scalar_recurrence_found() {
        // t = s; s = t + a[i] — missed by the conservative scan, caught
        // by the transitive pass.
        let body = vec![
            Stmt::Assign {
                lhs: LValue::Var("t".into()),
                rhs: Expr::var("s"),
            },
            Stmt::Assign {
                lhs: LValue::Var("s".into()),
                rhs: Expr::bin(
                    CBinOp::Add,
                    CNumKind::F32,
                    Expr::var("t"),
                    Expr::index("a", Expr::var("i")),
                ),
            },
        ];
        assert!(conservative_carried(&body, "i", &HashSet::new()).is_none());
        let dep = transitive_scalar_carried(&body).expect("carried");
        assert_eq!(dep.via, "s");
        assert!(!dep.reducible);
        assert!(dep.chain.fadd >= 1);
    }

    #[test]
    fn private_scalars_do_not_carry_transitively() {
        // float t = 0; t2 = t; t = t2 + 1 with both declared in the body.
        let body = vec![
            Stmt::Decl {
                name: "t".into(),
                ty: CType::Float,
                init: Some(Expr::ConstF(0.0)),
            },
            Stmt::Assign {
                lhs: LValue::Var("t2".into()),
                rhs: Expr::var("t"),
            },
            Stmt::Assign {
                lhs: LValue::Var("t".into()),
                rhs: Expr::iadd(Expr::var("t2"), Expr::ConstI(1)),
            },
        ];
        // `t` is private (declared in body); `t2` never cycles.
        assert!(transitive_scalar_carried(&body).is_none());
    }

    #[test]
    fn killed_pre_value_does_not_cycle() {
        // s = 1; t = s — s's pre-value never feeds anything.
        let body = vec![
            Stmt::Assign {
                lhs: LValue::Var("s".into()),
                rhs: Expr::ConstI(1),
            },
            Stmt::Assign {
                lhs: LValue::Var("t".into()),
                rhs: Expr::var("s"),
            },
        ];
        assert!(transitive_scalar_carried(&body).is_none());
    }

    #[test]
    fn conditional_self_update_cycles() {
        // if (c) { s = s + 1 } — carried via s (matches the conservative
        // scan's verdict on the same shape).
        let body = vec![Stmt::If {
            cond: Expr::var("c"),
            then: vec![Stmt::Assign {
                lhs: LValue::Var("s".into()),
                rhs: Expr::iadd(Expr::var("s"), Expr::ConstI(1)),
            }],
            els: vec![],
        }];
        let dep = transitive_scalar_carried(&body).expect("carried");
        assert_eq!(dep.via, "s");
    }
}
