//! The Shannon-entropy early-stopping criterion (paper §4.3.3, Eq. 2).
//!
//! After `i` iterations, let `D_i` be the explored results and `D_i^u` the
//! subset that improved on the incumbent ("uphill"). For each design factor
//! `t_j`, the experimental conditional probability `P(D_i^u | t_j)` is the
//! fraction of proposals mutating `t_j` that were uphill. The criterion
//! terminates the search when the entropy
//! `H(D_i) = -Σ_j P(D_i^u|t_j) · log P(D_i^u|t_j)` stabilizes:
//! `|H(D_i) − H(D_{i−1})| ≤ θ` for `N` consecutive iterations — i.e. when
//! the uncertainty of finding a better result by mutating any factor has
//! stopped changing.

use s2fa_tuner::{History, StoppingCriterion};

/// Entropy-based stopping (Eq. 2).
#[derive(Debug, Clone)]
pub struct EntropyStop {
    /// Termination threshold θ.
    theta: f64,
    /// Consecutive below-threshold iterations required (pulse rejection).
    n_consecutive: usize,
    /// Minimum evaluations before the criterion may fire.
    min_evals: usize,
    // running state
    mutated_count: Vec<u64>,
    uphill_count: Vec<u64>,
    processed: usize,
    last_entropy: f64,
    streak: usize,
}

impl EntropyStop {
    /// Creates the criterion with threshold `theta` over `n_params`
    /// factors, requiring `n_consecutive` stable iterations.
    pub fn new(n_params: usize, theta: f64, n_consecutive: usize) -> Self {
        EntropyStop {
            theta,
            n_consecutive,
            min_evals: 10,
            mutated_count: vec![0; n_params],
            uphill_count: vec![0; n_params],
            processed: 0,
            last_entropy: f64::NAN,
            streak: 0,
        }
    }

    /// The defaults used by S2FA's DSE (θ = 0.10, N = 3).
    pub fn with_defaults(n_params: usize) -> Self {
        Self::new(n_params, 0.10, 3)
    }

    /// Overrides the minimum evaluation count before stopping is allowed.
    pub fn with_min_evals(mut self, min_evals: usize) -> Self {
        self.min_evals = min_evals;
        self
    }

    /// Current entropy `H(D_i)`.
    pub fn entropy(&self) -> f64 {
        let mut h = 0.0;
        for (&m, &u) in self.mutated_count.iter().zip(&self.uphill_count) {
            if m == 0 {
                continue;
            }
            let p = u as f64 / m as f64;
            if p > 0.0 {
                h -= p * p.ln();
            }
        }
        h
    }
}

impl StoppingCriterion for EntropyStop {
    fn name(&self) -> &'static str {
        "shannon-entropy"
    }

    fn should_stop(&mut self, history: &History) -> bool {
        let evals = history.evaluations();
        for e in &evals[self.processed..] {
            for &j in &e.mutated_params {
                if j < self.mutated_count.len() {
                    self.mutated_count[j] += 1;
                    if e.improved {
                        self.uphill_count[j] += 1;
                    }
                }
            }
        }
        let new_points = evals.len() - self.processed;
        self.processed = evals.len();
        if new_points == 0 {
            return false;
        }

        let h = self.entropy();
        let stable = (h - self.last_entropy).abs() <= self.theta;
        self.last_entropy = h;
        if stable {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        // A partition whose every point fails synthesis carries no
        // information at all — H(D) is identically zero, so the criterion
        // fires as soon as the minimum sample is in.
        if history.best().is_none() {
            return self.processed >= 2 * self.min_evals;
        }
        self.processed >= self.min_evals && self.streak >= self.n_consecutive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2fa_tuner::Measurement;

    fn record(h: &mut History, cfg: Vec<u32>, value: f64, mutated: Vec<usize>) {
        h.record(cfg, Measurement::new(value, 1.0), mutated);
    }

    #[test]
    fn stops_when_entropy_stabilizes() {
        let mut c = EntropyStop::new(3, 0.05, 3).with_min_evals(5);
        let mut h = History::new();
        // improving phase: entropy moves
        record(&mut h, vec![0, 0, 0], 100.0, vec![]);
        record(&mut h, vec![1, 0, 0], 50.0, vec![0]);
        assert!(!c.should_stop(&h));
        record(&mut h, vec![1, 1, 0], 25.0, vec![1]);
        assert!(!c.should_stop(&h));
        // plateau: many non-improving mutations of the same factors
        let mut stopped = false;
        for i in 0..30 {
            record(&mut h, vec![2 + i, 0, 0], 30.0 + i as f64, vec![0, 1, 2]);
            if c.should_stop(&h) {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "criterion never fired on a long plateau");
    }

    #[test]
    fn does_not_stop_before_min_evals() {
        let mut c = EntropyStop::new(2, 10.0, 1).with_min_evals(50);
        let mut h = History::new();
        for i in 0..20 {
            record(&mut h, vec![i, 0], 10.0, vec![0]);
            assert!(!c.should_stop(&h));
        }
    }

    #[test]
    fn entropy_reflects_uphill_distribution() {
        let mut c = EntropyStop::new(2, 0.01, 99);
        let mut h = History::new();
        record(&mut h, vec![0, 0], 100.0, vec![]);
        // factor 0 mutations: 50% uphill → nonzero entropy term
        record(&mut h, vec![1, 0], 50.0, vec![0]);
        record(&mut h, vec![2, 0], 80.0, vec![0]);
        c.should_stop(&h);
        let e = c.entropy();
        assert!(e > 0.0);
        // p=0.5: term = -0.5 ln 0.5 ≈ 0.3466
        assert!((e - 0.3466).abs() < 0.01, "H = {e}");
    }

    #[test]
    fn pulse_does_not_terminate() {
        // stable, stable, big jump, stable... with n_consecutive=3 the
        // jump resets the streak.
        let mut c = EntropyStop::new(1, 0.001, 3).with_min_evals(0);
        let mut h = History::new();
        record(&mut h, vec![0], 100.0, vec![]);
        record(&mut h, vec![1], 90.0, vec![0]); // uphill p=1
        assert!(!c.should_stop(&h));
        record(&mut h, vec![2], 95.0, vec![0]); // p drops to 1/2 → entropy jump
        assert!(!c.should_stop(&h));
        record(&mut h, vec![3], 96.0, vec![0]); // p=1/3 → still moving
        assert!(!c.should_stop(&h));
    }
}
